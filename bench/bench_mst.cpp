// Experiment E12 (Section 1.3): MST in the k-machine model.
//
// Paper claim: the General Lower Bound Theorem yields Omega~(n/Bk^2)
// rounds for MST on a complete graph with random edge weights — "shown
// directly" where [33] needed communication-complexity machinery — and
// the bound is tight by [51].  We run the proxy-based Boruvka
// implementation on that exact input family and on sparse graphs, and
// print measured rounds next to the theorem's curve.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/mst.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::uint64_t kBandwidth = 256;

void BM_MstCompleteRandom(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 400;
  static const WeightedGraph g = [] {
    Rng rng(909);
    return WeightedGraph::complete_random(n, 1u << 20, rng);
  }();
  Metrics metrics;
  std::size_t phases = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 19});
    Rng prng(20 + k);
    const auto part = VertexPartition::random(n, k, prng);
    const auto res = distributed_mst(g, part, engine);
    metrics = res.metrics;
    phases = res.phases;
  }
  const auto lb = mst_lower_bound(n, k, kBandwidth);
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["phases"] = static_cast<double>(phases);
  state.counters["lb_rounds"] = lb.rounds();
  auto& t = bench::SeriesTable::instance();
  t.add("mst/complete-random/measured (rounds)", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
  t.add("mst/complete-random/LB (rounds)", static_cast<double>(k),
        lb.rounds());
}
BENCHMARK(BM_MstCompleteRandom)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MstSparse(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 3000;
  static const WeightedGraph g = [] {
    Rng rng(910);
    return WeightedGraph::randomize_weights(gnp(n, 6.0 / n, rng), 1u << 20,
                                            rng);
  }();
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 21});
    Rng prng(22 + k);
    const auto part = VertexPartition::random(n, k, prng);
    metrics = distributed_mst(g, part, engine).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("mst/sparse-gnp/measured (rounds)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_MstSparse)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    // The paper's bound is Theta~(n/k^2) (tight via [51]'s sketch-based
    // algorithm).  Our simplified Boruvka pays O~(n/k) per phase for
    // fragment-label pushes plus a per-phase superstep floor, so its
    // finite-size slope is shallower; EXPERIMENTS.md discusses the gap.
    t.expect_slope("mst/complete-random/measured (rounds)", -2.0);
    t.expect_slope("mst/complete-random/LB (rounds)", -2.0);
    t.expect_slope("mst/sparse-gnp/measured (rounds)", -2.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
