// Throughput of the sequential reference kernels (the "free local
// computation" of the model).  These are classic google-benchmark wall
// time measurements, unlike the round-count benches: they document that
// the simulator's per-machine local work (Section 1.1: bounded by a
// polynomial, typically linear, in the machine's input) is cheap.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/pagerank_ref.hpp"
#include "graph/triangle_ref.hpp"

namespace {

using namespace km;

void BM_ExpectedVisitPageRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  const auto g = Digraph::from_undirected(gnp(n, 8.0 / n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expected_visit_pagerank(g, {.eps = 0.2, .tolerance = 1e-9}));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExpectedVisitPageRank)->Range(1 << 10, 1 << 14)
    ->Complexity(benchmark::oN)->Unit(benchmark::kMillisecond);

void BM_PowerIterationPageRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  const auto g = gnp_directed(n, 8.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power_iteration_pagerank(g, {.eps = 0.2, .tolerance = 1e-9}));
  }
}
BENCHMARK(BM_PowerIterationPageRank)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_TriangleCount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  const auto g = gnp(n, 16.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
}
BENCHMARK(BM_TriangleCount)->Range(1 << 10, 1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_TriangleCountDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(24);
  const auto g = gnp(n, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
}
BENCHMARK(BM_TriangleCountDense)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_OpenTriadCount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(25);
  const auto g = gnp(n, 8.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_open_triads(g));
  }
}
BENCHMARK(BM_OpenTriadCount)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
