// Experiment E6 (Corollary 1): congested clique triangle enumeration.
//
// Paper claim: with k = n (one vertex per machine) the round complexity
// of triangle enumeration is Theta~(n^{1/3}): the Omega(n^{1/3}/B) lower
// bound is the first super-constant bound for the congested clique, and
// TriPartition (Dolev et al.) matches it.  We sweep n over perfect cubes
// and check rounds grow ~n^{1/3} while the lower bound stays below.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

void BM_CongestedClique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // A small fixed bandwidth resolves the ~n^{1/3} round growth at these
  // modest n (with B = polylog(n) the whole run fits in a few rounds).
  const std::uint64_t B = 8;
  Rng grng(404 + n);
  const auto g = gnp(n, 0.5, grng);
  Metrics metrics;
  std::uint64_t total = 0;
  for (auto _ : state) {
    Engine engine(n, {.bandwidth_bits = B, .seed = 5});
    const auto part = VertexPartition::identity(n);
    TriangleConfig cfg;
    cfg.record_triples = false;
    const auto res = distributed_triangles(g, part, engine, cfg);
    metrics = res.metrics;
    total = res.total;
  }
  const auto lb = congested_clique_triangle_lower_bound(n, B);
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["lb_rounds"] = lb.rounds();
  state.counters["found"] = static_cast<double>(total);
  auto& t = bench::SeriesTable::instance();
  t.add("congested-clique/measured (rounds)", static_cast<double>(n),
        static_cast<double>(metrics.rounds));
  t.add("congested-clique/lower-bound (rounds)", static_cast<double>(n),
        std::max(lb.rounds(), 1e-9));
}

BENCHMARK(BM_CongestedClique)->Arg(27)->Arg(64)->Arg(125)->Arg(216)->Arg(343)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    // Rounds should grow sublinearly, tracking ~n^{1/3} (the finite-size
    // fit is steeper than 1/3 because message sizes grow with log n).
    t.expect_slope("congested-clique/measured (rounds)", 1.0 / 3.0);
    t.expect_slope("congested-clique/lower-bound (rounds)", 1.0 / 3.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("n = k (vertices = machines)")
