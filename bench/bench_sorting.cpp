// Experiment E8 (Section 1.3): distributed sorting.
//
// Paper claim: the General Lower Bound Theorem yields Omega~(n/k^2)
// rounds for sorting under a random input distribution (machine i must
// output the i-th order-statistic block), matched by an O~(n/k^2)-round
// sample-sort.  We sweep k at fixed n and print measured rounds next to
// the theorem's bound; both series should fall ~k^{-2}.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/sorting.hpp"

namespace {

using namespace km;

constexpr std::size_t kKeys = 200000;
constexpr std::uint64_t kBandwidth = 64;

std::vector<std::uint64_t> keys() {
  static const std::vector<std::uint64_t> ks = [] {
    Rng rng(707);
    std::vector<std::uint64_t> v(kKeys);
    for (auto& x : v) x = rng.next();
    return v;
  }();
  return ks;
}

void BM_SampleSort(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto input = keys();
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 15});
    metrics = distributed_sample_sort(input, engine).metrics;
  }
  const auto lb = sorting_lower_bound(kKeys, k, kBandwidth);
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["lb_rounds"] = lb.rounds();
  state.counters["messages"] = static_cast<double>(metrics.messages);
  auto& t = bench::SeriesTable::instance();
  t.add("sorting/measured (rounds)", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
  t.add("sorting/theorem-LB (rounds)", static_cast<double>(k), lb.rounds());
}
BENCHMARK(BM_SampleSort)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("sorting/measured (rounds)", -2.0);
    t.expect_slope("sorting/theorem-LB (rounds)", -2.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
