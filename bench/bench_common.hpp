// Shared infrastructure for the benchmark harness.
//
// The paper has no experimental tables (it is a theory paper); each bench
// binary regenerates the *shape* of one quantitative claim: it records a
// measured series (e.g. rounds vs k), prints it next to the paper's
// predicted curve, and reports the fitted log-log exponent so "who wins,
// by roughly what factor, where crossovers fall" is visible directly in
// the output.  See DESIGN.md's per-experiment index and EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/mathx.hpp"

namespace km::bench {

/// Collects (x, y) points per named series during benchmark runs and
/// prints per-series tables plus fitted scaling exponents afterwards.
class SeriesTable {
 public:
  static SeriesTable& instance() {
    static SeriesTable table;
    return table;
  }

  void add(const std::string& series, double x, double y) {
    std::scoped_lock lock(mutex_);
    auto& pts = series_[series];
    // Benchmarks may repeat; keep the last value per x.
    for (auto& [px, py] : pts) {
      if (px == x) {
        py = y;
        return;
      }
    }
    pts.emplace_back(x, y);
  }

  /// Prints every series and its fitted log-log slope, with the
  /// expected exponent (if registered) next to it.
  void print_summary(const char* x_label) {
    std::scoped_lock lock(mutex_);
    std::printf("\n===== series summary (x = %s) =====\n", x_label);
    for (const auto& [name, pts] : series_) {
      std::printf("%-42s", name.c_str());
      std::vector<double> xs, ys;
      for (const auto& [x, y] : pts) {
        xs.push_back(x);
        ys.push_back(y);
        std::printf("  (%g, %.4g)", x, y);
      }
      if (xs.size() >= 2) {
        std::printf("   [fitted slope %+.3f", fit_log_log_slope(xs, ys));
        const auto it = expected_.find(name);
        if (it != expected_.end()) {
          std::printf(", paper predicts %+.3f", it->second);
        }
        std::printf(", corr %.3f]", log_log_correlation(xs, ys));
      }
      std::printf("\n");
    }
    std::printf("====================================\n");
  }

  void expect_slope(const std::string& series, double exponent) {
    std::scoped_lock lock(mutex_);
    expected_[series] = exponent;
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::vector<std::pair<double, double>>> series_;
  std::map<std::string, double> expected_;
};

}  // namespace km::bench

/// Custom main: run benchmarks, then print the collected series with
/// fitted exponents next to the paper's predictions.
#define KM_BENCH_MAIN(x_label)                                        \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {       \
      return 1;                                                       \
    }                                                                 \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    ::km::bench::SeriesTable::instance().print_summary(x_label);      \
    return 0;                                                         \
  }
