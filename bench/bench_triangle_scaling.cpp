// Experiment E4/E11 (Theorem 5 vs Klauck et al. [33]).
//
// Paper claim: triangle enumeration runs in O~(m/k^{5/3} + n/k^{4/3})
// rounds.  We run TriPartition and the broadcast baseline for fixed
// input and k in {8, 27, 64, 125} (perfect cubes exercise the full color
// grid; intermediate values work too).  Expected shape: rounds fall
// ~k^{-5/3} for TriPartition vs ~k^{-1} for the baseline; open-triad
// enumeration (Section 1.2) tracks the same curve.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::size_t kN = 700;
constexpr double kP = 0.5;  // the lower bound's G(n,1/2) regime
constexpr std::uint64_t kBandwidth = 256;

const Graph& dense_graph() {
  static const Graph g = [] {
    Rng rng(202);
    return gnp(kN, kP, rng);
  }();
  return g;
}

void run_case(benchmark::State& state, bool baseline, TriadMode mode,
              const char* series) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  Metrics metrics;
  std::uint64_t total = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 3});
    Rng prng(17 + k);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    TriangleConfig cfg;
    cfg.mode = mode;
    cfg.record_triples = false;
    const auto res = baseline
                         ? distributed_triangles_baseline(g, part, engine, cfg)
                         : distributed_triangles(g, part, engine, cfg);
    metrics = res.metrics;
    total = res.total;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["messages"] = static_cast<double>(metrics.messages);
  state.counters["found"] = static_cast<double>(total);
  state.counters["ub_predicted"] = triangle_upper_bound_rounds(
      g.num_vertices(), g.num_edges(), k, kBandwidth);
  bench::SeriesTable::instance().add(series, static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}

void BM_TriPartition(benchmark::State& state) {
  run_case(state, false, TriadMode::kTriangles,
           "triangles/gnp0.5/tripartition (rounds)");
}

void BM_Baseline(benchmark::State& state) {
  run_case(state, true, TriadMode::kTriangles,
           "triangles/gnp0.5/baseline (rounds)");
}

void BM_OpenTriads(benchmark::State& state) {
  run_case(state, false, TriadMode::kOpenTriads,
           "triads/gnp0.5/tripartition (rounds)");
}

BENCHMARK(BM_TriPartition)->Arg(8)->Arg(27)->Arg(64)->Arg(125)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
// The baseline replicates the whole graph on every machine, so its
// simulation cost grows with k; two points suffice to place its ~k^{-1}
// curve against TriPartition's ~k^{-5/3}.
BENCHMARK(BM_Baseline)->Arg(8)->Arg(27)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpenTriads)->Arg(8)->Arg(27)->Arg(64)->Arg(125)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// The second axis of Theorem 5: at fixed k, rounds on G(n,1/2) grow
// ~m ~ n^2 (slope +2 in n).
void BM_TriPartition_NScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t k = 27;
  Rng grng(848 + n);
  const Graph g = gnp(n, kP, grng);
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 4});
    Rng prng(18 + n);
    const auto part = VertexPartition::random(n, k, prng);
    TriangleConfig cfg;
    cfg.record_triples = false;
    metrics = distributed_triangles(g, part, engine, cfg).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("triangles/gnp0.5/rounds-vs-n (k=27)",
                                     static_cast<double>(n),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_TriPartition_NScaling)->Arg(300)->Arg(420)->Arg(600)->Arg(840)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("triangles/gnp0.5/tripartition (rounds)", -5.0 / 3.0);
    t.expect_slope("triangles/gnp0.5/baseline (rounds)", -1.0);
    t.expect_slope("triads/gnp0.5/tripartition (rounds)", -5.0 / 3.0);
    t.expect_slope("triangles/gnp0.5/rounds-vs-n (k=27)", 2.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
