// Message-plane microbenchmark: raw exchange() throughput, independent of
// any graph algorithm.
//
// Four workloads stress the costs the message plane pays per superstep:
// (1) broadcast-heavy — every machine broadcasts the same payload to all
// k-1 peers, so payload copying (or sharing) dominates; (2) unique
// fan-out — every machine sends a distinct message to every peer, so
// per-message bookkeeping and allocator churn dominate (the 16/64-byte
// cases live on the per-link frame batching path); (3) two-hop shuffle —
// route_via_random_intermediate, so envelope (re)serialization dominates;
// (4) barrier latency — empty supersteps at k up to 256, so the tree
// barrier's rendezvous and wake-up are the whole cost; (5) speedup vs
// workers — a compute-bound fleet at every pool width, so the series
// reads directly as the executor's parallel efficiency.  Throughput
// counters are bytes of payload handed to the message plane per second,
// which makes before/after comparisons of the plane itself meaningful.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sim/routing.hpp"
#include "util/hash.hpp"

namespace {

using namespace km;

// Bandwidth is irrelevant to wall time (rounds are accounting, not delay);
// something large keeps the round numbers small and readable.
constexpr std::uint64_t kBandwidth = 1 << 20;
constexpr std::size_t kMachines = 16;
constexpr int kSupersteps = 16;

void BM_BroadcastHeavy(benchmark::State& state) {
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> blob(payload_bytes, std::byte{0x5a});
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 21});
    metrics = engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSupersteps; ++step) {
        Writer w;
        w.put_bytes(blob);
        ctx.broadcast(1, w);
        const auto in = ctx.exchange();
        if (in.size() != kMachines - 1) {
          throw std::logic_error("bench_exchange: lost broadcast messages");
        }
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  // Payload bytes offered to the plane per iteration (one buffer per
  // broadcast; the k-1 deliveries are the plane's problem).
  state.SetBytesProcessed(state.iterations() * kSupersteps * kMachines *
                          static_cast<std::int64_t>(payload_bytes));
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
}
BENCHMARK(BM_BroadcastHeavy)->Arg(16)->Arg(256)->Arg(4096)->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_UniqueFanOut(benchmark::State& state) {
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> blob(payload_bytes, std::byte{0x33});
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 22});
    metrics = engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSupersteps; ++step) {
        for (std::size_t dst = 0; dst < kMachines; ++dst) {
          if (dst == ctx.id()) continue;
          Writer w;
          w.put_varint(static_cast<std::uint64_t>(step));
          w.put_bytes(blob);
          ctx.send(dst, 2, w);
        }
        const auto in = ctx.exchange();
        if (in.size() != kMachines - 1) {
          throw std::logic_error("bench_exchange: lost fan-out messages");
        }
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kSupersteps * kMachines *
                          (kMachines - 1) *
                          static_cast<std::int64_t>(payload_bytes));
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
}
BENCHMARK(BM_UniqueFanOut)->Arg(16)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_UniqueFanOutTraced(benchmark::State& state) {
  // BM_UniqueFanOut with the tracing plane on (spans + counter events,
  // no link matrices): the delta against the untraced rows above is the
  // tracing overhead per superstep.  The acceptance bar lives on the
  // *other* side — with tracing off the hooks must cost nothing but a
  // null check, so BM_UniqueFanOut itself must not move when the plane
  // is compiled in (CI's bench-quick job keeps both series in the
  // uploaded artifact for exactly this comparison).
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> blob(payload_bytes, std::byte{0x33});
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines,
                  {.bandwidth_bits = kBandwidth, .seed = 22, .trace = true});
    metrics = engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSupersteps; ++step) {
        for (std::size_t dst = 0; dst < kMachines; ++dst) {
          if (dst == ctx.id()) continue;
          Writer w;
          w.put_varint(static_cast<std::uint64_t>(step));
          w.put_bytes(blob);
          ctx.send(dst, 2, w);
        }
        const auto in = ctx.exchange();
        if (in.size() != kMachines - 1) {
          throw std::logic_error("bench_exchange: lost fan-out messages");
        }
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kSupersteps * kMachines *
                          (kMachines - 1) *
                          static_cast<std::int64_t>(payload_bytes));
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
}
BENCHMARK(BM_UniqueFanOutTraced)->Arg(16)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_TinyBatchFanOut(benchmark::State& state) {
  // The frame-batching target: many tiny messages per link per
  // superstep, where the per-message fixed cost (a refcounted buffer
  // each) used to dominate.  Payload is 16 bytes; range(0) messages go
  // to every peer every superstep.
  const auto per_link = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> blob(16, std::byte{0x77});
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 25});
    metrics = engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSupersteps; ++step) {
        for (std::size_t dst = 0; dst < kMachines; ++dst) {
          if (dst == ctx.id()) continue;
          for (std::size_t i = 0; i < per_link; ++i) {
            Writer w;
            w.put_bytes(blob);
            ctx.send(dst, 4, w);
          }
        }
        const auto in = ctx.exchange();
        if (in.size() != per_link * (kMachines - 1)) {
          throw std::logic_error("bench_exchange: lost tiny messages");
        }
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kSupersteps * kMachines *
                          (kMachines - 1) * per_link),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TinyBatchFanOut)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_TwoHopShuffle(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 23});
    metrics = engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      out.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        Message m;
        m.dst = static_cast<std::uint32_t>(ctx.rng().below(kMachines));
        m.tag = 3;
        Writer w;
        w.put_varint(i);
        w.put_varint(0xabcdef);
        m.payload = w.take();
        out.push_back(std::move(m));
      }
      const auto in = route_via_random_intermediate(ctx, std::move(out));
      benchmark::DoNotOptimize(in.data());
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kMachines * batch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TwoHopShuffle)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_BarrierLatency(benchmark::State& state) {
  // Empty supersteps: no messages move, so the whole per-step cost is the
  // rendezvous — tree arrival, root finalize, and (now that machines are
  // fibers on a worker pool) the scheduler pass that resumes released
  // fibers instead of a per-machine futex wake.  The k = 256 case
  // exercises a 4-level tree multiplexed over the default worker count;
  // one engine run amortizes the pool spawn over kSteps barriers.
  const auto machines = static_cast<std::size_t>(state.range(0));
  constexpr int kSteps = 16;
  for (auto _ : state) {
    Engine engine(machines, {.bandwidth_bits = kBandwidth, .seed = 24});
    engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSteps; ++step) {
        const auto in = ctx.exchange();
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  state.counters["barriers/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kSteps),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BarrierLatency)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_SpeedupVsWorkers(benchmark::State& state) {
  // Executor scaling: 64 compute-bound machines multiplexed over
  // range(0) workers.  Each machine burns a fixed hash-mixing loop per
  // superstep and sends one tiny message around a ring, so wall time is
  // dominated by machine compute and the series over workers in
  // {1, 2, 4, 8, ...} reads directly as parallel speedup — flat rows
  // past the core count show the pool saturating, and the workers=1 row
  // doubles as the pure-multiplexing (zero-contention) baseline any
  // scheduler overhead would show up in.
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFleet = 64;
  constexpr int kSteps = 8;
  constexpr int kMixesPerStep = 20000;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kFleet, {.bandwidth_bits = kBandwidth, .seed = 26,
                           .workers = workers});
    metrics = engine.run([&](MachineContext& ctx) {
      std::uint64_t acc = ctx.id();
      for (int step = 0; step < kSteps; ++step) {
        for (int i = 0; i < kMixesPerStep; ++i) {
          acc = mix64(acc, static_cast<std::uint64_t>(i));
        }
        benchmark::DoNotOptimize(acc);
        Writer w;
        w.put_varint(acc);
        ctx.send((ctx.id() + 1) % kFleet, 5, w);
        const auto in = ctx.exchange();
        if (in.size() != 1) {
          throw std::logic_error("bench_exchange: lost ring message");
        }
        benchmark::DoNotOptimize(in.data());
      }
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["supersteps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kSteps),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpeedupVsWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

KM_BENCH_MAIN("payload bytes / batch size")
