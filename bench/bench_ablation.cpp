// Experiment E14: ablations of the design choices DESIGN.md calls out.
//
//  1. PageRank heavy-vertex path on/off (the core of Algorithm 1 vs the
//     naive baseline) on the star hot spot;
//  2. PageRank termination-check interval (collective frequency vs
//     round floor);
//  3. Triangle designation threshold: the paper's high-degree rule vs
//     forcing everyone low (pure hash tie-break) vs everyone high, on a
//     skewed Barabasi-Albert graph — the rule exists to spread a hub's
//     designation load over its neighbors' machines.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/pagerank.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

void BM_HeavyPathOnOff(benchmark::State& state) {
  const bool heavy_on = state.range(0) != 0;
  static const Digraph g = Digraph::from_undirected(star_graph(6000));
  constexpr std::size_t k = 64;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = 64, .seed = 31});
    Rng prng(32);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    const PageRankConfig cfg{.eps = 0.2, .c = 4.0};
    metrics = (heavy_on ? distributed_pagerank(g, part, engine, cfg)
                        : distributed_pagerank_baseline(g, part, engine, cfg))
                  .metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add(
      heavy_on ? "ablation/pagerank heavy path ON (rounds)"
               : "ablation/pagerank heavy path OFF (rounds)",
      1.0, static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_HeavyPathOnOff)->Arg(1)->Arg(0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_TerminationInterval(benchmark::State& state) {
  const auto interval = static_cast<std::size_t>(state.range(0));
  static const Digraph g = [] {
    Rng rng(33);
    return Digraph::from_undirected(gnp(2000, 0.005, rng));
  }();
  constexpr std::size_t k = 32;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = 64, .seed = 34});
    Rng prng(35);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    PageRankConfig cfg{.eps = 0.2, .c = 4.0};
    cfg.termination_check_interval = interval;
    metrics = distributed_pagerank(g, part, engine, cfg).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add(
      "ablation/pagerank termination interval (rounds)",
      static_cast<double>(interval), static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_TerminationInterval)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_DesignationThreshold(benchmark::State& state) {
  // 0 = everyone "high" (neighbors designate hub edges),
  // 1 = the paper's 2 k log n rule,
  // 2 = threshold infinity (everyone "low": pure hash tie-break, a hub's
  //     home machine designates ~half its incident edges itself).
  const int mode = static_cast<int>(state.range(0));
  static const Graph g = [] {
    Rng rng(36);
    return barabasi_albert(20000, 8, rng);
  }();
  constexpr std::size_t k = 64;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = 64, .seed = 37});
    Rng prng(38);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    TriangleConfig cfg;
    cfg.record_triples = false;
    cfg.degree_threshold_factor =
        mode == 0 ? 0.0 : (mode == 1 ? 2.0 : 1e18);
    metrics = distributed_triangles(g, part, engine, cfg).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["max_send_bits"] = static_cast<double>(metrics.max_send_bits());
  const char* name = mode == 0   ? "ablation/triangles all-high (rounds)"
                     : mode == 1 ? "ablation/triangles paper rule (rounds)"
                                 : "ablation/triangles all-low (rounds)";
  bench::SeriesTable::instance().add(name, 1.0,
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_DesignationThreshold)->Arg(0)->Arg(1)->Arg(2)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

KM_BENCH_MAIN("ablation parameter")
