// Experiment E3/E12 (Theorem 2, Figure 1, Lemmas 4-8): the PageRank
// lower bound, empirically.
//
// Regenerates three artifacts:
//  1. Lemma 4's constant-factor PageRank separation on the gadget H
//     (analytic values vs the exact solver, printed as counters);
//  2. Lemma 5's concentration: the max number of weakly connected X-V
//     paths any machine learns from the random vertex partition, vs the
//     O(n log n / k^2) bound — scaling ~k^{-2};
//  3. the Omega~(n/Bk^2) round bound next to Algorithm 1's measured
//     rounds on H (the near-tightness claim of Section 1.2), plus the
//     General-Lower-Bound-Theorem instances for sorting and MST
//     (Section 1.3) evaluated on the same parameters.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/info_cost.hpp"
#include "core/pagerank.hpp"
#include "graph/lb_graphs.hpp"
#include "graph/pagerank_ref.hpp"

namespace {

using namespace km;

constexpr std::size_t kQ = 2500;  // n = 10001
constexpr std::uint64_t kBandwidth = 64;

void BM_Lemma4Separation(benchmark::State& state) {
  Rng rng(1);
  PageRankLowerBoundGraph h(64, rng);
  double ratio = 0.0, solver_gap = 0.0;
  for (auto _ : state) {
    const double eps = 0.2;
    ratio = h.expected_pagerank_v(eps, 1) / h.expected_pagerank_v(eps, 0);
    const auto pi = expected_visit_pagerank(h.graph(), {.eps = eps});
    solver_gap = 0.0;
    for (std::size_t i = 0; i < h.q(); ++i) {
      solver_gap = std::max(
          solver_gap, std::abs(pi[h.v(i)] -
                               h.expected_pagerank_v(eps, h.bits()[i])));
    }
  }
  state.counters["separation_ratio"] = ratio;        // ~1.5 at eps=0.2
  state.counters["solver_vs_lemma4_gap"] = solver_gap;  // ~0
}
BENCHMARK(BM_Lemma4Separation)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Lemma5PathKnowledge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng grng(2);
  PageRankLowerBoundGraph h(kQ, grng);
  std::uint64_t max_paths = 0;
  for (auto _ : state) {
    Rng prng(3 + k);
    const auto part = VertexPartition::random(h.n(), k, prng);
    const auto counts = known_paths_per_machine(h, part);
    max_paths = *std::max_element(counts.begin(), counts.end());
  }
  const double n = static_cast<double>(h.n());
  const double bound = n * std::log2(n) / (static_cast<double>(k) * k);
  state.counters["max_known_paths"] = static_cast<double>(max_paths);
  state.counters["lemma5_bound"] = bound;
  bench::SeriesTable::instance().add("lemma5/max-known-paths",
                                     static_cast<double>(k),
                                     std::max<double>(max_paths, 0.5));
}
BENCHMARK(BM_Lemma5PathKnowledge)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BoundVsAchieved(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng grng(4);
  PageRankLowerBoundGraph h(kQ, grng);
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 5});
    Rng prng(6 + k);
    const auto part = VertexPartition::random(h.n(), k, prng);
    metrics = distributed_pagerank(h.graph(), part, engine,
                                   {.eps = 0.2, .c = 4.0})
                  .metrics;
  }
  const auto lb = pagerank_lower_bound(h.n(), k, kBandwidth);
  state.counters["measured_rounds"] = static_cast<double>(metrics.rounds);
  state.counters["lb_rounds"] = lb.rounds();
  state.counters["gap"] = static_cast<double>(metrics.rounds) / lb.rounds();
  state.counters["sorting_lb"] = sorting_lower_bound(h.n(), k, kBandwidth).rounds();
  state.counters["mst_lb"] = mst_lower_bound(h.n(), k, kBandwidth).rounds();
  auto& t = bench::SeriesTable::instance();
  t.add("pagerank-on-H/measured (rounds)", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
  t.add("pagerank-on-H/theorem2-LB (rounds)", static_cast<double>(k),
        lb.rounds());
}
BENCHMARK(BM_BoundVsAchieved)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("lemma5/max-known-paths", -2.0);
    t.expect_slope("pagerank-on-H/measured (rounds)", -2.0);
    t.expect_slope("pagerank-on-H/theorem2-LB (rounds)", -2.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
