// Experiment E13 (Section 1.2's generalization claim): 4-clique
// enumeration via the s-tuple generalization of TriPartition.
//
// Predicted shape: with c = k^{1/4} colors each edge replicates to
// ~k^{1/2} quadruplet machines, so rounds fall ~k^{-3/2} (vs k^{-5/3}
// for triangles) and total messages grow ~k^{1/2}.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/cliques.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::size_t kN = 400;
constexpr std::uint64_t kBandwidth = 256;

const Graph& dense_graph() {
  static const Graph g = [] {
    Rng rng(111);
    return gnp(kN, 0.4, rng);
  }();
  return g;
}

void BM_FourCliques(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  Metrics metrics;
  std::uint64_t total = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 23});
    Rng prng(24 + k);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    CliqueConfig cfg;
    cfg.record_cliques = false;
    const auto res = distributed_four_cliques(g, part, engine, cfg);
    metrics = res.metrics;
    total = res.total;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["messages"] = static_cast<double>(metrics.messages);
  state.counters["found"] = static_cast<double>(total);
  auto& t = bench::SeriesTable::instance();
  t.add("4cliques/rounds", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
  t.add("4cliques/messages", static_cast<double>(k),
        static_cast<double>(metrics.messages));
}
BENCHMARK(BM_FourCliques)->Arg(16)->Arg(81)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("4cliques/rounds", -1.5);
    t.expect_slope("4cliques/messages", 0.5);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
