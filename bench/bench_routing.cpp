// Experiment E9 (Lemma 13): random routing in the complete network.
//
// Paper claim: if every machine sources O(x) messages with uniformly
// random destinations, direct routing finishes in O((x log x)/k) rounds
// whp — per-link loads concentrate at x/k.  We sweep x and k, measure
// the realized rounds, and compare against x/k (linear in x, inverse in
// k).  A second benchmark shows Valiant two-hop routing rescuing an
// adversarially skewed batch (all messages to one destination).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sim/routing.hpp"

namespace {

using namespace km;

constexpr std::uint64_t kBandwidth = 64;

Message make_msg(std::uint32_t dst, std::uint64_t value) {
  Message m;
  m.dst = dst;
  m.tag = 1;
  Writer w;
  w.put_varint(value);
  m.payload = w.take();
  return m;
}

void BM_RandomDestinations(benchmark::State& state) {
  const auto x = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kMachines = 16;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 12});
    metrics = engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      out.reserve(x);
      for (std::uint64_t i = 0; i < x; ++i) {
        out.push_back(make_msg(
            static_cast<std::uint32_t>(ctx.rng().below(kMachines)), i));
      }
      route_direct(ctx, std::move(out));
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["x_over_k"] = static_cast<double>(x) / kMachines;
  bench::SeriesTable::instance().add("routing/random-dest (rounds vs x)",
                                     static_cast<double>(x),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_RandomDestinations)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_RandomDestinationsVsK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t x = 8192;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 13});
    metrics = engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      out.reserve(x);
      for (std::uint64_t i = 0; i < x; ++i) {
        out.push_back(
            make_msg(static_cast<std::uint32_t>(ctx.rng().below(k)), i));
      }
      route_direct(ctx, std::move(out));
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("routing/random-dest (rounds vs k)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_RandomDestinationsVsK)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SkewedDirectVsTwoHop(benchmark::State& state) {
  // All of machine 0's messages target machine 1.
  const bool two_hop = state.range(0) != 0;
  constexpr std::size_t kMachines = 16;
  constexpr std::uint64_t x = 4096;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 14});
    metrics = engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      if (ctx.id() == 0) {
        for (std::uint64_t i = 0; i < x; ++i) out.push_back(make_msg(1, i));
      }
      if (two_hop) {
        route_via_random_intermediate(ctx, std::move(out));
      } else {
        route_direct(ctx, std::move(out));
      }
    });
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add(
      two_hop ? "routing/skewed two-hop (rounds)"
              : "routing/skewed direct (rounds)",
      1.0, static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_SkewedDirectVsTwoHop)->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("routing/random-dest (rounds vs x)", 1.0);
    t.expect_slope("routing/random-dest (rounds vs k)", -1.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("batch size x / machines k")
