// Experiment E1/E2 (Theorem 4 vs Klauck et al. [33]).
//
// Paper claim: PageRank approximation runs in O~(n/k^2) rounds — a
// superlinear-in-k improvement over the previous O~(n/k) bound.  We run
// Algorithm 1 and the naive baseline for fixed n and growing k on
//   (a) a sparse G(n,p) graph (uniform degrees: both algorithms enjoy
//       balanced communication; rounds fall like ~k^-2), and
//   (b) a star graph (the Section 3.1 hot spot: the baseline's center
//       machine emits ~n distinct messages per iteration, Algorithm 1's
//       heavy-vertex path emits at most k-1).
// Expected shape: new algorithm's series falls ~k^{-2}; the baseline
// stays near ~k^{-1} on the star; the gap grows with k.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/pagerank.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::size_t kN = 4000;
constexpr std::uint64_t kBandwidth = 64;
const PageRankConfig kConfig{.eps = 0.2, .c = 4.0};

Digraph sparse_graph() {
  Rng rng(101);
  return Digraph::from_undirected(gnp(kN, 8.0 / kN, rng));
}

Digraph star() { return Digraph::from_undirected(star_graph(kN)); }

void run_case(benchmark::State& state, const Digraph& g, bool baseline,
              const char* series) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Metrics metrics;
  std::size_t iterations = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 7});
    Rng prng(11 + k);
    const auto part = VertexPartition::random(g.num_vertices(), k, prng);
    const auto res = baseline
                         ? distributed_pagerank_baseline(g, part, engine,
                                                         kConfig)
                         : distributed_pagerank(g, part, engine, kConfig);
    metrics = res.metrics;
    iterations = res.iterations;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["messages"] = static_cast<double>(metrics.messages);
  state.counters["walk_iters"] = static_cast<double>(iterations);
  state.counters["max_recv_bits"] =
      static_cast<double>(metrics.max_recv_bits());
  bench::SeriesTable::instance().add(series, static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}

void BM_PageRank_Gnp(benchmark::State& state) {
  static const Digraph g = sparse_graph();
  run_case(state, g, false, "pagerank/gnp/algorithm1 (rounds)");
}

void BM_PageRankBaseline_Gnp(benchmark::State& state) {
  static const Digraph g = sparse_graph();
  run_case(state, g, true, "pagerank/gnp/baseline (rounds)");
}

void BM_PageRank_Star(benchmark::State& state) {
  static const Digraph g = star();
  run_case(state, g, false, "pagerank/star/algorithm1 (rounds)");
}

void BM_PageRankBaseline_Star(benchmark::State& state) {
  static const Digraph g = star();
  run_case(state, g, true, "pagerank/star/baseline (rounds)");
}

BENCHMARK(BM_PageRank_Gnp)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankBaseline_Gnp)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_Star)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankBaseline_Star)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// The second axis of Theorem 4: at fixed k, rounds grow ~linearly in n.
void BM_PageRank_NScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t k = 16;
  Rng grng(747 + n);
  const Digraph g = Digraph::from_undirected(gnp(n, 8.0 / static_cast<double>(n), grng));
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 8});
    Rng prng(12 + n);
    const auto part = VertexPartition::random(n, k, prng);
    metrics = distributed_pagerank(g, part, engine, kConfig).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("pagerank/gnp/rounds-vs-n (k=16)",
                                     static_cast<double>(n),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_PageRank_NScaling)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("pagerank/gnp/algorithm1 (rounds)", -2.0);
    t.expect_slope("pagerank/star/algorithm1 (rounds)", -2.0);
    t.expect_slope("pagerank/star/baseline (rounds)", -1.0);
    t.expect_slope("pagerank/gnp/rounds-vs-n (k=16)", 1.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
