// Sketch-based connectivity & MST: round complexity and local-kernel
// throughput.
//
// Paper claim (Section 1.3 / [51]): connectivity and MST run in
// Õ(n/k²) rounds using linear graph sketches — *independent of m* —
// against the Ω̃(n/k²) General Lower Bound and the trivial Õ(n/k)
// centralization baseline.  This bench prints measured rounds for the
// sketch algorithm next to the baseline over the k-grid (the fitted
// slopes land around -1.3 vs -0.85 at bench scale — n=1024, k up to
// 16, where the per-superstep floors bite hardest — and clear -1.5 at
// the n=4096 grid test_round_bounds.cpp pins; that file explains the
// finite-size gap to the -2 asymptote), plus the edge-density series
// where the separation is starkest, and the raw build/merge/sample
// throughput of the ℓ₀ machinery itself, once per dispatch path
// (simd:0 forces the scalar kernels, simd:1 the AVX2 ones) so the
// vectorization win is a measured ratio, not an assumption.
// scripts/check_sketch_slope.py re-fits the rounds-vs-k slopes from
// this binary's JSON output and gates CI's bench-quick job on them.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/connectivity.hpp"
#include "core/detail/sketch_kernels.hpp"
#include "core/sketch.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::uint64_t kBandwidth = 512;

const Graph& sparse_graph(std::size_t n) {
  static std::map<std::size_t, Graph> cache;
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(1200 + n);
  return cache.emplace(n, gnp(n, 8.0 / static_cast<double>(n), rng))
      .first->second;
}

void BM_SketchConnectivityRounds(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 1024;
  const Graph& g = sparse_graph(n);
  Metrics metrics;
  std::size_t phases = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 19});
    const auto part = VertexPartition::by_hash(n, k, 42);
    const auto res = sketch_connectivity(g, part, engine, {.seed = 23});
    metrics = res.metrics;
    phases = res.phases;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["phases"] = static_cast<double>(phases);
  bench::SeriesTable::instance().add("connectivity/sketch (rounds)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_SketchConnectivityRounds)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BaselineConnectivityRounds(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 1024;
  const Graph& g = sparse_graph(n);
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 19});
    const auto part = VertexPartition::by_hash(n, k, 42);
    metrics = centralized_connectivity_baseline(g, part, engine).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("connectivity/baseline (rounds)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_BaselineConnectivityRounds)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Edge-density series: rounds vs m at fixed n, k.  The sketch curve is
// flat (communication is a function of n), the baseline pays per edge.
void BM_DensitySeries(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  constexpr std::size_t n = 512;
  constexpr std::size_t k = 8;
  Rng rng(77);
  const Graph g = gnp(n, p, rng);
  Metrics sketch, base;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 5});
    const auto part = VertexPartition::by_hash(n, k, 42);
    sketch = sketch_connectivity(g, part, engine, {.seed = 29}).metrics;
    Engine engine2(k, {.bandwidth_bits = kBandwidth, .seed = 5});
    base = centralized_connectivity_baseline(g, part, engine2).metrics;
  }
  const auto m = static_cast<double>(g.num_edges());
  state.counters["m"] = m;
  state.counters["sketch_rounds"] = static_cast<double>(sketch.rounds);
  state.counters["baseline_rounds"] = static_cast<double>(base.rounds);
  auto& t = bench::SeriesTable::instance();
  t.add("connectivity/sketch vs m (rounds)", m,
        static_cast<double>(sketch.rounds));
  t.add("connectivity/baseline vs m (rounds)", m,
        static_cast<double>(base.rounds));
}
BENCHMARK(BM_DensitySeries)->Arg(8)->Arg(30)->Arg(120)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SketchMstRounds(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 256;
  static const WeightedGraph g = [] {
    Rng rng(910);
    return WeightedGraph::randomize_weights(gnp(n, 8.0 / n, rng), 1u << 16,
                                            rng);
  }();
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 21});
    const auto part = VertexPartition::by_hash(n, k, 42);
    metrics = sketch_mst(g, part, engine, {.seed = 31}).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  bench::SeriesTable::instance().add("mst/sketch-threshold (rounds)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_SketchMstRounds)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Local kernels: the per-phase CPU cost of the sketch machinery ----
//
// Both throughput benches run once per runtime dispatch path: simd:0
// pins the scalar kernels, simd:1 the AVX2 ones (skipped where the CPU
// lacks them).  The paths are bit-identical by construction
// (tests/test_sketch_simd.cpp), so the only thing that may differ here
// is the rate.  Note GCC auto-vectorizes the "scalar" path with SSE2,
// so the measured AVX2 ratio understates the gap to naive per-cell
// code.

bool force_dispatch_or_skip(benchmark::State& state, std::int64_t arg) {
  const auto path = static_cast<detail::SketchDispatch>(arg);
  if (!detail::sketch_dispatch_supported(path)) {
    state.SkipWithError("dispatch path unsupported on this CPU");
    return false;
  }
  detail::force_sketch_dispatch(path);
  return true;
}

void BM_SketchBuildThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  if (!force_dispatch_or_skip(state, state.range(1))) return;
  const Graph& g = sparse_graph(n);
  const EdgeIdCodec codec(n);
  const L0SketchShape shape{.id_bits = codec.id_bits(), .rows = 4, .seed = 3};
  std::size_t arcs = 0;
  for (auto _ : state) {
    for (Vertex v = 0; v < n; ++v) {
      L0Sketch sketch(shape);
      for (const Vertex nb : g.neighbors(v)) {
        sketch.add(codec.encode(v, nb), EdgeIdCodec::sign_for(v, nb));
      }
      benchmark::DoNotOptimize(sketch);
      arcs += g.neighbors(v).size();
    }
  }
  state.counters["edge_adds/s"] = benchmark::Counter(
      static_cast<double>(arcs), benchmark::Counter::kIsRate);
  detail::reset_sketch_dispatch();
}
BENCHMARK(BM_SketchBuildThroughput)
    ->ArgNames({"n", "simd"})
    ->ArgsProduct({{1024, 4096}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_SketchMergeSampleThroughput(benchmark::State& state) {
  constexpr std::size_t n = 1024;
  if (!force_dispatch_or_skip(state, state.range(0))) return;
  const Graph& g = sparse_graph(n);
  const EdgeIdCodec codec(n);
  const L0SketchShape shape{.id_bits = codec.id_bits(), .rows = 4, .seed = 5};
  std::vector<L0Sketch> parts;
  parts.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    L0Sketch sketch(shape);
    for (const Vertex nb : g.neighbors(v)) {
      sketch.add(codec.encode(v, nb), EdgeIdCodec::sign_for(v, nb));
    }
    parts.push_back(std::move(sketch));
  }
  std::size_t merges = 0;
  for (auto _ : state) {
    L0Sketch folded(shape);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (i + 1 < parts.size()) parts[i + 1].prefetch();
      folded.merge(parts[i]);
    }
    auto sample = folded.sample();
    benchmark::DoNotOptimize(sample);
    merges += parts.size();
  }
  state.counters["merges/s"] = benchmark::Counter(
      static_cast<double>(merges), benchmark::Counter::kIsRate);
  detail::reset_sketch_dispatch();
}
BENCHMARK(BM_SketchMergeSampleThroughput)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("connectivity/sketch (rounds)", -2.0);
    t.expect_slope("connectivity/baseline (rounds)", -1.0);
    t.expect_slope("connectivity/sketch vs m (rounds)", 0.0);
    t.expect_slope("connectivity/baseline vs m (rounds)", 1.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
