// Experiment E10 (Section 1.1 + footnote 3): input partitions.
//
// Paper claims: (a) under the random vertex partition every machine is
// home to Theta~(n/k) vertices whp — we measure the max/mean load
// imbalance as k grows; (b) a random *edge* partition can be converted
// to RVP knowledge in O~(m/k^2 + n/k) rounds — we measure the
// conversion's rounds, which should fall ~k^{-2} while m/k^2 dominates.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/conversion.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

void BM_RvpBalance(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 1 << 20;
  double imbalance = 0.0;
  for (auto _ : state) {
    Rng rng(16 + k);
    const auto p = VertexPartition::random(n, k, rng);
    imbalance = p.imbalance();
  }
  state.counters["imbalance"] = imbalance;
  bench::SeriesTable::instance().add("partition/rvp-imbalance",
                                     static_cast<double>(k), imbalance);
}
BENCHMARK(BM_RvpBalance)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_RepToRvpConversion(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t n = 2000;
  static const Graph g = [] {
    Rng rng(808);
    return gnp(n, 0.05, rng);  // m ~ 100k
  }();
  Metrics metrics;
  for (auto _ : state) {
    Rng prng(17 + k);
    const auto vp = VertexPartition::random(n, k, prng);
    const auto ep = EdgePartition::random(g.num_edges(), k, prng);
    Engine engine(k, {.bandwidth_bits = 64, .seed = 18});
    metrics = convert_rep_to_rvp(g, ep, vp, engine).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["messages"] = static_cast<double>(metrics.messages);
  bench::SeriesTable::instance().add("partition/rep-to-rvp (rounds)",
                                     static_cast<double>(k),
                                     static_cast<double>(metrics.rounds));
}
BENCHMARK(BM_RepToRvpConversion)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    // Imbalance grows slowly (sqrt(k log k / n) deviations); slope ~ 0.
    t.expect_slope("partition/rvp-imbalance", 0.0);
    t.expect_slope("partition/rep-to-rvp (rounds)", -2.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
