// Experiment E7 (Corollary 2): message-round tradeoff for triangle
// enumeration.
//
// Paper claim: any algorithm that enumerates all triangles within the
// optimal O~(n^2/k^{5/3}) rounds must exchange Omega~(n^2 k^{1/3})
// messages in total — in particular, it cannot funnel the input to one
// machine (which would need only O(m) messages but many more rounds).
// We measure TriPartition's total messages/bits as k grows: messages
// *increase* with k (~k^{1/3}, each edge is replicated to k^{1/3}
// triplet machines) while rounds decrease — the tradeoff in action.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::size_t kN = 500;

const Graph& dense_graph() {
  static const Graph g = [] {
    Rng rng(505);
    return gnp(kN, 0.5, rng);
  }();
  return g;
}

void BM_MessageTradeoff(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  const std::uint64_t B = EngineConfig::default_bandwidth(kN);
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = B, .seed = 9});
    Rng prng(23 + k);
    const auto part = VertexPartition::random(kN, k, prng);
    TriangleConfig cfg;
    cfg.record_triples = false;
    metrics = distributed_triangles(g, part, engine, cfg).metrics;
  }
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["messages"] = static_cast<double>(metrics.messages);
  state.counters["total_bits"] = static_cast<double>(metrics.bits);
  state.counters["msg_lb"] = triangle_message_lower_bound(kN, k);
  auto& t = bench::SeriesTable::instance();
  t.add("triangle/messages (total)", static_cast<double>(k),
        static_cast<double>(metrics.messages));
  t.add("triangle/rounds", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
}

BENCHMARK(BM_MessageTradeoff)->Arg(8)->Arg(27)->Arg(64)->Arg(125)->Arg(216)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    // Messages grow ~k^{1/3} (edge replication onto triplet machines)
    // while rounds fall ~k^{5/3}: the Corollary 2 tradeoff.
    t.expect_slope("triangle/messages (total)", 1.0 / 3.0);
    t.expect_slope("triangle/rounds", -5.0 / 3.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
