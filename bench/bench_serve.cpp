// Serving-plane cache benchmarks: scenarios/sec for the three request
// temperatures km_serve distinguishes.
//
//   cold          — dataset cache cleared, result store bypassed: the
//                   full cold-start path every `km_run` invocation pays
//                   (materialize the dataset, run the engine, serialize)
//   dataset-hit   — result store bypassed (--fresh): engine run against
//                   the cached dataset, i.e. what a sweep cell costs
//   replay        — warm result store: the served document is the stored
//                   byte sequence; no dataset, no engine
//
// The acceptance bar for the serving plane is replay >= 100x cold on a
// repeated scenario request.  Google Benchmark owns all timing (the
// production tree is lint-clean of wall-clock reads; benches are where
// measurement lives) — the claim is the ratio of the reported
// per-iteration times: BM_ServeReplay / BM_ServeCold.
#include <benchmark/benchmark.h>

#include "runtime/dataset_cache.hpp"
#include "serve/service.hpp"

namespace {

using namespace km;

serve::Request scenario_request(bool fresh) {
  serve::Request req;
  req.op = serve::Request::Op::kRun;
  req.workload = "components";
  req.dataset = "gnp:n=2000,p=0.004";
  req.params.k = 8;
  req.params.seed = 7;
  req.fresh = fresh;
  return req;
}

void BM_ServeCold(benchmark::State& state) {
  serve::ScenarioService service{serve::ServiceConfig{}};
  const auto req = scenario_request(/*fresh=*/true);
  for (auto _ : state) {
    state.PauseTiming();
    DatasetCache::instance().clear();
    state.ResumeTiming();
    const auto response = service.handle(req);
    benchmark::DoNotOptimize(response.doc.data());
    if (!response.ok) state.SkipWithError(response.error.c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServeDatasetHit(benchmark::State& state) {
  serve::ScenarioService service{serve::ServiceConfig{}};
  const auto req = scenario_request(/*fresh=*/true);
  (void)service.handle(req);  // warm the dataset cache
  for (auto _ : state) {
    const auto response = service.handle(req);
    benchmark::DoNotOptimize(response.doc.data());
    if (!response.ok) state.SkipWithError(response.error.c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServeReplay(benchmark::State& state) {
  serve::ScenarioService service{serve::ServiceConfig{}};
  const auto req = scenario_request(/*fresh=*/false);
  (void)service.handle(req);  // first request populates the result store
  for (auto _ : state) {
    const auto response = service.handle(req);
    benchmark::DoNotOptimize(response.doc.data());
    if (!response.ok) state.SkipWithError(response.error.c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeDatasetHit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeReplay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
