// Experiment E5 (Theorem 3, Lemmas 9-11): the triangle enumeration
// lower bound, empirically on G(n,1/2).
//
// Regenerates:
//  1. Lemma 10: max edges initially known per machine vs O(n^2 log n /k);
//  2. Lemma 11: per-machine information cost — the machine outputting
//     t_i triangles of which t3_i were locally visible must have
//     received >= Rivin(t_i - t3_i) bits; we verify the simulator's
//     per-machine received bits dominate that and print the ratio;
//  3. the Omega~(n^2/Bk^{5/3}) round bound next to TriPartition's
//     measured rounds (near-tightness of Theorem 5).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/info_cost.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"

namespace {

using namespace km;

constexpr std::size_t kN = 500;
constexpr std::uint64_t kBandwidth = 256;

const Graph& dense_graph() {
  static const Graph g = [] {
    Rng rng(606);
    return gnp(kN, 0.5, rng);
  }();
  return g;
}

void BM_Lemma10InitialKnowledge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  std::uint64_t max_edges = 0;
  for (auto _ : state) {
    Rng prng(7 + k);
    const auto part = VertexPartition::random(kN, k, prng);
    const auto counts = known_edges_per_machine(g, part);
    max_edges = *std::max_element(counts.begin(), counts.end());
  }
  const double n = static_cast<double>(kN);
  state.counters["max_known_edges"] = static_cast<double>(max_edges);
  state.counters["lemma10_bound"] = n * n * std::log2(n) / (2.0 * k);
  bench::SeriesTable::instance().add("lemma10/max-known-edges",
                                     static_cast<double>(k),
                                     static_cast<double>(max_edges));
}
BENCHMARK(BM_Lemma10InitialKnowledge)->Arg(4)->Arg(8)->Arg(27)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Lemma11InformationCost(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  double max_ic = 0.0, min_ratio = 0.0;
  Metrics metrics;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 8});
    Rng prng(9 + k);
    const auto part = VertexPartition::random(kN, k, prng);
    TriangleConfig cfg;
    cfg.record_triples = false;
    const auto res = distributed_triangles(g, part, engine, cfg);
    metrics = res.metrics;
    const auto t3 = local_triangles_per_machine(g, part);
    max_ic = 0.0;
    min_ratio = 1e300;
    for (std::size_t i = 0; i < k; ++i) {
      const double ic = triangle_output_information_bits(
          static_cast<double>(res.per_machine_counts[i]),
          static_cast<double>(t3[i]));
      max_ic = std::max(max_ic, ic);
      if (ic > 0) {
        min_ratio = std::min(
            min_ratio,
            static_cast<double>(metrics.recv_bits_per_machine[i]) / ic);
      }
    }
  }
  state.counters["max_machine_IC_bits"] = max_ic;
  state.counters["recv_bits_over_IC_min"] = min_ratio;  // must be >= 1
  bench::SeriesTable::instance().add("lemma11/max-machine-IC-bits",
                                     static_cast<double>(k), max_ic);
}
BENCHMARK(BM_Lemma11InformationCost)->Arg(8)->Arg(27)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BoundVsAchieved(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph& g = dense_graph();
  Metrics metrics;
  std::uint64_t total = 0;
  for (auto _ : state) {
    Engine engine(k, {.bandwidth_bits = kBandwidth, .seed = 10});
    Rng prng(11 + k);
    const auto part = VertexPartition::random(kN, k, prng);
    TriangleConfig cfg;
    cfg.record_triples = false;
    const auto res = distributed_triangles(g, part, engine, cfg);
    metrics = res.metrics;
    total = res.total;
  }
  const auto lb = triangle_lower_bound_from_t(
      kN, static_cast<double>(total), k, kBandwidth);
  state.counters["measured_rounds"] = static_cast<double>(metrics.rounds);
  state.counters["lb_rounds"] = lb.rounds();
  state.counters["gap"] =
      static_cast<double>(metrics.rounds) / std::max(lb.rounds(), 1e-9);
  auto& t = bench::SeriesTable::instance();
  t.add("triangles-on-gnp/measured (rounds)", static_cast<double>(k),
        static_cast<double>(metrics.rounds));
  t.add("triangles-on-gnp/theorem3-LB (rounds)", static_cast<double>(k),
        std::max(lb.rounds(), 1e-9));
}
BENCHMARK(BM_BoundVsAchieved)->Arg(8)->Arg(27)->Arg(64)->Arg(125)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct RegisterExpectations {
  RegisterExpectations() {
    auto& t = bench::SeriesTable::instance();
    t.expect_slope("lemma10/max-known-edges", -1.0);
    t.expect_slope("lemma11/max-machine-IC-bits", -2.0 / 3.0);
    t.expect_slope("triangles-on-gnp/measured (rounds)", -5.0 / 3.0);
    t.expect_slope("triangles-on-gnp/theorem3-LB (rounds)", -5.0 / 3.0);
  }
} register_expectations;

}  // namespace

KM_BENCH_MAIN("k machines")
