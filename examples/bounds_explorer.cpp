// Interactive explorer for the General Lower Bound Theorem (Theorem 1)
// and all its instantiations: prints, for a given (n, k, B), the round
// lower bounds for PageRank, triangle enumeration, sorting and MST, the
// congested-clique corollary, the message-complexity corollary, and the
// matching upper-bound predictions — the full "cookbook" of Section 2.
//
// Usage: bounds_explorer [--n=100000] [--k=100] [--B=512]
#include <cstdio>

#include "core/bounds.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 100000);
  const std::size_t k = opts.get_uint("k", 100);
  const std::uint64_t B = opts.get_uint("B", 512);

  std::printf("k-machine model bounds for n=%zu vertices, k=%zu machines, "
              "B=%llu bits/link/round\n\n",
              n, k, static_cast<unsigned long long>(B));

  const auto rows = {
      std::pair<const char*, GeneralLowerBound>{
          "PageRank (Thm 2)", pagerank_lower_bound(n, k, B)},
      {"Triangle enum on G(n,1/2) (Thm 3)", triangle_lower_bound(n, k, B)},
      {"Sorting (Sec 1.3)", sorting_lower_bound(n, k, B)},
      {"MST (Sec 1.3)", mst_lower_bound(n, k, B)},
  };
  std::printf("%-36s %14s %14s %12s\n", "problem", "H[Z] (bits)",
              "IC (bits)", "LB rounds");
  for (const auto& [name, lb] : rows) {
    std::printf("%-36s %14.4g %14.4g %12.4g\n", name, lb.entropy_bits,
                lb.info_cost_bits, lb.rounds());
  }

  std::printf("\nupper-bound predictions (unit constants):\n");
  std::printf("  PageRank  O~(n/k^2):              %12.4g rounds\n",
              pagerank_upper_bound_rounds(n, k, B));
  std::printf("  Triangles O~(m/k^5/3 + n/k^4/3):  %12.4g rounds "
              "(m = n^2/4)\n",
              triangle_upper_bound_rounds(n, n * n / 4, k, B));

  const auto cc = congested_clique_triangle_lower_bound(n, B);
  std::printf("\ncongested clique (k = n): triangle enumeration needs "
              ">= %.4g rounds (~n^{1/3}/B)\n",
              cc.rounds());
  std::printf("message tradeoff (Cor 2): round-optimal triangle "
              "algorithms move >= %.4g messages\n",
              triangle_message_lower_bound(n, k));

  std::printf("\nderivations:\n");
  for (const auto& [name, lb] : rows) {
    std::printf("- %s\n", lb.derivation.c_str());
  }
  return 0;
}
