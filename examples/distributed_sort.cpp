// Distributed sorting demo (Section 1.3 of the paper): n keys scattered
// randomly over k machines are sorted so that machine i ends up with the
// i-th block of order statistics, in O~(n/k^2) rounds — matching the
// General Lower Bound Theorem's Omega~(n/k^2).
//
// Usage: distributed_sort [--n=100000] [--k=16] [--seed=5]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "core/sorting.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 100000);
  const std::size_t k = opts.get_uint("k", 16);
  const std::uint64_t seed = opts.get_uint("seed", 5);

  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& key : keys) key = rng.next();

  const std::uint64_t B = EngineConfig::default_bandwidth(n);
  Engine engine(k, {.bandwidth_bits = B, .seed = seed + 1});
  const auto result = distributed_sample_sort(keys, engine);

  // Verify: concatenated blocks equal the globally sorted sequence.
  std::vector<std::uint64_t> merged;
  merged.reserve(n);
  for (const auto& block : result.blocks) {
    merged.insert(merged.end(), block.begin(), block.end());
  }
  std::sort(keys.begin(), keys.end());
  const bool ok = merged == keys;

  std::printf("sorted %zu keys over %zu machines: %s\n", n, k,
              ok ? "exact order statistics verified" : "MISMATCH");
  for (std::size_t i = 0; i < k; ++i) {
    std::printf("  machine %2zu holds ranks [%zu, %zu)\n", i,
                result.offsets[i], result.offsets[i + 1]);
    if (i == 2 && k > 4) {
      std::printf("  ...\n");
      break;
    }
  }
  const auto lb = sorting_lower_bound(n, k, B);
  std::printf("rounds: %llu measured, %.2f lower bound (Theorem 1 "
              "instance), %llu messages\n",
              static_cast<unsigned long long>(result.metrics.rounds),
              lb.rounds(),
              static_cast<unsigned long long>(result.metrics.messages));
  std::printf("derivation: %s\n", lb.derivation.c_str());
  return ok ? 0 : 1;
}
