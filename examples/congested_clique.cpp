// Congested clique triangle enumeration (Corollary 1 of the paper).
//
// The congested clique is the k-machine model's k = n special case: a
// complete network of n machines, one input vertex each.  The paper's
// Omega~(n^{1/3}) lower bound is the first super-constant bound known
// for this model, and TriPartition (Dolev et al.) matches it.  This
// example runs one vertex-per-machine instance end to end and prints
// the measured rounds next to the Corollary 1 bound.
//
// Usage: congested_clique [--n=125] [--p=0.5] [--B=8] [--seed=2]
#include <cmath>
#include <cstdio>

#include "core/bounds.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/triangle_ref.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 125);
  const double p = opts.get_double("p", 0.5);
  const std::uint64_t B = opts.get_uint("B", 8);
  const std::uint64_t seed = opts.get_uint("seed", 2);

  Rng rng(seed);
  const Graph g = gnp(n, p, rng);
  std::printf("congested clique: n = k = %zu machines (one vertex each), "
              "m=%zu, B=%llu bits/link/round\n",
              n, g.num_edges(), static_cast<unsigned long long>(B));

  Engine engine(n, {.bandwidth_bits = B, .seed = seed + 1});
  const auto partition = VertexPartition::identity(n);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = distributed_triangles(g, partition, engine, cfg);

  const auto lb = congested_clique_triangle_lower_bound(n, B);
  std::printf("triangles found: %llu (reference %llu)\n",
              static_cast<unsigned long long>(res.total),
              static_cast<unsigned long long>(count_triangles(g)));
  std::printf("rounds: %llu measured, %.3f Corollary-1 lower bound, "
              "n^{1/3} = %.2f\n",
              static_cast<unsigned long long>(res.metrics.rounds),
              lb.rounds(), std::cbrt(static_cast<double>(n)));
  std::printf("colors: %zu, triplet workers: %zu of %zu machines\n",
              triangle_color_count(n), triangle_worker_count(n), n);
  std::printf("total messages: %llu (edge replication factor ~k^{1/3}: "
              "%.2f per edge)\n",
              static_cast<unsigned long long>(res.metrics.messages),
              static_cast<double>(res.metrics.messages) /
                  static_cast<double>(std::max<std::size_t>(g.num_edges(), 1)));
  return res.total == count_triangles(g) ? 0 : 1;
}
