// Social-network analysis: triangles, open triads and friend
// recommendation (the applications motivating triangle enumeration in
// Sections 1.2 and 1.5 of the paper: clustering, community structure,
// and "open triads can be used to recommend friends").
//
// Builds a small-world friendship graph, enumerates all triangles and
// all open triads on the k-machine cluster, reports the clustering
// coefficient, and recommends friends: for each person, the non-friends
// sharing the most mutual friends (computed from the triad lists).
//
// Usage: social_triangles [--n=1000] [--k=27] [--degree=10] [--beta=0.1]
//        [--seed=3] [--recommendations=5]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/triangle_ref.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 1000);
  const std::size_t k = opts.get_uint("k", 27);
  const std::size_t degree = opts.get_uint("degree", 10);
  const double beta = opts.get_double("beta", 0.1);
  const std::uint64_t seed = opts.get_uint("seed", 3);
  const std::size_t rec_count = opts.get_uint("recommendations", 5);

  Rng rng(seed);
  const Graph friends = watts_strogatz(n, degree, beta, rng);
  std::printf("friendship graph: n=%zu m=%zu\n", friends.num_vertices(),
              friends.num_edges());

  Rng prng(seed + 1);
  const auto partition = VertexPartition::random(n, k, prng);
  const std::uint64_t B = EngineConfig::default_bandwidth(n);

  // Triangles: closed friend circles.
  Engine tri_engine(k, {.bandwidth_bits = B, .seed = seed + 2});
  const auto triangles = distributed_triangles(friends, partition,
                                               tri_engine, {});
  std::printf("triangles: %llu in %llu rounds (%zu of %zu machines "
              "produced output)\n",
              static_cast<unsigned long long>(triangles.total),
              static_cast<unsigned long long>(triangles.metrics.rounds),
              static_cast<std::size_t>(std::count_if(
                  triangles.per_machine_counts.begin(),
                  triangles.per_machine_counts.end(),
                  [](std::uint64_t c) { return c > 0; })),
              k);

  // Open triads: two friends with a missing third edge.
  Engine triad_engine(k, {.bandwidth_bits = B, .seed = seed + 3});
  TriangleConfig triad_cfg;
  triad_cfg.mode = TriadMode::kOpenTriads;
  const auto triads = distributed_triangles(friends, partition,
                                            triad_engine, triad_cfg);
  std::printf("open triads: %llu in %llu rounds\n",
              static_cast<unsigned long long>(triads.total),
              static_cast<unsigned long long>(triads.metrics.rounds));

  const double clustering =
      3.0 * static_cast<double>(triangles.total) /
      static_cast<double>(3 * triangles.total + triads.total);
  std::printf("global clustering coefficient: %.4f (reference %.4f)\n",
              clustering, global_clustering_coefficient(friends));

  // Friend recommendation: rank non-adjacent pairs by mutual friends.
  // Every open triad {a, v, b} (v the common friend) contributes one
  // mutual friend to the non-adjacent pair of its three vertices.
  std::map<Edge, std::size_t> mutual;
  for (const auto& triple : triads.merged_sorted()) {
    // Identify the open pair: the one with no edge.
    const Vertex a = triple[0], b = triple[1], c = triple[2];
    Edge open_pair;
    if (!friends.has_edge(a, b)) {
      open_pair = {a, b};
    } else if (!friends.has_edge(a, c)) {
      open_pair = {a, c};
    } else {
      open_pair = {b, c};
    }
    ++mutual[open_pair];
  }
  std::vector<std::pair<std::size_t, Edge>> ranked;
  ranked.reserve(mutual.size());
  for (const auto& [pair, count] : mutual) ranked.emplace_back(count, pair);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\ntop friend recommendations (mutual friends):\n");
  for (std::size_t i = 0; i < std::min(rec_count, ranked.size()); ++i) {
    std::printf("  %u <-> %u  (%zu mutual friends)\n",
                ranked[i].second.first, ranked[i].second.second,
                ranked[i].first);
  }
  return 0;
}
