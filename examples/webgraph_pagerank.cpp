// Web-graph PageRank: the workload that motivated PageRank itself
// (Brin & Page; Section 1.5 of the paper).
//
// Builds a synthetic web graph with power-law in-degrees (preferential
// attachment, directed towards established pages), distributes it over k
// machines, runs Algorithm 1, and prints the top pages with their exact
// ranks for comparison — plus the round cost against the baseline, since
// high-degree hubs are exactly where the heavy-vertex path pays off.
//
// Usage: webgraph_pagerank [--n=5000] [--k=16] [--attach=4] [--seed=7]
//        [--top=10] [--file=edges.txt]  (file overrides the generator)
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/pagerank.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/pagerank_ref.hpp"
#include "graph/properties.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 5000);
  const std::size_t k = opts.get_uint("k", 32);
  const std::size_t attach = opts.get_uint("attach", 4);
  const std::uint64_t seed = opts.get_uint("seed", 7);
  const std::size_t top = opts.get_uint("top", 10);

  // A BA graph's old vertices accumulate degree like real web hubs.
  // Links are kept in both directions (pages link back and forth), so
  // hubs have high out-degree too — exactly the workload where
  // Algorithm 1's heavy-vertex path pays off over naive forwarding.
  Digraph web;
  if (opts.has("file")) {
    web = read_arc_list_file(opts.get_string("file", ""));
  } else {
    Rng rng(seed);
    web = Digraph::from_undirected(barabasi_albert(n, attach, rng));
  }
  std::printf("web graph: n=%zu arcs=%zu dangling=%zu\n", web.num_vertices(),
              web.num_arcs(), num_dangling(web));

  Rng prng(seed + 1);
  const auto partition =
      VertexPartition::random(web.num_vertices(), k, prng);
  // A small link bandwidth makes the congestion difference between
  // Algorithm 1 and the baseline visible at this modest n (with
  // B = polylog(n) both finish in a handful of rounds).
  const std::uint64_t B = 64;

  Engine engine(k, {.bandwidth_bits = B, .seed = seed + 2});
  const PageRankConfig cfg{.eps = 0.15, .c = 4.0};
  const auto result = distributed_pagerank(web, partition, engine, cfg);
  const auto exact = expected_visit_pagerank(web, {.eps = 0.15});

  // Top pages by estimated PageRank.
  std::vector<Vertex> order(web.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return result.estimates[a] > result.estimates[b];
  });
  std::printf("\n%-8s %-14s %-14s %-10s\n", "page", "estimated", "exact",
              "in-degree");
  for (std::size_t i = 0; i < std::min(top, order.size()); ++i) {
    const Vertex v = order[i];
    std::printf("%-8u %-14.6g %-14.6g %-10zu\n", v, result.estimates[v],
                exact[v], web.in_degree(v));
  }

  std::printf("\nalgorithm 1: %llu rounds, %llu messages, %zu iterations\n",
              static_cast<unsigned long long>(result.metrics.rounds),
              static_cast<unsigned long long>(result.metrics.messages),
              result.iterations);

  Engine baseline_engine(k, {.bandwidth_bits = B, .seed = seed + 2});
  const auto baseline =
      distributed_pagerank_baseline(web, partition, baseline_engine, cfg);
  std::printf("baseline:    %llu rounds (%.1fx the rounds of Algorithm 1; "
              "hubs congest naive token forwarding)\n",
              static_cast<unsigned long long>(baseline.metrics.rounds),
              static_cast<double>(baseline.metrics.rounds) /
                  static_cast<double>(std::max<std::uint64_t>(
                      result.metrics.rounds, 1)));
  return 0;
}
