// Quickstart: the smallest complete tour of the public API, using the
// runtime layer (src/runtime/) — the intended entry point:
//
//   1. look up workloads in the registry (the same ones `km_run list`
//      shows),
//   2. resolve a dataset spec string through the dataset provider,
//   3. run distributed PageRank and triangle enumeration on the
//      simulated k-machine cluster, with the sequential reference checks
//      the adapters carry,
//   4. read off the round/message costs the paper's theorems bound, and
//      print one result as the km.run_result/v1 JSON document.
//
// Usage: quickstart [--n=300] [--k=8] [--seed=1]
#include <cstdio>
#include <string>

#include "core/bounds.hpp"
#include "runtime/dataset.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 300);
  const std::size_t k = opts.get_uint("k", 8);
  const std::uint64_t seed = opts.get_uint("seed", 1);

  // 1. The workload registry: every algorithm is a named entry point.
  std::printf("registered workloads:");
  for (const Workload* w : WorkloadRegistry::instance().list()) {
    std::printf(" %s", std::string(w->name()).c_str());
  }
  std::printf("\n");

  // 2. A small social-network-like dataset from a spec string.  The same
  // string works with `km_run run --dataset ...`.
  const std::string spec =
      "ws:n=" + std::to_string(n) + ",degree=8,beta=0.2";
  const RunParams params{.k = k, .seed = seed};

  // 3a. Distributed PageRank (Algorithm 1, O~(n/k^2) rounds), checked
  // against the exact expected-visit fixpoint by the adapter.
  const Workload* pagerank = WorkloadRegistry::instance().find("pagerank");
  const Dataset directed =
      load_dataset(spec, pagerank->input_kind(), params.seed);
  std::printf("dataset: %s (n=%zu, m=%zu arcs)\n", directed.spec.c_str(),
              directed.n, directed.m);
  const RunResult pr = run_workload(*pagerank, directed, params);
  std::printf("%s\n", run_result_summary(pr).c_str());

  // 3b. Distributed triangle enumeration (O~(m/k^{5/3}+n/k^{4/3})).
  const Workload* triangles = WorkloadRegistry::instance().find("triangles");
  const Dataset undirected =
      load_dataset(spec, triangles->input_kind(), params.seed);
  const RunResult tri = run_workload(*triangles, undirected, params);
  std::printf("%s\n", run_result_summary(tri).c_str());

  // 4. What the paper's lower bounds say about this instance, and the
  // machine-readable result document (what `km_run --json` writes).
  const std::uint64_t B = pr.params.bandwidth_bits;
  const auto pr_lb = pagerank_lower_bound(n, k, B);
  const auto tr_lb = triangle_lower_bound(n, k, B);
  std::printf("theorem 2 (PageRank LB): >= %.2f rounds\n", pr_lb.rounds());
  std::printf("theorem 3 (triangle LB on G(n,1/2)): >= %.2f rounds\n",
              tr_lb.rounds());
  std::printf("triangle run as JSON:\n%s\n",
              run_result_to_json(tri).c_str());

  return (pr.check.ok && tri.check.ok) ? 0 : 1;
}
