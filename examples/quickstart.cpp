// Quickstart: the smallest complete tour of the public API.
//
//   1. build a graph,
//   2. partition it over k machines with the random vertex partition,
//   3. run distributed PageRank and triangle enumeration on the
//      simulated k-machine cluster,
//   4. read off the round/message costs the paper's theorems bound.
//
// Usage: quickstart [--n=300] [--k=8] [--seed=1]
#include <cstdio>

#include "core/bounds.hpp"
#include "core/pagerank.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/pagerank_ref.hpp"
#include "graph/triangle_ref.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace km;
  const Options opts(argc, argv);
  const std::size_t n = opts.get_uint("n", 300);
  const std::size_t k = opts.get_uint("k", 8);
  const std::uint64_t seed = opts.get_uint("seed", 1);

  // 1. A small social-network-like graph.
  Rng rng(seed);
  const Graph g = watts_strogatz(n, 8, 0.2, rng);
  std::printf("graph: n=%zu m=%zu\n", g.num_vertices(), g.num_edges());

  // 2. Random vertex partition over k machines (Section 1.1 of the
  // paper): each vertex and its incident edges land on a random machine.
  Rng prng(seed + 1);
  const auto partition = VertexPartition::random(n, k, prng);
  std::printf("partition: k=%zu, max load %zu (imbalance %.2f)\n", k,
              partition.max_load(), partition.imbalance());

  const std::uint64_t B = EngineConfig::default_bandwidth(n);

  // 3a. Distributed PageRank (Algorithm 1, O~(n/k^2) rounds).
  {
    Engine engine(k, {.bandwidth_bits = B, .seed = seed + 2});
    const auto result =
        distributed_pagerank(Digraph::from_undirected(g), partition, engine,
                             {.eps = 0.2, .c = 16.0});
    const auto ref = expected_visit_pagerank(Digraph::from_undirected(g),
                                             {.eps = 0.2});
    const double err = l1_distance(result.estimates, ref);
    std::printf("pagerank: %zu walk iterations, %llu rounds, "
                "L1 error vs exact %.4f\n",
                result.iterations,
                static_cast<unsigned long long>(result.metrics.rounds), err);
  }

  // 3b. Distributed triangle enumeration (O~(m/k^{5/3}+n/k^{4/3})).
  {
    Engine engine(k, {.bandwidth_bits = B, .seed = seed + 3});
    const auto result = distributed_triangles(g, partition, engine, {});
    std::printf("triangles: found %llu (reference %llu) in %llu rounds, "
                "%llu messages\n",
                static_cast<unsigned long long>(result.total),
                static_cast<unsigned long long>(count_triangles(g)),
                static_cast<unsigned long long>(result.metrics.rounds),
                static_cast<unsigned long long>(result.metrics.messages));
  }

  // 4. What the paper's lower bounds say about this instance.
  const auto pr_lb = pagerank_lower_bound(n, k, B);
  const auto tr_lb = triangle_lower_bound(n, k, B);
  std::printf("theorem 2 (PageRank LB): >= %.2f rounds\n", pr_lb.rounds());
  std::printf("theorem 3 (triangle LB on G(n,1/2)): >= %.2f rounds\n",
              tr_lb.rounds());
  return 0;
}
