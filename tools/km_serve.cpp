// km_serve — long-running scenario service for the k-machine simulator.
//
// Keeps datasets and finished result documents resident between
// requests, killing the cold-start tax `km_run` pays on every
// invocation: the first request for a scenario cell runs the engine,
// every repeat is a byte-identical replay from the result store, and
// distinct cells over the same dataset share one materialization
// through the process-wide dataset cache.
//
//   km_serve serve --socket /tmp/km_serve.sock [--runners 1]
//                  [--queue-depth 16] [--dataset-cache-mb 256]
//                  [--result-store-mb 64]
//       Run the daemon (foreground) until a shutdown request.
//
//   km_serve request --socket PATH --workload W --dataset SPEC [--k 8]
//                    [--B 0] [--seed 1] [--frame-bytes auto]
//                    [--workers 0] [--check true] [--timeline true]
//                    [--fresh] [--meta] [--repeat 1]
//       Send one scenario request; print the km.run_result/v1 document
//       (one line).  --meta prints the response meta line first —
//       its "source" field says "engine" or "result_store".
//       --fresh bypasses the result store.  --repeat N sends the same
//       request N times over one connection, requires every response to
//       be byte-identical, and prints the document once — made for
//       timing replay throughput from a shell.
//
//   km_serve stats --socket PATH     Print the km.serve_stats/v1 document.
//   km_serve ping --socket PATH      Liveness check.
//   km_serve shutdown --socket PATH  Stop the daemon.
//
// Exit status: 0 on success, 1 when the server answered with an error
// (including a failed reference check surfacing as status=error), 2 on
// usage or connection errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "runtime/dataset.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/message.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

namespace {

using namespace km;
using namespace km::serve;

int usage(const char* error) {
  if (error) std::fprintf(stderr, "km_serve: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  km_serve serve    --socket PATH [--runners 1]\n"
               "                    [--queue-depth 16]\n"
               "                    [--dataset-cache-mb 256]\n"
               "                    [--result-store-mb 64]\n"
               "  km_serve request  --socket PATH --workload W --dataset SPEC\n"
               "                    [--k 8] [--B 0] [--seed 1]\n"
               "                    [--frame-bytes auto] [--workers 0]\n"
               "                    [--check true] [--timeline true]\n"
               "                    [--fresh] [--meta] [--repeat 1]\n"
               "  km_serve stats    --socket PATH\n"
               "  km_serve ping     --socket PATH\n"
               "  km_serve shutdown --socket PATH\n\n"
               "The daemon caches datasets across requests and replays\n"
               "byte-identical result documents for repeated scenario\n"
               "cells; `request --meta` shows which path served you.\n\n"
               "%s\n",
               dataset_grammar_help().c_str());
  return 2;
}

std::string require_socket(const Options& opts) {
  const std::string path = opts.get_string("socket", "");
  if (path.empty()) throw OptionsError("--socket PATH is required");
  return path;
}

int cmd_serve(const Options& opts) {
  opts.reject_unknown({"socket", "runners", "queue-depth", "dataset-cache-mb",
                       "result-store-mb"});
  ServiceConfig config;
  config.runners = static_cast<std::size_t>(opts.get_uint("runners", 1));
  config.queue_depth =
      static_cast<std::size_t>(opts.get_uint("queue-depth", 16));
  config.dataset_cache_bytes =
      static_cast<std::size_t>(opts.get_uint("dataset-cache-mb", 256)) << 20;
  config.result_store_bytes =
      static_cast<std::size_t>(opts.get_uint("result-store-mb", 64)) << 20;

  ScenarioService service(config);
  ServeServer server(service, require_socket(opts));
  std::printf("km_serve: listening on %s (runners=%zu queue-depth=%zu)\n",
              server.socket_path().c_str(), config.runners,
              config.queue_depth);
  std::fflush(stdout);
  server.start();
  server.wait();
  // Final accounting for logs/CI: one line per cache, one for traffic.
  const ServiceCounters c = service.counters();
  std::printf("km_serve: served requests=%llu runs=%llu replays=%llu "
              "errors=%llu shed=%llu\n",
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.runs),
              static_cast<unsigned long long>(c.replays),
              static_cast<unsigned long long>(c.errors),
              static_cast<unsigned long long>(c.shed));
  std::printf("km_serve: %s\n",
              service.result_store().counters().summary().c_str());
  std::printf("km_serve: %s\n",
              DatasetCache::instance().counters().summary().c_str());
  return 0;
}

/// Sends `line` `repeat` times over one connection, prints the payload
/// once (and the last meta with --meta); exit code from the meta line's
/// status.  Repeats must replay byte-identical documents.
int roundtrip(const Options& opts, const std::string& line, bool print_meta,
              std::uint64_t repeat = 1) {
  ServeClient client(require_socket(opts));
  WireResponse response = client.request(line);
  for (std::uint64_t i = 1; i < repeat; ++i) {
    const WireResponse again = client.request(line);
    if (again.doc != response.doc) {
      std::fprintf(stderr,
                   "km_serve: repeat %llu returned different bytes\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    response = again;
  }
  if (print_meta) std::printf("%s\n", response.meta.c_str());
  std::printf("%s\n", response.doc.c_str());
  // The meta line is compact JSON with fixed key order; a substring
  // check is enough to classify without re-parsing.
  return response.meta.find("\"status\":\"ok\"") != std::string::npos ? 0 : 1;
}

int cmd_request(const Options& opts) {
  opts.reject_unknown({"socket", "workload", "dataset", "k", "B", "seed",
                       "frame-bytes", "workers", "check", "timeline", "fresh",
                       "meta", "repeat"});
  const std::string workload = opts.get_string("workload", "");
  const std::string dataset = opts.get_string("dataset", "");
  if (workload.empty()) return usage("request: --workload is required");
  if (dataset.empty()) return usage("request: --dataset is required");

  JsonWriter w(0);
  w.begin_object();
  w.field("op", "run");
  w.field("workload", workload);
  w.field("dataset", dataset);
  w.field("k", opts.get_uint("k", 8));
  w.field("bandwidth", opts.get_uint("B", 0));
  w.field("seed", opts.get_uint("seed", 1));
  const std::uint64_t frame = opts.get_uint(
      "frame-bytes", static_cast<std::uint64_t>(kFramedPayloadAuto));
  if (frame == static_cast<std::uint64_t>(kFramedPayloadAuto)) {
    w.field("frame", "auto");
  } else {
    w.field("frame", frame);
  }
  w.field("workers", opts.get_uint("workers", 0));
  w.field("check", opts.get_bool("check", true));
  w.field("timeline", opts.get_bool("timeline", true));
  w.field("fresh", opts.get_bool("fresh", false));
  w.end_object();
  return roundtrip(opts, w.str(), opts.get_bool("meta", false),
                   std::max<std::uint64_t>(opts.get_uint("repeat", 1), 1));
}

int cmd_simple(const Options& opts, const char* op) {
  opts.reject_unknown({"socket", "meta"});
  return roundtrip(opts, std::string("{\"op\":\"") + op + "\"}",
                   opts.get_bool("meta", false));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing subcommand");
  const std::string subcommand = argv[1];
  try {
    const Options opts(argc - 1, argv + 1);
    if (subcommand == "serve") return cmd_serve(opts);
    if (subcommand == "request") return cmd_request(opts);
    if (subcommand == "stats") return cmd_simple(opts, "stats");
    if (subcommand == "ping") return cmd_simple(opts, "ping");
    if (subcommand == "shutdown") return cmd_simple(opts, "shutdown");
    if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
      usage(nullptr);
      return 0;
    }
    return usage(("unknown subcommand '" + subcommand + "'").c_str());
  } catch (const OptionsError& e) {
    return usage(e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "km_serve: %s\n", e.what());
    return 2;
  }
}
