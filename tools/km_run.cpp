// km_run — scenario runner for the k-machine simulator.
//
// Turns the registered workloads (src/runtime/) into declarative,
// machine-readable experiments:
//
//   km_run list
//       Show every registered workload with its input kind.
//
//   km_run run --workload mst --dataset gnp:n=1000,p=0.01 --k 8
//              [--B 0] [--seed 1] [--frame-bytes auto] [--timeline true]
//              [--check true] [--json out.json] [--workers 0]
//              [--trace trace.json] [--trace-links]
//       Run one scenario; print a summary line and optionally write the
//       km.run_result/v1 JSON document (--json - writes it to stdout).
//       --trace captures the superstep tracing plane (sim/trace.hpp) and
//       writes a Chrome/Perfetto trace-event file — open it at
//       https://ui.perfetto.dev or chrome://tracing.  --trace-links also
//       records the per-superstep k x k link-bits matrices, written next
//       to the trace as <trace>.links.json.  Tracing never changes
//       rounds/bits accounting.
//
//   km_run sweep --workload mst --dataset gnp:n=1000,p=0.01
//                --k 4,8,16 [--B ...] [--n ...] [--seed 1]
//                [--out-dir sweep-results] [--timeline true] [--check true]
//       Run the full grid over the comma-separated k/B/n lists and emit
//       one JSON document per cell into --out-dir.  --n overrides the
//       dataset spec's n= parameter, so one spec drives a scaling series.
//
// Exit status: 0 on success, 1 if any reference check failed, 2 on usage
// errors.
#include <cctype>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/dataset_cache.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"
#include "sim/trace.hpp"
#include "util/options.hpp"
#include "util/parse.hpp"

namespace {

using namespace km;

int usage(const char* error) {
  if (error) std::fprintf(stderr, "km_run: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  km_run list\n"
               "  km_run run   --workload W --dataset SPEC [--k 8] [--B 0]\n"
               "               [--seed 1] [--frame-bytes auto]\n"
               "               [--timeline true] [--check true]\n"
               "               [--json PATH|-] [--workers 0]\n"
               "               [--trace PATH] [--trace-links]\n"
               "  km_run sweep --workload W --dataset SPEC --k K1,K2,...\n"
               "               [--B B1,...] [--n N1,...] [--seed 1]\n"
               "               [--frame-bytes auto] [--workers 0]\n"
               "               [--out-dir sweep-results] [--timeline true]\n"
               "               [--check true]\n\n"
               "--frame-bytes sets the message-plane framing threshold\n"
               "(transport batching only; 0 disables, default derives from\n"
               "B as one round's bytes clamped to [64, 4096]; metrics\n"
               "identical at every setting).\n"
               "--workers bounds the executor's OS-thread pool (0 = hardware\n"
               "concurrency); k machines multiplex over it as fibers, so k\n"
               "can far exceed the core count. Metrics identical.\n"
               "--trace writes a Chrome/Perfetto trace-event JSON (open in\n"
               "ui.perfetto.dev); --trace-links adds per-superstep k x k\n"
               "link-bit matrices as <trace>.links.json. Metrics identical.\n\n"
               "%s\n",
               dataset_grammar_help().c_str());
  return 2;
}

/// "4,8,16" -> {4,8,16}; empty/omitted -> {fallback}.
std::vector<std::uint64_t> parse_uint_list(const Options& opts,
                                           const std::string& flag,
                                           std::uint64_t fallback) {
  if (!opts.has(flag)) return {fallback};
  const std::string text = opts.get_string(flag, "");
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    std::uint64_t value = 0;
    if (!parse_strict_uint(item, value)) {
      throw OptionsError(
          "flag --" + flag +
          " expects a comma-separated list of non-negative integers, got '" +
          text + "'");
    }
    out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

const Workload* find_workload_or_die(const std::string& name) {
  const Workload* workload = WorkloadRegistry::instance().find(name);
  if (!workload) {
    std::string known;
    for (const Workload* w : WorkloadRegistry::instance().list()) {
      known += " " + std::string(w->name());
    }
    throw OptionsError("unknown workload '" + name + "' (registered:" + known +
                       "); see km_run list");
  }
  return workload;
}

int cmd_list() {
  std::printf("%-20s %-18s %s\n", "WORKLOAD", "INPUT", "DESCRIPTION");
  for (const Workload* w : WorkloadRegistry::instance().list()) {
    std::printf("%-20s %-18s %s\n", std::string(w->name()).c_str(),
                std::string(to_string(w->input_kind())).c_str(),
                std::string(w->description()).c_str());
  }
  return 0;
}

RunParams params_from(const Options& opts, std::uint64_t k, std::uint64_t B) {
  RunParams params;
  params.k = static_cast<std::size_t>(k);
  params.bandwidth_bits = B;
  params.seed = opts.get_uint("seed", 1);
  params.frame_bytes = static_cast<std::size_t>(
      opts.get_uint("frame-bytes", kFramedPayloadAuto));
  params.record_timeline = opts.get_bool("timeline", true);
  params.check = opts.get_bool("check", true);
  params.workers = static_cast<std::size_t>(opts.get_uint("workers", 0));
  return params;
}

/// "out.json" -> "out.links.json"; extensionless paths just append.
std::string links_path_for(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) +
           ".links.json";
  }
  return trace_path + ".links.json";
}

int cmd_run(const Options& opts) {
  opts.reject_unknown({"workload", "dataset", "k", "B", "seed", "frame-bytes",
                       "timeline", "check", "json", "trace", "trace-links",
                       "workers"});
  const std::string workload_name = opts.get_string("workload", "");
  const std::string spec_text = opts.get_string("dataset", "");
  if (workload_name.empty()) return usage("run: --workload is required");
  if (spec_text.empty()) return usage("run: --dataset is required");

  const std::string json_path = opts.get_string("json", "");
  if (opts.has("json") && json_path.empty()) {
    throw OptionsError("flag --json is missing its output path (use - for "
                       "stdout)");
  }
  const std::string trace_path = opts.get_string("trace", "");
  if (opts.has("trace") && trace_path.empty()) {
    throw OptionsError("flag --trace is missing its output path");
  }
  const bool trace_links = opts.get_bool("trace-links", false);
  if (trace_links && trace_path.empty()) {
    throw OptionsError("flag --trace-links requires --trace PATH");
  }

  const Workload* workload = find_workload_or_die(workload_name);
  RunParams params =
      params_from(opts, opts.get_uint("k", 8), opts.get_uint("B", 0));
  params.trace = !trace_path.empty();
  params.trace_links = trace_links;
  const auto dataset =
      load_dataset_cached(spec_text, workload->input_kind(), params.seed);
  const RunResult result = run_workload(*workload, *dataset, params);

  std::printf("%s\n", run_result_summary(result).c_str());
  if (json_path == "-") {
    std::printf("%s\n", run_result_to_json(result).c_str());
  } else if (!json_path.empty()) {
    write_run_result_json(json_path, result);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (result.trace) {
    result.trace->write_chrome_trace(
        trace_path, result.workload + " on " + result.dataset_spec);
    std::printf("wrote %s\n", trace_path.c_str());
    if (trace_links) {
      const std::string links_path = links_path_for(trace_path);
      result.trace->write_link_matrix_json(links_path);
      std::printf("wrote %s\n", links_path.c_str());
    }
  } else if (params.trace) {
    // Tracing compiled out (KM_DISABLE_TRACING): say so instead of
    // silently writing nothing.
    std::fprintf(stderr,
                 "km_run: --trace ignored (built with KM_DISABLE_TRACING)\n");
  }
  return result.check.performed && !result.check.ok ? 1 : 0;
}

/// Spec string reduced to a filename-safe slug: "gnp:n=512,p=0.01" ->
/// "gnp-n512-p0.01".
std::string slug(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_') {
      out.push_back(c);
    } else if (c == ':' || c == ',') {
      out.push_back('-');
    }  // '=' and anything else drop
  }
  return out;
}

int cmd_sweep(const Options& opts) {
  opts.reject_unknown({"workload", "dataset", "k", "B", "n", "seed",
                       "frame-bytes", "timeline", "check", "out-dir",
                       "workers"});
  const std::string workload_name = opts.get_string("workload", "");
  const std::string spec_text = opts.get_string("dataset", "");
  if (workload_name.empty()) return usage("sweep: --workload is required");
  if (spec_text.empty()) return usage("sweep: --dataset is required");

  const Workload* workload = find_workload_or_die(workload_name);
  const DatasetSpec base_spec = DatasetSpec::parse(spec_text);
  const auto ks = parse_uint_list(opts, "k", 8);
  const auto Bs = parse_uint_list(opts, "B", 0);
  const auto ns = parse_uint_list(opts, "n", 0);  // {0} = spec's own n
  const std::string out_dir = opts.get_string("out-dir", "sweep-results");
  if (out_dir.empty()) {
    throw OptionsError("flag --out-dir is missing its directory value");
  }
  std::filesystem::create_directories(out_dir);

  int failed_checks = 0;
  std::size_t cell = 0;
  const std::size_t cells = ks.size() * Bs.size() * ns.size();
  std::set<std::string> used_names;
  const DatasetCacheCounters cache_before = DatasetCache::instance().counters();
  for (const std::uint64_t n : ns) {
    DatasetSpec spec = base_spec;
    if (n != 0) spec.set("n", std::to_string(n));
    for (const std::uint64_t B : Bs) {
      for (const std::uint64_t k : ks) {
        const RunParams params = params_from(opts, k, B);
        // The dataset depends only on (spec, seed), not on B or k: the
        // process-wide cache materializes each n value once and serves
        // every other grid cell from memory.
        const auto dataset = DatasetCache::instance().get(
            spec, workload->input_kind(), params.seed);
        const RunResult result = run_workload(*workload, *dataset, params);
        std::string name = std::string(workload->name()) + "_" +
                           slug(result.dataset_spec) + "_k" +
                           std::to_string(k);
        if (Bs.size() > 1 || B != 0) {
          name += "_B" + std::to_string(result.params.bandwidth_bits);
        }
        // Two cells can resolve to the same name (duplicate list values,
        // or --B 0 resolving to an explicitly-listed bandwidth);
        // disambiguate instead of silently overwriting the first cell.
        if (!used_names.insert(name).second) {
          name += "_cell" + std::to_string(cell + 1);
          used_names.insert(name);
        }
        const std::string path = out_dir + "/" + name + ".json";
        write_run_result_json(path, result);
        ++cell;
        std::printf("[%zu/%zu] %s -> %s\n", cell, cells,
                    run_result_summary(result).c_str(), path.c_str());
        if (result.check.performed && !result.check.ok) ++failed_checks;
      }
    }
  }
  // One line of cache accounting for the whole grid; the smoke test in
  // tests/sweep_cache_smoke.cmake asserts misses == distinct datasets.
  std::printf(
      "%s\n",
      DatasetCache::instance().counters().since(cache_before).summary().c_str());
  if (failed_checks > 0) {
    std::fprintf(stderr, "km_run sweep: %d cell(s) failed their check\n",
                 failed_checks);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing subcommand");
  const std::string subcommand = argv[1];
  try {
    if (subcommand == "list") return cmd_list();
    const Options opts(argc - 1, argv + 1);
    if (subcommand == "run") return cmd_run(opts);
    if (subcommand == "sweep") return cmd_sweep(opts);
    if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
      usage(nullptr);
      return 0;
    }
    return usage(("unknown subcommand '" + subcommand + "'").c_str());
  } catch (const OptionsError& e) {
    return usage(e.what());
  } catch (const DatasetError& e) {
    std::fprintf(stderr, "km_run: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "km_run: %s\n", e.what());
    return 2;
  }
}
