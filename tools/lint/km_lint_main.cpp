// km_lint CLI: scans C++ sources for determinism-contract violations.
//
//   km_lint [--root DIR] [--json FILE] [--quiet] [--list-rules] PATH...
//
// Each PATH is a file or a directory (recursed for C++ extensions).
// Findings print as `path:line: [rule] message`; paths are reported
// relative to --root (default: current directory) so path-scoped rules
// (unordered-iter) see repo-relative names like src/sim/engine.cpp.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool has_cpp_extension(const fs::path& p) {
  static const char* kExts[] = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx"};
  const std::string ext = p.extension().string();
  return std::any_of(std::begin(kExts), std::end(kExts),
                     [&](const char* e) { return ext == e; });
}

std::string logical_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();
  }
  return rel.generic_string();
}

void collect(const fs::path& target, std::vector<fs::path>& files) {
  if (fs::is_directory(target)) {
    for (const auto& entry : fs::recursive_directory_iterator(target)) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  } else {
    files.push_back(target);
  }
}

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

bool write_json(const std::string& file,
                const std::vector<km::lint::Finding>& findings,
                std::size_t files_scanned) {
  std::ofstream out(file);
  if (!out) return false;
  out << "{\n  \"version\": \"km.lint_report/v1\",\n  \"files_scanned\": "
      << files_scanned << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const km::lint::Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"path\": \"";
    json_escape(out, f.path);
    out << "\", \"line\": " << f.line << ", \"rule\": \"";
    json_escape(out, f.rule);
    out << "\", \"message\": \"";
    json_escape(out, f.message);
    out << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return static_cast<bool>(out);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json FILE] [--quiet] [--list-rules] "
               "PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_file;
  bool quiet = false;
  std::vector<fs::path> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_file = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const km::lint::RuleInfo& r : km::lint::rules()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      targets.emplace_back(arg);
    }
  }
  if (targets.empty()) return usage(argv[0]);

  std::vector<fs::path> files;
  for (const fs::path& t : targets) {
    std::error_code ec;
    if (!fs::exists(t, ec) || ec) {
      std::cerr << "km_lint: no such path: " << t.string() << "\n";
      return 2;
    }
    collect(t, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<km::lint::Finding> findings;
  for (const fs::path& file : files) {
    const std::string logical = logical_path(file, root);
    auto result = km::lint::scan_file(file.string(), logical);
    if (!result) {
      std::cerr << "km_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    findings.insert(findings.end(), result->begin(), result->end());
  }

  if (!quiet) {
    for (const km::lint::Finding& f : findings) {
      std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cout << "km_lint: " << files.size() << " file(s), "
              << findings.size() << " finding(s)\n";
  }
  if (!json_file.empty() &&
      !write_json(json_file, findings, files.size())) {
    std::cerr << "km_lint: cannot write " << json_file << "\n";
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
