// km_lint: repo-specific determinism lint for the k-machine simulator.
//
// The engine's reproducibility contract — bit-for-bit identical
// km.run_result/v1 documents for a fixed (workload, dataset, k, B, seed)
// cell, regardless of thread scheduling, host, or wall-clock — survives
// only as long as no code path consults an ambient source of
// nondeterminism.  Generic tools cannot check that contract; km_lint
// encodes it as source rules no off-the-shelf linter knows:
//
//   random-device   std::random_device is hardware entropy: two runs can
//                   never reproduce.  All randomness must flow from
//                   util/rng.hpp, seeded by (config.seed, machine id).
//   c-rand          rand()/srand()/drand48()/random() use hidden global
//                   state shared across threads: results depend on
//                   scheduling even for a fixed seed.
//   wall-clock      ::now()/time()/gettimeofday() reads feed the clock
//                   into the computation.  Timing *metrics* are fine —
//                   annotate those sites with the allow escape below.
//   pointer-key-map std::map/set (and unordered) keyed on pointers order
//                   (or hash) by address; the allocator decides
//                   iteration order, different every run under ASLR.
//   unordered-iter  range-for over a std::unordered_{map,set} inside the
//                   accounting/workload/results paths (src/core,
//                   src/sim, src/runtime, src/graph, src/util, tools):
//                   iteration order is a stdlib implementation detail,
//                   so anything it feeds — send order, JSON fields,
//                   metric sums — can differ across standard libraries.
//                   The algorithm kernels in src/core iterate sorted
//                   views (sorted_keys/for_sorted in core/detail), which
//                   is what lets golden snapshots be platform-portable.
//   unseeded-rng    a <random> engine constructed without a seed
//                   (std::mt19937 g;) uses default_seed — deterministic
//                   but seed-blind: it silently ignores the run's seed
//                   cell.  Construct from the machine RNG instead.
//   trace-outside-module
//                   the allow(wall-clock) escape is honoured only in the
//                   sanctioned clock sites: the tracing plane
//                   (src/sim/trace.{hpp,cpp}, the clock's designated
//                   home) and the wall_ms reads in src/sim/engine.cpp.
//                   Anywhere else the escape comment itself fires this
//                   rule, so a clock read cannot be waved through by
//                   annotation alone — timing instrumentation must go
//                   through sim/trace.hpp.
//
// Matching runs on code only: string/char literals and comments are
// blanked first, so naming a banned construct in a comment (or in this
// file's own rule table) is not a finding.
//
// Escape hatch: a finding is suppressed when the offending line, or the
// line directly above it, carries
//
//     // km-lint: allow(<rule>[, <rule>...])
//
// naming the fired rule.  The comment is the in-tree justification; use
// it sparingly and say why (see the wall_ms sites in sim/engine.cpp).
//
// The library is dependency-free (std only) so the scanner itself can
// never drag nondeterminism into the build; tools/lint/km_lint_main.cpp
// wraps it in a CLI that the tier-1 CTest suite runs over src/ and
// tools/ on every build.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace km::lint {

struct Finding {
  std::string path;     ///< repo-relative path, '/'-separated
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule id, e.g. "wall-clock"
  std::string message;  ///< one-line rationale
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule catalogue, in reporting order.
std::span<const RuleInfo> rules() noexcept;

/// Scans `content` as the file at repo-relative `path` (the path decides
/// which path-scoped rules apply).  Findings appear in line order.
std::vector<Finding> scan_source(std::string_view path,
                                 std::string_view content);

/// Reads `file` from disk and scans it under the logical name `path`.
/// Returns nullopt when the file cannot be read.
std::optional<std::vector<Finding>> scan_file(const std::string& file,
                                              std::string_view path);

}  // namespace km::lint
