#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace km::lint {

namespace {

bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// Rewrites `content` with every comment and string/char literal blanked
// to spaces (line structure preserved), so rules match constructs in
// code, never mentions of them in comments or strings.  Handles //, /**/
// (multi-line), "..." with escapes, '...', and R"delim(...)delim".
std::string blank_non_code(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLine, kBlock, kString, kChar } state =
      State::kCode;
  std::string raw_close;  // ")delim\"" while inside a raw string
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(out[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < out.size() && out[p] != '(' && out[p] != '\n') {
            delim.push_back(out[p]);
            ++p;
          }
          raw_close = ")" + delim + "\"";
          const std::size_t close =
              out.find(raw_close, p == out.size() ? p : p + 1);
          const std::size_t end = close == std::string::npos
                                      ? out.size()
                                      : close + raw_close.size();
          for (std::size_t j = i; j < end; ++j) {
            if (out[j] != '\n') out[j] = ' ';
          }
          i = end == 0 ? 0 : end - 1;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == close || c == '\n') {
          if (c != '\n') out[i] = ' ';
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

// True when `line` (or the raw line above it) carries a
// "km-lint: allow(rule[, rule...])" escape naming `rule`.
bool allow_on_line(std::string_view raw, std::string_view rule) {
  const std::size_t tag = raw.find("km-lint:");
  if (tag == std::string_view::npos) return false;
  const std::size_t open = raw.find("allow(", tag);
  if (open == std::string_view::npos) return false;
  const std::size_t close = raw.find(')', open);
  if (close == std::string_view::npos) return false;
  std::string_view list = raw.substr(open + 6, close - open - 6);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view item = trim(list.substr(0, comma));
    if (item == rule) return true;
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return false;
}

// Occurrences of `token` in `line` with identifier boundaries on both
// ends (a ':' before the token is fine: std::rand is still rand).
std::vector<std::size_t> bounded_occurrences(std::string_view line,
                                             std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

// Skips spaces/tabs from `pos`; returns line.size() at end.
std::size_t skip_ws(std::string_view line, std::size_t pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
    ++pos;
  }
  return pos;
}

constexpr std::array<RuleInfo, 7> kRules = {{
    {"random-device",
     "std::random_device is hardware entropy; runs can never reproduce. "
     "Derive randomness from util/rng.hpp (seeded from config.seed)."},
    {"c-rand",
     "C PRNGs (rand/srand/drand48/...) share hidden global state across "
     "threads; results depend on scheduling. Use util/rng.hpp."},
    {"wall-clock",
     "wall-clock read feeds the host clock into the computation; results "
     "stop being a function of (workload, dataset, k, B, seed). Timing "
     "metrics may carry '// km-lint: allow(wall-clock)' with a reason."},
    {"pointer-key-map",
     "pointer-keyed associative container orders/hashes by address, which "
     "ASLR re-rolls every run. Key by index or id instead."},
    {"unordered-iter",
     "iteration over std::unordered_* in an accounting/workload/results "
     "path; order is a stdlib implementation detail and poisons anything "
     "it feeds (send order, JSON fields, folds). Iterate a sorted view."},
    {"unseeded-rng",
     "<random> engine constructed without a seed ignores the run's seed "
     "cell (always default_seed). Seed it from the machine RNG."},
    {"trace-outside-module",
     "'km-lint: allow(wall-clock)' outside the sanctioned clock sites "
     "(src/sim/trace.* and the wall_ms reads in src/sim/engine.cpp). New "
     "timing code belongs in the tracing plane (sim/trace.hpp), not "
     "behind a fresh escape."},
}};

const RuleInfo& rule_info(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return r;
  }
  return kRules.front();  // unreachable for valid ids
}

// Paths where unordered-iter applies: the accounting / workload /
// results plane plus the algorithm kernels — src/core earned its way in
// once the kernels' unordered iterations were sorted, so golden
// snapshots no longer depend on stdlib hash-iteration order anywhere.
constexpr std::array<std::string_view, 6> kOrderSensitivePaths = {
    "src/core/", "src/sim/",  "src/runtime/",
    "src/graph/", "src/util/", "tools/"};

bool in_order_sensitive_path(std::string_view path) {
  return std::any_of(kOrderSensitivePaths.begin(), kOrderSensitivePaths.end(),
                     [&](std::string_view prefix) {
                       return path.substr(0, prefix.size()) == prefix;
                     });
}

constexpr std::array<std::string_view, 8> kCRandTokens = {
    "rand",   "srand",   "rand_r",  "drand48",
    "lrand48", "mrand48", "random", "srandom"};

constexpr std::array<std::string_view, 7> kWallClockNeedles = {
    "system_clock",  "high_resolution_clock", "::now()",
    "clock_gettime", "gettimeofday",          "time(nullptr)",
    "time(NULL)"};

constexpr std::array<std::string_view, 8> kKeyedContainers = {
    "std::unordered_multimap", "std::unordered_multiset",
    "std::unordered_map",      "std::unordered_set",
    "std::multimap",           "std::multiset",
    "std::map",                "std::set"};

// Longest-first so mt19937_64 is not reported as mt19937 + junk.
constexpr std::array<std::string_view, 8> kStdEngines = {
    "std::default_random_engine",
    "std::minstd_rand0",
    "std::minstd_rand",
    "std::mt19937_64",
    "std::mt19937",
    "std::ranlux24",
    "std::ranlux48",
    "std::knuth_b"};

struct Scanner {
  std::string_view path;
  std::vector<std::string> raw;   // original lines (allow-comment lookup)
  std::vector<std::string> code;  // literals/comments blanked
  std::vector<Finding> findings;

  void fire(std::size_t line_index, std::string_view rule) {
    if (allow_on_line(raw[line_index], rule)) return;
    if (line_index > 0 && allow_on_line(raw[line_index - 1], rule)) return;
    findings.push_back(Finding{std::string(path), line_index + 1,
                               std::string(rule),
                               std::string(rule_info(rule).summary)});
  }

  // --- simple substring/token rules -----------------------------------

  void scan_random_device(std::size_t i, std::string_view line) {
    if (!bounded_occurrences(line, "random_device").empty()) {
      fire(i, "random-device");
    }
  }

  // True when the token at `pos` is a use of the *C library* function:
  // bare (`rand(`), std-qualified (`std::rand(`), or globally qualified
  // (`::rand(`).  Class-qualified calls (Partition::random(), a project
  // method), member accesses (obj.random()), and declarations
  // (`static VertexPartition random(...)`) are not the libc symbol.
  static bool is_libc_call_context(std::string_view line, std::size_t pos) {
    std::size_t p = pos;
    while (p > 0 && (line[p - 1] == ' ' || line[p - 1] == '\t')) --p;
    if (p == 0) return true;
    const char prev = line[p - 1];
    if (ident_char(prev)) return false;  // `Type random(` declaration
    if (prev == '.' || prev == '>') return false;  // member access
    if (prev == ':') {
      if (p < 2 || line[p - 2] != ':') return false;  // lone ':' (label?)
      std::size_t q = p - 2;  // before "::"
      const std::size_t qual_end = q;
      while (q > 0 && ident_char(line[q - 1])) --q;
      const std::string_view qual = line.substr(q, qual_end - q);
      return qual.empty() || qual == "std";  // ::rand / std::rand
    }
    return true;
  }

  void scan_c_rand(std::size_t i, std::string_view line) {
    for (std::string_view token : kCRandTokens) {
      for (std::size_t pos : bounded_occurrences(line, token)) {
        const std::size_t after = skip_ws(line, pos + token.size());
        if (after < line.size() && line[after] == '(' &&
            is_libc_call_context(line, pos)) {
          fire(i, "c-rand");
          return;
        }
      }
    }
  }

  // The only places allowed to escape the wall-clock rule: the tracing
  // module (the clock's designated home, sim/trace.{hpp,cpp}) and the
  // wall_ms reads in sim/engine.cpp.  Everywhere else the escape comment
  // itself is the trace-outside-module finding — a clock read cannot be
  // waved through by annotation alone, it has to live in the plane built
  // for it.
  static bool wall_clock_sanctioned(std::string_view path) noexcept {
    constexpr std::string_view kTraceModule = "src/sim/trace.";
    return path.substr(0, kTraceModule.size()) == kTraceModule ||
           path == "src/sim/engine.cpp";
  }

  void fire_wall_clock(std::size_t i) {
    fire(i, "wall-clock");
    const bool escaped = allow_on_line(raw[i], "wall-clock") ||
                         (i > 0 && allow_on_line(raw[i - 1], "wall-clock"));
    if (escaped && !wall_clock_sanctioned(path)) {
      fire(i, "trace-outside-module");
    }
  }

  void scan_wall_clock(std::size_t i, std::string_view line) {
    for (std::string_view needle : kWallClockNeedles) {
      if (line.find(needle) != std::string_view::npos) {
        fire_wall_clock(i);
        return;
      }
    }
    // Bare clock(): token with boundaries, immediately called.
    for (std::size_t pos : bounded_occurrences(line, "clock")) {
      const std::size_t after = skip_ws(line, pos + 5);
      if (after < line.size() && line[after] == '(') {
        fire_wall_clock(i);
        return;
      }
    }
  }

  void scan_pointer_key(std::size_t i, std::string_view line) {
    for (std::string_view container : kKeyedContainers) {
      for (std::size_t pos : bounded_occurrences(line, container)) {
        std::size_t p = skip_ws(line, pos + container.size());
        if (p >= line.size() || line[p] != '<') continue;
        // First template argument at angle depth 1, same line.
        int depth = 1;
        const std::size_t arg_begin = ++p;
        std::size_t arg_end = std::string_view::npos;
        for (; p < line.size(); ++p) {
          const char c = line[p];
          if (c == '<') ++depth;
          if (c == '>' && --depth == 0) {
            arg_end = p;
            break;
          }
          if (c == ',' && depth == 1) {
            arg_end = p;
            break;
          }
        }
        if (arg_end == std::string_view::npos) continue;  // spans lines
        const std::string_view key =
            trim(line.substr(arg_begin, arg_end - arg_begin));
        if (key.find('*') != std::string_view::npos) {
          fire(i, "pointer-key-map");
          return;
        }
      }
    }
  }

  void scan_unseeded_rng(std::size_t i, std::string_view line) {
    for (std::string_view engine : kStdEngines) {
      for (std::size_t pos : bounded_occurrences(line, engine)) {
        std::size_t p = skip_ws(line, pos + engine.size());
        if (p >= line.size()) continue;
        if (line[p] == '(' || line[p] == '{') {
          // Temporary: flag only the empty-argument form.
          const char close = line[p] == '(' ? ')' : '}';
          const std::size_t q = skip_ws(line, p + 1);
          if (q < line.size() && line[q] == close) {
            fire(i, "unseeded-rng");
            return;
          }
          continue;
        }
        if (!ident_char(line[p])) continue;  // type context (<,>,&,...)
        while (p < line.size() && ident_char(line[p])) ++p;
        p = skip_ws(line, p);
        if (p < line.size() && line[p] == ';') {
          fire(i, "unseeded-rng");
          return;
        }
      }
    }
  }

  // --- unordered-iter: declarations then range-for uses ----------------

  std::vector<std::string> unordered_names() const {
    std::vector<std::string> names;
    // Flatten code to one string so declarations may span lines.
    std::string flat;
    for (const std::string& l : code) {
      flat += l;
      flat += '\n';
    }
    for (std::string_view container :
         {std::string_view("std::unordered_map"),
          std::string_view("std::unordered_set"),
          std::string_view("std::unordered_multimap"),
          std::string_view("std::unordered_multiset")}) {
      std::size_t pos = 0;
      while ((pos = flat.find(container, pos)) != std::string::npos) {
        std::size_t p = pos + container.size();
        pos = p;
        if (p >= flat.size() || flat[p] != '<') continue;
        int depth = 0;
        while (p < flat.size()) {
          if (flat[p] == '<') ++depth;
          if (flat[p] == '>' && --depth == 0) break;
          ++p;
        }
        if (p >= flat.size()) break;
        ++p;  // past '>'
        while (p < flat.size() &&
               (std::isspace(static_cast<unsigned char>(flat[p])) != 0 ||
                flat[p] == '&')) {
          ++p;
        }
        const std::size_t name_begin = p;
        while (p < flat.size() && ident_char(flat[p])) ++p;
        if (p > name_begin) {
          names.emplace_back(flat.substr(name_begin, p - name_begin));
        }
      }
    }
    return names;
  }

  void scan_unordered_iter() {
    if (!in_order_sensitive_path(path)) return;
    const std::vector<std::string> names = unordered_names();
    if (names.empty()) return;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string_view line = code[i];
      for (std::size_t pos : bounded_occurrences(line, "for")) {
        const std::size_t open = skip_ws(line, pos + 3);
        if (open >= line.size() || line[open] != '(') continue;
        // The range expression: after the single ':' (ignoring '::')
        // inside the for parens, up to the matching ')'.
        int depth = 0;
        std::size_t colon = std::string_view::npos;
        std::size_t close = std::string_view::npos;
        for (std::size_t p = open; p < line.size(); ++p) {
          const char c = line[p];
          if (c == '(') ++depth;
          if (c == ')' && --depth == 0) {
            close = p;
            break;
          }
          if (c == ':' && depth == 1) {
            const bool dbl = (p + 1 < line.size() && line[p + 1] == ':') ||
                             (p > 0 && line[p - 1] == ':');
            if (!dbl) colon = p;
          }
        }
        if (colon == std::string_view::npos ||
            close == std::string_view::npos) {
          continue;
        }
        const std::string_view range =
            trim(line.substr(colon + 1, close - colon - 1));
        if (std::find(names.begin(), names.end(), range) != names.end()) {
          fire(i, "unordered-iter");
        }
      }
    }
  }

  void run() {
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string_view line = code[i];
      scan_random_device(i, line);
      scan_c_rand(i, line);
      scan_wall_clock(i, line);
      scan_pointer_key(i, line);
      scan_unseeded_rng(i, line);
    }
    scan_unordered_iter();
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
  }
};

}  // namespace

std::span<const RuleInfo> rules() noexcept { return kRules; }

std::vector<Finding> scan_source(std::string_view path,
                                 std::string_view content) {
  Scanner scanner;
  scanner.path = path;
  scanner.raw = split_lines(content);
  scanner.code = split_lines(blank_non_code(content));
  scanner.run();
  return std::move(scanner.findings);
}

std::optional<std::vector<Finding>> scan_file(const std::string& file,
                                              std::string_view path) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_source(path, buffer.str());
}

}  // namespace km::lint
