// km_trace_check — CLI over tools/trace_check: validates the files
// `km_run --trace` / `--trace-links` produce, for CI and local use.
//
//   km_trace_check trace.json [--links trace.links.json] [--expect-k K]
//
// Exit status: 0 when every document is valid, 1 on validation findings,
// 2 on usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace_check.hpp"

namespace {

int usage(const char* error) {
  if (error) std::fprintf(stderr, "km_trace_check: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: km_trace_check TRACE.json [--links LINKS.json] [--expect-k K]\n"
      "\n"
      "Validates a Chrome/Perfetto trace written by `km_run --trace` (and\n"
      "optionally the km.link_trace/v1 file from --trace-links): well-formed\n"
      "events, non-negative durations, per-machine monotone timestamps, one\n"
      "named thread per machine, k x k matrices with a zero diagonal.\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Parses and checks one file; returns false on any finding.
bool run_check(const std::string& path, std::size_t expect_k, bool links,
               std::string& summary) {
  using km::trace_check::CheckResult;
  using km::trace_check::JsonValue;
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "km_trace_check: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  JsonValue doc;
  std::string parse_error;
  if (!km::trace_check::parse_json(text, doc, parse_error)) {
    std::fprintf(stderr, "km_trace_check: %s: %s\n", path.c_str(),
                 parse_error.c_str());
    return false;
  }
  const CheckResult result =
      links ? km::trace_check::check_link_trace(doc, expect_k)
            : km::trace_check::check_chrome_trace(doc, expect_k);
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "km_trace_check: %s: %s\n", path.c_str(), e.c_str());
  }
  if (links) {
    summary = path + ": k=" + std::to_string(result.machines) + ", " +
              std::to_string(result.matrices) + " matrices";
  } else {
    summary = path + ": " + std::to_string(result.machines) + " machines, " +
              std::to_string(result.span_events) + " spans, " +
              std::to_string(result.counter_events) + " counter events";
  }
  return result.ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string links_path;
  std::size_t expect_k = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--links") {
      if (++i >= argc) return usage("--links is missing its path");
      links_path = argv[i];
    } else if (arg == "--expect-k") {
      if (++i >= argc) return usage("--expect-k is missing its value");
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i], &end, 10);
      if (!end || *end != '\0' || v == 0) {
        return usage("--expect-k expects a positive integer");
      }
      expect_k = static_cast<std::size_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(nullptr);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown flag '" + arg + "'").c_str());
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage("more than one trace file given");
    }
  }
  if (trace_path.empty()) return usage("missing trace file");

  bool ok = true;
  std::string summary;
  ok &= run_check(trace_path, expect_k, /*links=*/false, summary);
  std::printf("%s\n", summary.c_str());
  if (!links_path.empty()) {
    ok &= run_check(links_path, expect_k, /*links=*/true, summary);
    std::printf("%s\n", summary.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "km_trace_check: FAILED\n");
    return 1;
  }
  std::printf("km_trace_check: OK\n");
  return 0;
}
