// km_trace_check: structural validator for the superstep tracing plane's
// export formats (sim/trace.hpp).
//
// Two documents, two checkers:
//  - check_chrome_trace: Chrome/Perfetto trace-event JSON ("traceEvents"
//    array).  Verifies every event is well-formed for its ph type, X
//    slices have non-negative durations and per-tid non-decreasing
//    timestamps (the per-machine buffers record in time order — a
//    violation means the trace plane is broken, not just ugly), thread
//    names are unique per tid, and — with expect_k — that exactly k
//    machine threads are named.
//  - check_link_trace: the km.link_trace/v1 document.  Verifies the k x k
//    shape of every matrix, a zero diagonal (machines never message
//    themselves), and strictly increasing superstep indices.
//
// The JSON layer is the repo-wide read-side parser (util/json_parse.hpp,
// originally written here and promoted once km_serve needed it too).
// The aliases below keep existing km::trace_check:: spellings working.
//
// Built as a library (km_trace_check_lib) so tests/test_trace.cpp can
// validate exports in-process, plus the km_trace_check CLI for CI.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/json_parse.hpp"

namespace km::trace_check {

using km::JsonValue;
using km::parse_json;

struct CheckResult {
  std::vector<std::string> errors;  ///< empty means the document is valid
  std::size_t machines = 0;         ///< distinct named machine tids / k
  std::size_t span_events = 0;      ///< ph "X" slices seen
  std::size_t counter_events = 0;   ///< ph "C" samples seen
  std::size_t matrices = 0;         ///< link matrices seen

  bool ok() const noexcept { return errors.empty(); }
};

/// Validates a Chrome/Perfetto trace-event document.  `expect_k` == 0
/// accepts any machine count; nonzero requires exactly that many named
/// machine threads.
CheckResult check_chrome_trace(const JsonValue& doc, std::size_t expect_k);

/// Validates a km.link_trace/v1 document (same expect_k convention).
CheckResult check_link_trace(const JsonValue& doc, std::size_t expect_k);

}  // namespace km::trace_check
