#include "trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>

namespace km::trace_check {

// ---------------------------------------------------------------------------
// Checkers

namespace {

bool get_number(const JsonValue& obj, std::string_view key, double& out) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is(JsonValue::Kind::kNumber)) return false;
  out = v->number;
  return true;
}

bool get_string(const JsonValue& obj, std::string_view key, std::string& out) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is(JsonValue::Kind::kString)) return false;
  out = v->string;
  return true;
}

/// A number that is a non-negative integer (tids, counters, supersteps).
bool is_uint(double v) {
  return v >= 0.0 && v == std::floor(v);
}

void add_error(CheckResult& result, std::size_t index,
               const std::string& what) {
  // Cap the noise on badly broken documents; the first errors identify
  // the problem, the count says how widespread it is.
  if (result.errors.size() < 32) {
    result.errors.push_back("event[" + std::to_string(index) + "]: " + what);
  }
}

}  // namespace

CheckResult check_chrome_trace(const JsonValue& doc, std::size_t expect_k) {
  CheckResult result;
  if (!doc.is(JsonValue::Kind::kObject)) {
    result.errors.push_back("document: not a JSON object");
    return result;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is(JsonValue::Kind::kArray)) {
    result.errors.push_back("document: missing \"traceEvents\" array");
    return result;
  }

  std::map<double, std::string> thread_names;  // tid -> name
  std::map<double, double> last_ts;            // tid -> last X-event ts
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (!ev.is(JsonValue::Kind::kObject)) {
      add_error(result, i, "not an object");
      continue;
    }
    std::string ph;
    if (!get_string(ev, "ph", ph)) {
      add_error(result, i, "missing \"ph\"");
      continue;
    }
    double pid = 0.0;
    if (!get_number(ev, "pid", pid) || !is_uint(pid)) {
      add_error(result, i, "missing or non-integer \"pid\"");
      continue;
    }
    if (ph == "M") {
      std::string name;
      if (!get_string(ev, "name", name)) {
        add_error(result, i, "metadata event without \"name\"");
        continue;
      }
      const JsonValue* args = ev.find("args");
      std::string value;
      if (!args || !get_string(*args, "name", value) || value.empty()) {
        add_error(result, i, "metadata \"" + name + "\" without args.name");
        continue;
      }
      if (name == "thread_name") {
        double tid = 0.0;
        if (!get_number(ev, "tid", tid) || !is_uint(tid)) {
          add_error(result, i, "thread_name without integer \"tid\"");
          continue;
        }
        if (!thread_names.emplace(tid, value).second) {
          add_error(result, i,
                    "duplicate thread_name for tid " + std::to_string(tid));
        }
      } else if (name != "process_name") {
        add_error(result, i, "unknown metadata \"" + name + "\"");
      }
      continue;
    }
    if (ph == "X") {
      ++result.span_events;
      std::string name;
      double tid = 0.0, ts = 0.0, dur = 0.0;
      if (!get_string(ev, "name", name) || name.empty()) {
        add_error(result, i, "slice without \"name\"");
        continue;
      }
      if (!get_number(ev, "tid", tid) || !is_uint(tid)) {
        add_error(result, i, "slice without integer \"tid\"");
        continue;
      }
      if (!get_number(ev, "ts", ts) || ts < 0.0) {
        add_error(result, i, "slice without non-negative \"ts\"");
        continue;
      }
      if (!get_number(ev, "dur", dur) || dur < 0.0) {
        add_error(result, i, "slice without non-negative \"dur\"");
        continue;
      }
      const JsonValue* args = ev.find("args");
      double superstep = 0.0;
      if (!args || !get_number(*args, "superstep", superstep) ||
          !is_uint(superstep)) {
        add_error(result, i, "slice without integer args.superstep");
      }
      // Per-machine buffers record in time order; the exporter preserves
      // it.  Regression here means the span plumbing is broken.
      const auto [it, inserted] = last_ts.emplace(tid, ts);
      if (!inserted) {
        if (ts < it->second) {
          add_error(result, i,
                    "timestamps regress on tid " + std::to_string(tid));
        }
        it->second = ts;
      }
      continue;
    }
    if (ph == "C") {
      ++result.counter_events;
      std::string name;
      double ts = 0.0;
      if (!get_string(ev, "name", name) || name.empty()) {
        add_error(result, i, "counter without \"name\"");
        continue;
      }
      if (!get_number(ev, "ts", ts) || ts < 0.0) {
        add_error(result, i, "counter without non-negative \"ts\"");
        continue;
      }
      const JsonValue* args = ev.find("args");
      if (!args || !args->is(JsonValue::Kind::kObject) ||
          args->object.empty()) {
        add_error(result, i, "counter without args");
        continue;
      }
      for (const auto& [key, value] : args->object) {
        if (!value.is(JsonValue::Kind::kNumber)) {
          add_error(result, i, "counter arg \"" + key + "\" not a number");
        }
      }
      continue;
    }
    add_error(result, i, "unexpected ph \"" + ph + "\"");
  }

  result.machines = thread_names.size();
  if (result.span_events == 0) {
    result.errors.push_back("document: no ph \"X\" span events");
  }
  // Every slice must land on a named machine track.
  for (const auto& [tid, ts] : last_ts) {
    (void)ts;
    if (thread_names.find(tid) == thread_names.end()) {
      result.errors.push_back("document: slices on unnamed tid " +
                              std::to_string(tid));
    }
  }
  if (expect_k != 0 && thread_names.size() != expect_k) {
    result.errors.push_back(
        "document: expected " + std::to_string(expect_k) +
        " machine threads, found " + std::to_string(thread_names.size()));
  }
  return result;
}

CheckResult check_link_trace(const JsonValue& doc, std::size_t expect_k) {
  CheckResult result;
  if (!doc.is(JsonValue::Kind::kObject)) {
    result.errors.push_back("document: not a JSON object");
    return result;
  }
  std::string schema;
  if (!get_string(doc, "schema", schema) || schema != "km.link_trace/v1") {
    result.errors.push_back("document: schema is not \"km.link_trace/v1\"");
    return result;
  }
  double k_value = 0.0;
  if (!get_number(doc, "k", k_value) || !is_uint(k_value) || k_value < 1.0) {
    result.errors.push_back("document: missing positive integer \"k\"");
    return result;
  }
  const std::size_t k = static_cast<std::size_t>(k_value);
  result.machines = k;
  if (expect_k != 0 && k != expect_k) {
    result.errors.push_back("document: expected k=" +
                            std::to_string(expect_k) + ", found k=" +
                            std::to_string(k));
  }
  const JsonValue* supersteps = doc.find("supersteps");
  if (!supersteps || !supersteps->is(JsonValue::Kind::kArray)) {
    result.errors.push_back("document: missing \"supersteps\" array");
    return result;
  }
  double prev_superstep = -1.0;
  for (std::size_t i = 0; i < supersteps->array.size(); ++i) {
    const JsonValue& entry = supersteps->array[i];
    const std::string where = "supersteps[" + std::to_string(i) + "]";
    if (!entry.is(JsonValue::Kind::kObject)) {
      result.errors.push_back(where + ": not an object");
      continue;
    }
    double superstep = 0.0;
    if (!get_number(entry, "superstep", superstep) || !is_uint(superstep)) {
      result.errors.push_back(where + ": missing integer \"superstep\"");
      continue;
    }
    if (superstep <= prev_superstep) {
      result.errors.push_back(where + ": superstep indices not increasing");
    }
    prev_superstep = superstep;
    const JsonValue* bits = entry.find("bits");
    if (!bits || !bits->is(JsonValue::Kind::kArray) ||
        bits->array.size() != k) {
      result.errors.push_back(where + ": \"bits\" is not a k-row array");
      continue;
    }
    ++result.matrices;
    for (std::size_t src = 0; src < k; ++src) {
      const JsonValue& row = bits->array[src];
      if (!row.is(JsonValue::Kind::kArray) || row.array.size() != k) {
        result.errors.push_back(where + ": row " + std::to_string(src) +
                                " is not length k");
        continue;
      }
      for (std::size_t dst = 0; dst < k; ++dst) {
        const JsonValue& cell = row.array[dst];
        if (!cell.is(JsonValue::Kind::kNumber) || !is_uint(cell.number)) {
          result.errors.push_back(where + ": cell [" + std::to_string(src) +
                                  "][" + std::to_string(dst) +
                                  "] is not a non-negative integer");
        } else if (src == dst && cell.number != 0.0) {
          result.errors.push_back(where + ": nonzero diagonal at machine " +
                                  std::to_string(src));
        }
      }
    }
  }
  return result;
}

}  // namespace km::trace_check
