#!/usr/bin/env python3
"""Gate the sketch plane's round scaling from bench_sketch's JSON output.

Reads the Google Benchmark document written by bench_sketch
(bench-results/BENCH_sketch.json after scripts/run_benches.sh), re-fits
the rounds-vs-k log-log slopes for the sketch algorithm and the
centralized baseline, and fails if either the sketch exponent or the
sketch/baseline separation regresses.  The rounds counters come from
deterministic engine runs (fixed seeds, hash-based randomness), so the
fitted slopes are exact across hosts and --quick has no effect on them
-- only the wall-clock fields vary.

The bench grid is n=1024, k in {2,4,8,16}: smaller than the n=4096 grid
tests/test_round_bounds.cpp pins (where the fitted exponent clears
-1.5), so the per-superstep round floors flatten the curve and the
thresholds here are correspondingly looser.  Measured on the current
protocol: sketch -1.301, baseline -0.843.

Usage: scripts/check_sketch_slope.py [path/to/BENCH_sketch.json]
"""

import json
import math
import re
import sys

# Looser than test_round_bounds' -1.5: the bench grid includes k=16,
# where five supersteps' worth of >=1-round floors dominate at n=1024.
SKETCH_SLOPE_MAX = -1.25
BASELINE_SLOPE_RANGE = (-1.05, -0.6)
MIN_SEPARATION = 0.3  # sketch_slope <= baseline_slope - this


def fit_slope(points):
    """Least-squares slope of log(rounds) against log(k)."""
    xs = [math.log(k) for k, _ in points]
    ys = [math.log(r) for _, r in points]
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
        (x - mx) ** 2 for x in xs
    )


def series(doc, bench_name):
    points = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        m = re.match(rf"{bench_name}/(\d+)", b.get("name", ""))
        if m and "rounds" in b:
            points.append((int(m.group(1)), float(b["rounds"])))
    return sorted(points)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench-results/BENCH_sketch.json"
    with open(path) as f:
        doc = json.load(f)

    sketch = series(doc, "BM_SketchConnectivityRounds")
    baseline = series(doc, "BM_BaselineConnectivityRounds")
    if len(sketch) < 3 or len(baseline) < 3:
        print(
            f"FAIL: need >=3 k-points per series, got sketch={sketch} "
            f"baseline={baseline} in {path}"
        )
        return 1

    s, b = fit_slope(sketch), fit_slope(baseline)
    print(f"sketch   rounds-vs-k: {sketch}  slope {s:+.3f}")
    print(f"baseline rounds-vs-k: {baseline}  slope {b:+.3f}")

    ok = True
    if s > SKETCH_SLOPE_MAX:
        print(f"FAIL: sketch slope {s:+.3f} > {SKETCH_SLOPE_MAX} "
              "(lost its k^-2 scaling)")
        ok = False
    if not BASELINE_SLOPE_RANGE[0] <= b <= BASELINE_SLOPE_RANGE[1]:
        print(f"FAIL: baseline slope {b:+.3f} outside {BASELINE_SLOPE_RANGE} "
              "(no longer the n/k strawman)")
        ok = False
    if s > b - MIN_SEPARATION:
        print(f"FAIL: separation {b - s:.3f} < {MIN_SEPARATION} "
              "(the paper's k^-2 vs k^-1 gap collapsed)")
        ok = False
    if ok:
        print(f"OK: slope {s:+.3f} <= {SKETCH_SLOPE_MAX}, "
              f"separation {b - s:.3f} >= {MIN_SEPARATION}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
