#!/usr/bin/env bash
# Drive the three static-analysis legs over the tree:
#
#   1. analyze preset — clang build with -Werror=thread-safety over the
#      src/util/annotations.hpp capability model (skipped with a notice
#      when clang++ is not on PATH; the annotations are clang-only).
#   2. km_lint — the repo-specific determinism lint (tools/lint), run
#      over src/ and tools/ with a machine-readable JSON report.
#   3. clang-tidy — the curated .clang-tidy profile, driven from the
#      compile database (skipped with a notice when clang-tidy or the
#      compile database is missing).
#
# Also links build/<dir>/compile_commands.json to the repo root so
# editors and clang tools pick it up without configuration.
#
# Usage: scripts/run_static_analysis.sh [--build-dir DIR] [--report FILE]
# Exit: 0 when every leg that could run is clean; non-zero otherwise.
set -euo pipefail

BUILD_DIR=build/analyze
REPORT=km_lint_report.json

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --report)    REPORT="$2"; shift 2 ;;
    -h|--help)   grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

failures=0

# --- Leg 1: thread-safety analysis (clang only) -------------------------
if command -v clang++ >/dev/null 2>&1; then
  echo "== analyze: clang -Werror=thread-safety =="
  cmake --preset analyze
  cmake --build --preset analyze -j "$(nproc)" || failures=$((failures + 1))
  BUILD_DIR=build/analyze
else
  echo "== analyze: SKIPPED (clang++ not on PATH; the thread-safety" \
       "analysis only exists in clang — CI runs this leg) =="
  # Fall back to any configured tree for the compile database / km_lint.
  if [[ ! -d "$BUILD_DIR" ]]; then
    for candidate in build build/debug build/release; do
      if [[ -f "$candidate/CMakeCache.txt" ]]; then
        BUILD_DIR="$candidate"
        break
      fi
    done
  fi
  if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    BUILD_DIR=build/debug
    cmake --preset debug
  fi
  cmake --build "$BUILD_DIR" --target km_lint -j "$(nproc)"
fi

# --- compile_commands.json at the repo root -----------------------------
if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
  ln -sf "$BUILD_DIR/compile_commands.json" compile_commands.json
  echo "== compile_commands.json -> $BUILD_DIR/compile_commands.json =="
fi

# --- Leg 2: km_lint determinism rules -----------------------------------
KM_LINT="$BUILD_DIR/tools/lint/km_lint"
if [[ ! -x "$KM_LINT" ]]; then
  cmake --build "$BUILD_DIR" --target km_lint -j "$(nproc)"
fi
echo "== km_lint: determinism rules over src/ and tools/ =="
"$KM_LINT" --root . --json "$REPORT" src tools || failures=$((failures + 1))
echo "   report: $REPORT"

# --- Leg 3: clang-tidy ---------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1 && command -v run-clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: curated .clang-tidy profile =="
  run-clang-tidy -quiet -p "$BUILD_DIR" "src/.*\.cpp$" "tools/.*\.cpp$" \
    || failures=$((failures + 1))
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (serial; run-clang-tidy not found) =="
  mapfile -t sources < <(find src tools -name '*.cpp' | sort)
  clang-tidy -quiet -p "$BUILD_DIR" "${sources[@]}" \
    || failures=$((failures + 1))
else
  echo "== clang-tidy: SKIPPED (not on PATH — CI runs this leg) =="
fi

if [[ $failures -gt 0 ]]; then
  echo "static analysis: $failures leg(s) FAILED"
  exit 1
fi
echo "static analysis: all runnable legs clean"
