#!/usr/bin/env bash
# Build the Release tree and run every bench_* binary, collecting Google
# Benchmark JSON into BENCH_<name>.json (one file per binary) under
# --out-dir (default: bench-results/).  Console output streams through so
# the paper-curve tables printed by bench_common.hpp stay visible.
#
# Every result document is stamped with the run's provenance (git SHA +
# dirty flag, build type, host/CPU, UTC date) so a BENCH_*.json pulled
# from a CI artifact months later still says what produced it: the
# context is written to BENCH_CONTEXT.json and, when python3 is
# available, injected into each document under a "km_context" key.
#
# Usage: scripts/run_benches.sh [--build-dir DIR] [--out-dir DIR]
#                               [--filter REGEX] [--quick]
#
# --quick caps per-benchmark measurement time (for CI trend points, not
# publication numbers; the stamp records quick=true so nobody mistakes
# one for the other).
set -euo pipefail

# A dedicated build dir: configuring with KM_BUILD_TESTS=OFF must not
# poison the cache of the shared release preset tree.
BUILD_DIR=build/bench
OUT_DIR=bench-results
FILTER=""
QUICK=false
BUILD_TYPE=Release

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir)   OUT_DIR="$2"; shift 2 ;;
    --filter)    FILTER="$2"; shift 2 ;;
    --quick)     QUICK=true; shift ;;
    -h|--help)   grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" -DKM_BUILD_TESTS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$OUT_DIR"

# Provenance stamp: one context document for the whole run.
write_context() {
  local sha=unknown dirty=false cpu=unknown
  if git -C "$REPO_ROOT" rev-parse HEAD > /dev/null 2>&1; then
    sha="$(git -C "$REPO_ROOT" rev-parse HEAD)"
    git -C "$REPO_ROOT" diff --quiet HEAD 2> /dev/null || dirty=true
  fi
  if [[ -r /proc/cpuinfo ]]; then
    cpu="$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo)"
    [[ -n $cpu ]] || cpu=unknown
  fi
  cat > "$OUT_DIR/BENCH_CONTEXT.json" <<EOF
{
  "git_sha": "$sha",
  "git_dirty": $dirty,
  "build_type": "$BUILD_TYPE",
  "quick": $QUICK,
  "host": "$(uname -srm)",
  "nproc": $(nproc),
  "cpu": "$cpu",
  "date_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
}
write_context

shopt -s nullglob
benches=("$BUILD_DIR"/bench/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "no bench binaries under $BUILD_DIR/bench -- was Google Benchmark found at configure time?" >&2
  exit 1
fi

failures=0
for bin in "${benches[@]}"; do
  [[ -x $bin && ! -d $bin ]] || continue
  name="$(basename "$bin")"
  if [[ -n $FILTER && ! $name =~ $FILTER ]]; then
    continue
  fi
  echo "==> $name"
  quick_args=()
  if [[ $QUICK == true ]]; then
    quick_args=(--benchmark_min_time=0.05)
  fi
  if ! "$bin" --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
              --benchmark_out_format=json "${quick_args[@]}"; then
    echo "FAILED: $name" >&2
    failures=$((failures + 1))
  fi
done

# Inject the context stamp into each document (python3 path; without it
# the BENCH_CONTEXT.json sidecar is the stamp).
if command -v python3 > /dev/null; then
  python3 - "$OUT_DIR" <<'EOF'
import glob, json, os, sys

out_dir = sys.argv[1]
with open(os.path.join(out_dir, "BENCH_CONTEXT.json")) as f:
    context = json.load(f)
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json"))):
    if os.path.basename(path) in ("BENCH_ALL.json", "BENCH_CONTEXT.json"):
        continue
    try:
        with open(path) as f:
            doc = json.load(f)
    except ValueError:
        continue  # truncated output from a crashed bench; merge skips it too
    doc["km_context"] = context
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
EOF
fi

# Merge the per-bench documents into one artifact so the perf trajectory
# across commits is a single file: BENCH_ALL.json maps bench name -> the
# Google Benchmark JSON document.  A bench that crashed mid-run can leave
# an empty or truncated output file, so each input is validated (python3
# when available, non-emptiness otherwise) and skipped — not merged —
# when invalid, keeping the artifact itself valid JSON.
merge_results() {
  local merged="$OUT_DIR/BENCH_ALL.json" first=1 count=0 f name
  {
    printf '{\n'
    for f in "$OUT_DIR"/BENCH_*.json; do
      [[ $(basename "$f") == BENCH_ALL.json ]] && continue
      if command -v python3 > /dev/null; then
        python3 -m json.tool "$f" > /dev/null 2>&1 || {
          echo "skipping invalid $f" >&2; continue; }
      elif [[ ! -s $f ]]; then
        echo "skipping empty $f" >&2; continue
      fi
      name="$(basename "$f" .json)"
      name="${name#BENCH_}"
      [[ $first -eq 1 ]] || printf ',\n'
      first=0
      printf '"%s": ' "$name"
      cat "$f"
      count=$((count + 1))
    done
    printf '\n}\n'
  } > "$merged"
  echo "Merged $count document(s) into $merged"
}
merge_results

echo
echo "Results in $OUT_DIR/ ($(ls "$OUT_DIR" | wc -l) files), $failures failure(s)."
exit "$((failures > 0))"
