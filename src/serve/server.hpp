// ServeServer: Unix-domain-socket NDJSON transport over a
// ScenarioService.
//
// One accept thread, one thread per connection; each connection is
// serial (read a request line, write the two response lines) while
// different connections run concurrently — the service's bounded
// executor is what limits simultaneous engine runs.  A shutdown request
// answers its two lines, then stops the listener and closes every open
// connection so all threads join promptly.
//
// The socket path must fit sockaddr_un (~100 bytes); keep it short
// (/tmp/km_serve.sock).  An existing socket file at the path is
// unlinked on start — a stale file from a killed daemon must not block
// restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/annotations.hpp"

namespace km::serve {

class ServeServer {
 public:
  /// Binds and listens; throws std::runtime_error on socket errors.
  ServeServer(ScenarioService& service, std::string socket_path);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Starts the accept loop in the background.
  void start();

  /// Blocks until a shutdown request (or stop()) ends the server.
  void wait();

  /// Idempotent; also invoked by a client's shutdown op.
  void stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void close_all_connections();

  ScenarioService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  Mutex mu_;
  std::vector<int> connection_fds_ KM_GUARDED_BY(mu_);
  std::vector<std::thread> connection_threads_ KM_GUARDED_BY(mu_);
};

}  // namespace km::serve
