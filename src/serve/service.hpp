// ScenarioService: the socketless core of km_serve.
//
// Owns the result store, shares the process-wide dataset cache, and
// executes run requests on a bounded executor: at most `runners`
// concurrent engine runs, at most `queue_depth` callers parked waiting
// for a slot, and everything beyond that shed immediately with a "queue
// full" error — a long-running daemon must degrade by refusing work, not
// by growing an unbounded backlog.
//
// Separated from the socket transport (server.hpp) so tests and the
// bench harness can drive scenarios in-process: ScenarioService::handle
// is plain thread-safe request → response, no fds involved.
//
// No wall-clock reads anywhere in this layer (km_lint's wall-clock rule
// is absolute outside the tracing plane); latency claims about cache
// hits are measured by the bench harness and CI, not by the service.
#pragma once

#include <atomic>
#include <cstdint>
#include <semaphore>
#include <string>

#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "runtime/dataset_cache.hpp"

namespace km::serve {

struct ServiceConfig {
  std::size_t runners = 1;      ///< max concurrent engine runs
  std::size_t queue_depth = 16; ///< waiters beyond the running set
  std::size_t dataset_cache_bytes = DatasetCache::kDefaultByteBudget;
  std::size_t result_store_bytes = ResultStore::kDefaultByteBudget;
};

/// Service-level request accounting (cache counters live with their
/// caches; these count traffic).
struct ServiceCounters {
  std::uint64_t requests = 0;     ///< every request handled
  std::uint64_t runs = 0;         ///< engine runs executed
  std::uint64_t replays = 0;      ///< run requests served from the store
  std::uint64_t errors = 0;       ///< error responses
  std::uint64_t shed = 0;         ///< run requests refused (queue full)
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig config);

  /// Thread-safe.  Run requests may block until an executor slot frees
  /// up (bounded by queue_depth); other ops never block.
  Response handle(const Request& request);

  /// Compact one-line stats document (also the payload of op=stats).
  std::string stats_doc() const;

  ServiceCounters counters() const;
  ResultStore& result_store() { return store_; }
  const ServiceConfig& config() const { return config_; }

 private:
  Response handle_run(const Request& request);

  ServiceConfig config_;
  ResultStore store_;
  std::counting_semaphore<> run_slots_;
  std::atomic<std::uint64_t> waiting_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace km::serve
