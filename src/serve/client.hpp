// ServeClient: blocking NDJSON client for the km_serve socket, used by
// the km_serve CLI's request/stats/ping/shutdown modes, the stress
// tests, and the bench harness.
#pragma once

#include <string>
#include <string_view>

namespace km::serve {

/// One response as received: the parsed-out meta line and payload line.
struct WireResponse {
  std::string meta;
  std::string doc;
};

class ServeClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one request line and reads the two response lines.  Throws
  /// std::runtime_error if the connection drops mid-response.
  WireResponse request(std::string_view line);

 private:
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace km::serve
