#include "serve/result_store.hpp"

#include <utility>

namespace km::serve {

ResultStoreCounters ResultStoreCounters::since(
    const ResultStoreCounters& base) const noexcept {
  ResultStoreCounters delta;
  delta.hits = hits - base.hits;
  delta.misses = misses - base.misses;
  delta.evictions = evictions - base.evictions;
  delta.entries = entries;
  delta.bytes = bytes;
  return delta;
}

std::string ResultStoreCounters::summary() const {
  return "result_store: hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions) +
         " entries=" + std::to_string(entries) +
         " bytes=" + std::to_string(bytes);
}

ResultStore::ResultStore(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

std::string ResultStore::scenario_key(std::string_view workload,
                                      std::string_view dataset_key,
                                      const RunParams& params) {
  std::string key(workload);
  key += '\x1f';
  key += dataset_key;
  key += "\x1f" "k=" + std::to_string(params.k);
  key += "\x1f" "B=" + std::to_string(params.bandwidth_bits);
  key += "\x1f" "seed=" + std::to_string(params.seed);
  key += "\x1f" "frame=" + std::to_string(params.frame_bytes);
  key += "\x1f" "check=" + std::to_string(params.check ? 1 : 0);
  key += "\x1f" "timeline=" + std::to_string(params.record_timeline ? 1 : 0);
  return key;
}

std::shared_ptr<const std::string> ResultStore::find(std::string_view key) {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_use = ++tick_;
  return it->second.doc;
}

std::shared_ptr<const std::string> ResultStore::put(std::string_view key,
                                                    std::string doc) {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.last_use = ++tick_;
    return it->second.doc;  // first writer won; keep its bytes canonical
  }
  Entry entry;
  entry.doc = std::make_shared<const std::string>(std::move(doc));
  entry.last_use = ++tick_;
  bytes_ += entry.doc->size();
  auto stored = entry.doc;
  entries_.emplace(std::string(key), std::move(entry));
  evict_to_fit(key);
  return stored;
}

ResultStoreCounters ResultStore::counters() const {
  MutexLock lock(mu_);
  ResultStoreCounters out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

void ResultStore::clear() {
  MutexLock lock(mu_);
  entries_.clear();
  bytes_ = 0;
}

void ResultStore::evict_to_fit(std::string_view keep_key) {
  // Same LRU discipline as DatasetCache::evict_to_fit: linear scan at
  // store cardinality, never evicting the entry just touched.
  while (bytes_ > byte_budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_ -= victim->second.doc->size();
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace km::serve
