#include "serve/protocol.hpp"

#include <cmath>
#include <limits>

#include "sim/message.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace km::serve {

namespace {

/// JSON numbers arrive as double; reject anything that is not an exact
/// non-negative integer so a typo like "k": 4.5 fails loudly.
bool as_uint(const JsonValue& v, std::uint64_t& out) {
  if (!v.is(JsonValue::Kind::kNumber)) return false;
  if (v.number < 0 || v.number != std::floor(v.number)) return false;
  if (v.number > static_cast<double>(std::numeric_limits<std::int64_t>::max()))
    return false;
  out = static_cast<std::uint64_t>(v.number);
  return true;
}

}  // namespace

bool parse_request(std::string_view line, Request& out, std::string& error) {
  JsonValue doc;
  if (!parse_json(line, doc, error)) return false;
  if (!doc.is(JsonValue::Kind::kObject)) {
    error = "request must be a JSON object";
    return false;
  }
  out = Request{};
  const std::string op =
      doc.find("op") && doc.find("op")->is(JsonValue::Kind::kString)
          ? doc.find("op")->string
          : "run";
  if (op == "run") {
    out.op = Request::Op::kRun;
  } else if (op == "stats") {
    out.op = Request::Op::kStats;
  } else if (op == "ping") {
    out.op = Request::Op::kPing;
  } else if (op == "shutdown") {
    out.op = Request::Op::kShutdown;
  } else {
    error = "unknown op '" + op + "' (run|stats|ping|shutdown)";
    return false;
  }

  for (const auto& [key, value] : doc.object) {
    std::uint64_t uint_value = 0;
    if (key == "op") continue;
    if (key == "workload" && value.is(JsonValue::Kind::kString)) {
      out.workload = value.string;
    } else if (key == "dataset" && value.is(JsonValue::Kind::kString)) {
      out.dataset = value.string;
    } else if (key == "k" && as_uint(value, uint_value)) {
      out.params.k = static_cast<std::size_t>(uint_value);
    } else if (key == "bandwidth" && as_uint(value, uint_value)) {
      out.params.bandwidth_bits = uint_value;
    } else if (key == "seed" && as_uint(value, uint_value)) {
      out.params.seed = uint_value;
    } else if (key == "frame") {
      // Number, or the string "auto" for the derived-from-B default.
      if (value.is(JsonValue::Kind::kString) && value.string == "auto") {
        out.params.frame_bytes = kFramedPayloadAuto;
      } else if (as_uint(value, uint_value)) {
        out.params.frame_bytes = static_cast<std::size_t>(uint_value);
      } else {
        error = "field 'frame' must be a non-negative integer or \"auto\"";
        return false;
      }
    } else if (key == "workers" && as_uint(value, uint_value)) {
      out.params.workers = static_cast<std::size_t>(uint_value);
    } else if (key == "check" && value.is(JsonValue::Kind::kBool)) {
      out.params.check = value.boolean;
    } else if (key == "timeline" && value.is(JsonValue::Kind::kBool)) {
      out.params.record_timeline = value.boolean;
    } else if (key == "fresh" && value.is(JsonValue::Kind::kBool)) {
      out.fresh = value.boolean;
    } else {
      error = "unknown or mistyped field '" + key + "'";
      return false;
    }
  }

  if (out.op == Request::Op::kRun) {
    if (out.workload.empty()) {
      error = "run request is missing 'workload'";
      return false;
    }
    if (out.dataset.empty()) {
      error = "run request is missing 'dataset'";
      return false;
    }
  }
  return true;
}

std::string meta_line(const Response& response) {
  JsonWriter w(0);
  w.begin_object();
  w.field("km_serve", kProtocolVersion);
  w.field("status", response.ok ? "ok" : "error");
  if (!response.source.empty()) w.field("source", response.source);
  if (!response.ok) w.field("error", response.error);
  w.end_object();
  return w.str();
}

Response error_response(std::string message) {
  Response r;
  r.ok = false;
  r.error = std::move(message);
  r.doc = "{}";
  return r;
}

}  // namespace km::serve
