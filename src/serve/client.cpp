#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace km::serve {

ServeClient::ServeClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect " + socket_path + ": " +
                             std::strerror(err));
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

WireResponse ServeClient::request(std::string_view line) {
  std::string out(line);
  out += '\n';
  std::string_view rest = out;
  while (!rest.empty()) {
    const ssize_t wrote = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(wrote));
  }
  WireResponse response;
  response.meta = read_line();
  response.doc = read_line();
  return response;
}

std::string ServeClient::read_line() {
  while (true) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error("km_serve connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace km::serve
