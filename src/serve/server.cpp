#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace km::serve {

namespace {

/// send() the whole buffer; MSG_NOSIGNAL so a vanished client surfaces
/// as an error return instead of SIGPIPE killing the daemon.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t wrote = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(wrote));
  }
  return true;
}

}  // namespace

ServeServer::ServeServer(ScenarioService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " +
                             socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // a stale file must not block restarts
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("bind " + socket_path_ + ": " +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("listen " + socket_path_ + ": " +
                             std::strerror(err));
  }
}

ServeServer::~ServeServer() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void ServeServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // stopping_ is set and the accept loop has exited, so the thread list
  // can no longer grow; move it out and join without holding the lock.
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void ServeServer::stop() {
  if (stopping_.exchange(true)) return;
  // shutdown(), not close(): it reliably unblocks accept()/recv() in
  // other threads, and the owning thread still does the close.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  close_all_connections();
}

void ServeServer::close_all_connections() {
  MutexLock lock(mu_);
  for (const int fd : connection_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void ServeServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listener down, or it broke: either way done
    }
    MutexLock lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::size_t index = connection_fds_.size();
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd, index] {
          serve_connection(fd);
          MutexLock inner(mu_);
          // The slot, not the vector, marks the fd dead: indices held by
          // running threads must stay stable.
          connection_fds_[index] = -1;
        });
  }
}

void ServeServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open; nl = buffer.find('\n', start)) {
      const std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;

      Request request;
      std::string error;
      Response response;
      bool is_shutdown = false;
      if (!parse_request(line, request, error)) {
        response = error_response("bad request: " + error);
      } else {
        response = service_.handle(request);
        is_shutdown = request.op == Request::Op::kShutdown;
      }
      if (response.doc.empty()) response.doc = "{}";
      const std::string payload =
          meta_line(response) + "\n" + response.doc + "\n";
      if (!write_all(fd, payload)) open = false;
      if (is_shutdown) {
        open = false;
        stop();  // closes the listener; joins happen in wait(), not here
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace km::serve
