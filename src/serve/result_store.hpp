// Result store: byte-exact km.run_result/v1 documents keyed by the full
// parameter cell, so repeating a scenario request replays the original
// document instead of re-simulating.
//
// The value is the *serialized* document (compact one-line JSON), not
// the RunResult: replay is then byte-identical by construction — the
// original wall_ms included, which is exactly the point; clients that
// diff documents strip the exempt keys the same way the golden suite
// does.
//
// Keys combine the workload name, the dataset cell's canonical identity
// (DatasetCache::canonical_key — spelling variants of one spec collide),
// and every RunParams field that is part of the deterministic parameter
// cell: k, bandwidth_bits, seed, frame_bytes, check, timeline.  workers
// and trace are deliberately excluded — the Determinism suite proves
// documents are byte-identical across them (results.hpp keeps them out
// of the serialized params for the same reason).  An unresolved
// bandwidth (B=0) keys differently from its resolved value; both map to
// identical bytes, they just occupy two entries.
//
// LRU with a byte budget, same discipline and counter vocabulary as
// DatasetCache; one annotated mutex, O(log entries) lookups.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "runtime/workload.hpp"
#include "util/annotations.hpp"

namespace km::serve {

struct ResultStoreCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< lookups that found nothing
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;    ///< gauge
  std::uint64_t bytes = 0;      ///< gauge: stored document bytes

  ResultStoreCounters since(const ResultStoreCounters& base) const noexcept;
  /// "result_store: hits=.. misses=.. evictions=.. entries=.. bytes=..".
  std::string summary() const;
};

class ResultStore {
 public:
  static constexpr std::size_t kDefaultByteBudget = 64u << 20;

  explicit ResultStore(std::size_t byte_budget = kDefaultByteBudget);

  /// Key for one scenario cell; `dataset_key` is
  /// DatasetCache::canonical_key for the request's dataset cell.
  static std::string scenario_key(std::string_view workload,
                                  std::string_view dataset_key,
                                  const RunParams& params);

  /// The stored document, or nullptr (counts a hit or a miss).
  std::shared_ptr<const std::string> find(std::string_view key)
      KM_EXCLUDES(mu_);

  /// Stores `doc` for `key` unless an entry already exists, and returns
  /// the canonical stored document either way.  First writer wins: when
  /// two engine runs of the same cell race, every response still
  /// carries one byte sequence (the documents could otherwise differ in
  /// the exempt wall_ms field).
  std::shared_ptr<const std::string> put(std::string_view key,
                                         std::string doc) KM_EXCLUDES(mu_);

  ResultStoreCounters counters() const KM_EXCLUDES(mu_);
  void clear() KM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const std::string> doc;
    std::uint64_t last_use = 0;
  };

  void evict_to_fit(std::string_view keep_key) KM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ KM_GUARDED_BY(mu_);
  std::size_t byte_budget_ KM_GUARDED_BY(mu_);
  std::uint64_t bytes_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ KM_GUARDED_BY(mu_) = 0;
};

}  // namespace km::serve
