#include "serve/service.hpp"

#include <algorithm>
#include <exception>

#include "runtime/results.hpp"
#include "util/json.hpp"

namespace km::serve {

ScenarioService::ScenarioService(ServiceConfig config)
    : config_(config),
      store_(config.result_store_bytes),
      run_slots_(static_cast<std::ptrdiff_t>(
          std::max<std::size_t>(config.runners, 1))) {
  config_.runners = std::max<std::size_t>(config_.runners, 1);
  DatasetCache::instance().set_byte_budget(config_.dataset_cache_bytes);
}

Response ScenarioService::handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (request.op) {
    case Request::Op::kPing:
    case Request::Op::kShutdown: {
      // Shutdown acknowledges like a ping; the transport owns the
      // actual stop (the service has no lifecycle of its own).
      Response r;
      r.doc = "{}";
      return r;
    }
    case Request::Op::kStats: {
      Response r;
      r.doc = stats_doc();
      return r;
    }
    case Request::Op::kRun:
      return handle_run(request);
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return error_response("unhandled op");
}

Response ScenarioService::handle_run(const Request& request) {
  try {
    const Workload* workload =
        WorkloadRegistry::instance().find(request.workload);
    if (!workload) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return error_response("unknown workload '" + request.workload +
                            "' (see km_run list)");
    }
    if (request.params.k < 2) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return error_response("k must be >= 2");
    }
    const DatasetSpec spec = DatasetSpec::parse(request.dataset);
    const std::string dataset_key = DatasetCache::canonical_key(
        spec, workload->input_kind(), request.params.seed);
    const std::string cell_key =
        ResultStore::scenario_key(request.workload, dataset_key,
                                  request.params);

    if (!request.fresh) {
      if (const auto stored = store_.find(cell_key)) {
        replays_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.source = "result_store";
        r.doc = *stored;
        return r;
      }
    }

    // Bounded executor: take a run slot, shedding instead of queueing
    // without limit.  waiting_ counts parked callers; beyond
    // queue_depth the request is refused immediately.
    if (!run_slots_.try_acquire()) {
      if (waiting_.fetch_add(1, std::memory_order_acq_rel) >=
          config_.queue_depth) {
        waiting_.fetch_sub(1, std::memory_order_acq_rel);
        shed_.fetch_add(1, std::memory_order_relaxed);
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response("queue full (" +
                              std::to_string(config_.queue_depth) +
                              " waiters); retry later");
      }
      run_slots_.acquire();
      waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }

    Response r;
    try {
      const auto dataset = DatasetCache::instance().get(
          spec, workload->input_kind(), request.params.seed);
      const RunResult result =
          run_workload(*workload, *dataset, request.params);
      runs_.fetch_add(1, std::memory_order_relaxed);
      r.source = "engine";
      // put() returns the canonical bytes for the cell — ours, unless a
      // concurrent run of the same cell beat us to the store.
      r.doc = *store_.put(cell_key, run_result_to_json(result, 0));
    } catch (...) {
      run_slots_.release();
      throw;
    }
    run_slots_.release();
    return r;
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(e.what());
  }
}

std::string ScenarioService::stats_doc() const {
  const ServiceCounters c = counters();
  const ResultStoreCounters store = store_.counters();
  const DatasetCacheCounters data = DatasetCache::instance().counters();
  JsonWriter w(0);
  w.begin_object();
  w.field("schema", "km.serve_stats/v1");
  w.key("service").begin_object();
  w.field("requests", c.requests);
  w.field("runs", c.runs);
  w.field("replays", c.replays);
  w.field("errors", c.errors);
  w.field("shed", c.shed);
  w.field("runners", std::uint64_t{config_.runners});
  w.field("queue_depth", std::uint64_t{config_.queue_depth});
  w.end_object();
  w.key("result_store").begin_object();
  w.field("hits", store.hits);
  w.field("misses", store.misses);
  w.field("evictions", store.evictions);
  w.field("entries", store.entries);
  w.field("bytes", store.bytes);
  w.end_object();
  w.key("dataset_cache").begin_object();
  w.field("hits", data.hits);
  w.field("misses", data.misses);
  w.field("evictions", data.evictions);
  w.field("entries", data.entries);
  w.field("bytes", data.bytes);
  w.end_object();
  w.end_object();
  return w.str();
}

ServiceCounters ScenarioService::counters() const {
  ServiceCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.runs = runs_.load(std::memory_order_relaxed);
  c.replays = replays_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace km::serve
