// km_serve wire protocol: newline-delimited JSON over a local stream
// socket.
//
// Requests are one JSON object per line:
//   {"op": "run", "workload": "mst", "dataset": "gnp:n=64,p=0.08",
//    "k": 4, "bandwidth": 0, "seed": 7, "frame": "auto", "workers": 0,
//    "check": true, "timeline": true, "fresh": false}
//   {"op": "stats"} | {"op": "ping"} | {"op": "shutdown"}
//
// Every response is exactly two lines:
//   1. a meta line, e.g. {"km_serve":"v1","status":"ok","source":"engine"}
//   2. a payload line — the compact km.run_result/v1 document for run,
//      a stats document for stats, "{}" otherwise.
// Fixed two-line shape keeps clients trivial: write one line, read two.
//
// "source" on run responses says where the document came from: "engine"
// (a fresh simulation) or "result_store" (byte-identical replay of an
// earlier run of the same parameter cell).  "fresh": true bypasses the
// result store (the dataset cache still applies — datasets are
// deterministic in (spec, seed) so there is nothing to bypass).
#pragma once

#include <string>
#include <string_view>

#include "runtime/workload.hpp"

namespace km::serve {

inline constexpr std::string_view kProtocolVersion = "v1";

struct Request {
  enum class Op { kRun, kStats, kPing, kShutdown };

  Op op = Op::kRun;
  std::string workload;
  std::string dataset;
  RunParams params;     ///< k, bandwidth_bits, seed, frame_bytes, workers,
                        ///< check, record_timeline (trace is not servable)
  bool fresh = false;   ///< bypass the result store for this request
};

/// Parses one request line.  Returns false and sets `error` on malformed
/// JSON, unknown op/field, or out-of-range values.
bool parse_request(std::string_view line, Request& out, std::string& error);

struct Response {
  bool ok = true;
  std::string error;   ///< set when !ok
  std::string source;  ///< run only: "engine" or "result_store"
  std::string doc;     ///< compact one-line payload; "{}" when none
};

/// The response's meta line (no trailing newline).
std::string meta_line(const Response& response);

/// Error helper: ok=false, empty doc.
Response error_response(std::string message);

}  // namespace km::serve
