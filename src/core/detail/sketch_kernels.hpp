// Runtime-dispatched kernels for the ℓ₀-sketch hot loops.
//
// L0Sketch (core/sketch.hpp) stores its rows×levels cell grid as a
// structure-of-arrays arena — three contiguous streams (signed counts,
// wrapping id-sums, Mersenne-61 fingerprints) — so the two loops that
// dominate the sketch plane become straight-line passes over machine
// words.  The whole grid is handled per kernel call (the row loop lives
// inside the kernel), so the indirect-call cost amortizes over the grid
// rather than being paid per row:
//   - merge_grid: pointwise vector addition of another sketch's grid
//     into this one (counts += counts, id_sums += id_sums wrapping,
//     fps = addmod61(fps, fps)), swept densely over all cells so the
//     trip count is a pure function of the shape — data-dependent loop
//     bounds mispredict, and the mispredicts cost more than the adds.
//   - add_grid: the update of L0Sketch::add, applying one (sign, id,
//     z^id) triple to each row's subsample prefix [0, tz(hash)+1),
//     branch-free under a lane mask in the common (short-prefix) case.
//
// Both kernels exist in a scalar flavor and an AVX2 flavor selected at
// runtime from CPUID.  The two flavors perform the *same* integer
// arithmetic per element (64-bit adds, compare-and-subtract for the
// modular add; the subsample hash is the same scalar code in both), so
// their results are bit-identical — sketches stay exactly linear and
// merge-order invariant no matter which path ran.
// tests/test_sketch_simd.cpp holds byte-identical serialization across
// the paths as a property; force_sketch_dispatch() is the hook it (and
// bench_sketch's scalar-vs-SIMD comparison) uses to pin a path.
//
// FingerprintPowers batches the Mersenne-61 exponentiations: all
// sketches of a phase share one fingerprint base z, so z^id collapses
// into a 4-bit windowed table (16 entries per hex digit of the
// exponent) built once and shared thread-locally — ≤ 15 widening
// multiplies per pow() instead of ~2·bits, with results identical to
// powmod61.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace km::detail {

enum class SketchDispatch : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

// Both kernels may touch up to 3 words past a stream's rows×levels
// cells with full-width vector accesses whose off-lane words are
// rewritten unchanged; every stream passed in (destination AND source)
// must therefore have at least 3 addressable words of slack after its
// cells.  The L0Sketch arena layout guarantees this (see arena_words in
// core/sketch.cpp).
struct SketchKernels {
  /// Merges `o_*`'s row-major grid into the destination streams as one
  /// dense sweep of all rows×levels cells (source cells above their row
  /// watermark are zero and adding zero changes nothing, so density is
  /// free correctness-wise and keeps the loop exits predictable);
  /// tops[r] is raised to max(tops[r], o_tops[r]).
  void (*merge_grid)(std::int64_t* counts, std::uint64_t* id_sums,
                     std::uint64_t* fps, std::uint64_t* tops,
                     const std::int64_t* o_counts,
                     const std::uint64_t* o_id_sums,
                     const std::uint64_t* o_fps, const std::uint64_t* o_tops,
                     std::uint32_t rows, std::uint32_t levels) noexcept;
  /// Applies one edge update to every row: row r's prefix
  /// [0, min(tz(hash_u64(row_seeds[r] ^ id_hash)) + 1, levels)) gets
  /// counts += sign, id_sums += id_delta (the pre-negated ±id,
  /// wrapping), fps = addmod61(fps, fp_delta) (the pre-negated ±z^id).
  /// id_hash is hash_u64(id + 0x9e3779b97f4a7c15), i.e. the inner half
  /// of hash_vertex(seed, id), hoisted out of the row loop.  tops[r] is
  /// raised to the touched length.
  void (*add_grid)(std::int64_t* counts, std::uint64_t* id_sums,
                   std::uint64_t* fps, std::uint64_t* tops,
                   const std::uint64_t* row_seeds, std::uint32_t rows,
                   std::uint32_t levels, std::uint64_t id_hash,
                   std::int64_t sign, std::uint64_t id_delta,
                   std::uint64_t fp_delta) noexcept;
  const char* name;
};

/// The kernel table for the active dispatch path.
const SketchKernels& sketch_kernels() noexcept;

/// The path sketch_kernels() currently resolves to (auto-detected from
/// CPUID unless forced).
SketchDispatch active_sketch_dispatch() noexcept;

bool sketch_dispatch_supported(SketchDispatch d) noexcept;

/// Pins the dispatch path (tests / benchmarks).  Throws
/// std::invalid_argument if this CPU does not support the requested
/// path.  Affects subsequent kernel calls process-wide.
void force_sketch_dispatch(SketchDispatch d);

/// Returns to CPUID auto-detection.
void reset_sketch_dispatch() noexcept;

/// 4-bit windowed power table over the Mersenne-61 field:
/// table[d][v] = z^(v << 4d) mod 2^61-1, so z^e is the product of one
/// table entry per nonzero hex digit of e.  Results are bit-identical
/// to powmod61(z, e).
class FingerprintPowers {
 public:
  FingerprintPowers(std::uint64_t z, std::uint32_t max_exp_bits);

  std::uint64_t z() const noexcept { return z_; }
  std::uint32_t digits() const noexcept { return digits_; }

  /// z^exp mod 2^61-1; exp must fit in the max_exp_bits the table was
  /// built for.
  std::uint64_t pow(std::uint64_t exp) const noexcept;

  /// Batched pow over an exponent stream (the MOE key precompute).
  void pow_batch(const std::uint64_t* exps, std::uint64_t* out,
                 std::size_t n) const noexcept;

 private:
  std::uint64_t z_ = 1;
  std::uint32_t digits_ = 1;
  std::vector<std::uint64_t> table_;  ///< digits_ × 16, row-major
};

/// Thread-local memo of FingerprintPowers keyed by (z, exponent width):
/// every sketch of a phase shares one base, so the table is built once
/// per (phase, thread) and amortizes to nothing.
const FingerprintPowers& fingerprint_powers(std::uint64_t z,
                                            std::uint32_t max_exp_bits);

}  // namespace km::detail
