// Deterministic iteration over unordered associative containers.
//
// The engine delivers messages in ascending-source then send order, so
// any loop that sends (or feeds other observable state) while walking a
// hash table would bake the table's layout into the run's identity.
// km_lint's unordered-iter rule therefore bans range-for over
// std::unordered_* containers across src/ and tools/; these helpers are
// the sanctioned replacement.  Both cost O(size log size) per call —
// fine for the per-phase, per-label maps the kernels keep, which is
// where the rule bites.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>
#include <vector>

namespace km::detail {

/// Keys of an unordered map or set in ascending order.  Copies keys
/// only, never mapped values; pair the result with `.at(key)` when the
/// body needs the mapped value (`continue`/`break` keep working, unlike
/// a visitor).
template <typename Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (auto it = c.begin(); it != c.end(); ++it) {
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(*it);  // set: the element is the key
    } else {
      keys.push_back(it->first);  // map: pair<const Key, T>
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Visits fn(key, mapped) over an unordered map in ascending key order.
/// Sorts pointers to the map's nodes (stable across the visit — hash
/// tables never move nodes), so keys are not copied and no per-key
/// lookup happens; use where the body is a plain statement block with
/// no early exit.
template <typename Map, typename Fn>
void for_sorted(Map& m, Fn&& fn) {
  using Item = decltype(std::addressof(*m.begin()));
  std::vector<Item> items;
  items.reserve(m.size());
  for (auto it = m.begin(); it != m.end(); ++it) {
    items.push_back(std::addressof(*it));
  }
  std::sort(items.begin(), items.end(),
            [](Item a, Item b) { return a->first < b->first; });
  for (const Item item : items) fn(item->first, item->second);
}

}  // namespace km::detail
