#include "core/detail/sketch_kernels.hpp"

#include <immintrin.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>

#include "core/detail/mersenne61.hpp"
#include "util/annotations.hpp"
#include "util/hash.hpp"

namespace km::detail {

namespace {

// ---------------------------------------------------------------------------
// Scalar span helpers — the per-row inner loops, shared by the grid
// kernels of both flavors (the AVX2 grid kernels use them for tails).
// ---------------------------------------------------------------------------

// id_sum wraps mod 2^64 by design (linearity over Z/2^64); keep clang's
// opt-in -fsanitize=integer from flagging the intentional wrap.
KM_NO_SANITIZE("unsigned-integer-overflow")
inline void merge_span_scalar(std::int64_t* counts, std::uint64_t* id_sums,
                              std::uint64_t* fps, const std::int64_t* o_counts,
                              const std::uint64_t* o_id_sums,
                              const std::uint64_t* o_fps,
                              std::size_t len) noexcept {
  for (std::size_t i = 0; i < len; ++i) counts[i] += o_counts[i];
  for (std::size_t i = 0; i < len; ++i) id_sums[i] += o_id_sums[i];
  for (std::size_t i = 0; i < len; ++i) {
    fps[i] = addmod61_unchecked(fps[i], o_fps[i]);
  }
}

KM_NO_SANITIZE("unsigned-integer-overflow")
inline void add_span_scalar(std::int64_t* counts, std::uint64_t* id_sums,
                            std::uint64_t* fps, std::size_t len,
                            std::int64_t sign, std::uint64_t id_delta,
                            std::uint64_t fp_delta) noexcept {
  for (std::size_t l = 0; l < len; ++l) counts[l] += sign;
  for (std::size_t l = 0; l < len; ++l) id_sums[l] += id_delta;
  for (std::size_t l = 0; l < len; ++l) {
    fps[l] = addmod61_unchecked(fps[l], fp_delta);
  }
}

/// Subsample depth of `id_hash` in row r: level l keeps the id iff the
/// seeded hash has >= l trailing zero bits, so level-l membership
/// implies level-(l-1) membership and each level halves the expected
/// support.  Identical scalar code in both flavors — the dispatch paths
/// only differ in how they sweep the resulting prefix.
inline std::uint32_t row_prefix_len(std::uint64_t row_seed,
                                    std::uint64_t id_hash,
                                    std::uint32_t levels) noexcept {
  const std::uint64_t h = hash_u64(row_seed ^ id_hash);
  const auto tz = static_cast<std::uint32_t>(std::countr_zero(h));
  return std::min(tz, levels - 1) + 1;
}

/// Shared merge sweep bound: every row is swept over the same span
/// [0, min(max_r o_tops[r], levels)).  Cells of the source at or above
/// its row watermark are zero and adding zero leaves all three streams
/// unchanged, so widening each row to the common span is free
/// correctness-wise — and it turns rows×streams data-dependent loop
/// exits (a branch mispredict each: the watermarks are
/// geometric-distributed) into a single bound per merge, while reading
/// only the watermarked prefix of the source instead of its whole
/// arena (in-memory merges stream many distinct sources, so the merge
/// loop is bandwidth-bound).  Watermarks are still maintained —
/// serialize()/sample() use them as scan bounds.
inline std::size_t merge_span_len(const std::uint64_t* o_tops,
                                  std::uint32_t rows,
                                  std::uint32_t levels) noexcept {
  std::uint64_t mtop = 0;
  for (std::uint32_t r = 0; r < rows; ++r) mtop = std::max(mtop, o_tops[r]);
  return std::min<std::size_t>(mtop, levels);
}

// ---------------------------------------------------------------------------
// Scalar grid kernels
// ---------------------------------------------------------------------------

/// Issues prefetches for every (stream, row) prefix of a merge source:
/// the three streams sit a stride apart and the row prefixes within a
/// stream another `levels` words apart, so a cold source costs up to
/// 3*rows distinct cache lines; requesting them all up front turns a
/// chain of demand misses into one overlapped wave.
inline void prefetch_source(const std::int64_t* o_counts,
                            const std::uint64_t* o_id_sums,
                            const std::uint64_t* o_fps, std::uint32_t rows,
                            std::uint32_t levels) noexcept {
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    __builtin_prefetch(o_counts + off, 0, 3);
    __builtin_prefetch(o_id_sums + off, 0, 3);
    __builtin_prefetch(o_fps + off, 0, 3);
  }
}

void merge_grid_scalar(std::int64_t* counts, std::uint64_t* id_sums,
                       std::uint64_t* fps, std::uint64_t* tops,
                       const std::int64_t* o_counts,
                       const std::uint64_t* o_id_sums,
                       const std::uint64_t* o_fps, const std::uint64_t* o_tops,
                       std::uint32_t rows, std::uint32_t levels) noexcept {
  prefetch_source(o_counts, o_id_sums, o_fps, rows, levels);
  const std::size_t span = merge_span_len(o_tops, rows, levels);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    merge_span_scalar(counts + off, id_sums + off, fps + off, o_counts + off,
                      o_id_sums + off, o_fps + off, span);
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    tops[r] = std::max(tops[r], o_tops[r]);
  }
}

KM_NO_SANITIZE("unsigned-integer-overflow")
void add_grid_scalar(std::int64_t* counts, std::uint64_t* id_sums,
                     std::uint64_t* fps, std::uint64_t* tops,
                     const std::uint64_t* row_seeds, std::uint32_t rows,
                     std::uint32_t levels, std::uint64_t id_hash,
                     std::int64_t sign, std::uint64_t id_delta,
                     std::uint64_t fp_delta) noexcept {
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t len = row_prefix_len(row_seeds[r], id_hash, levels);
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    // One fused loop per row: a single data-dependent exit instead of
    // one per stream.
    for (std::uint32_t l = 0; l < len; ++l) {
      counts[off + l] += sign;
      id_sums[off + l] += id_delta;
      fps[off + l] = addmod61_unchecked(fps[off + l], fp_delta);
    }
    tops[r] = std::max<std::uint64_t>(tops[r], len);
  }
}

// ---------------------------------------------------------------------------
// AVX2 kernels — the same integer arithmetic, four lanes at a time.
// The modular add is branch-free: s = a + b (both < p < 2^62, so the
// sum fits in 2^63 and signed comparison is safe), then subtract p from
// every lane where s > p - 1.  That is exactly the scalar
// compare-and-subtract, so results are bit-identical.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void merge_grid_avx2(
    std::int64_t* counts, std::uint64_t* id_sums, std::uint64_t* fps,
    std::uint64_t* tops, const std::int64_t* o_counts,
    const std::uint64_t* o_id_sums, const std::uint64_t* o_fps,
    const std::uint64_t* o_tops, std::uint32_t rows,
    std::uint32_t levels) noexcept {
  prefetch_source(o_counts, o_id_sums, o_fps, rows, levels);
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i pm1 =
      _mm256_set1_epi64x(static_cast<long long>(kMersenne61 - 1));
  // One shared span bound (see merge_span_len) — every row sweeps the
  // same number of blocks, so the data-dependent branches repeat the
  // same way on each row of a call.
  const std::size_t span = merge_span_len(o_tops, rows, levels);
  const std::size_t nfull = span & ~std::size_t{3};
  const std::size_t rem = span - nfull;
  const __m256i mrem = _mm256_cmpgt_epi64(
      _mm256_set1_epi64x(static_cast<long long>(rem)),
      _mm256_set_epi64x(3, 2, 1, 0));
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    for (std::size_t i = 0; i < nfull; i += 4) {
      const std::size_t j = off + i;
      const __m256i c = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + j)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o_counts + j)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + j), c);
      const __m256i s = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id_sums + j)),
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(o_id_sums + j)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(id_sums + j), s);
      const __m256i f = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fps + j)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o_fps + j)));
      // f in [0, 2p); subtract p where f >= p, i.e. f > p - 1 (signed
      // compare is valid: every lane is < 2^62).
      const __m256i over = _mm256_cmpgt_epi64(f, pm1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(fps + j),
                          _mm256_sub_epi64(f, _mm256_and_si256(over, p)));
    }
    if (rem != 0) {
      // Remainder block, branch-free: source lanes >= rem are masked to
      // zero, so the destination lanes there store back what was loaded
      // (both arenas carry slack words past each stream, see the
      // L0Sketch arena layout, so full-width access stays in bounds).
      const std::size_t j = off + nfull;
      const __m256i c = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + j)),
          _mm256_and_si256(
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(o_counts + j)),
              mrem));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + j), c);
      const __m256i s = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id_sums + j)),
          _mm256_and_si256(
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(o_id_sums + j)),
              mrem));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(id_sums + j), s);
      const __m256i f = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fps + j)),
          _mm256_and_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o_fps + j)),
              mrem));
      // Mask the fold too: off-lane words (arena slack, row seeds) are
      // arbitrary u64s that a bare compare-subtract would rewrite.
      const __m256i over =
          _mm256_and_si256(_mm256_cmpgt_epi64(f, pm1), mrem);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(fps + j),
                          _mm256_sub_epi64(f, _mm256_and_si256(over, p)));
    }
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    tops[r] = std::max(tops[r], o_tops[r]);
  }
}

__attribute__((target("avx2"))) void add_grid_avx2(
    std::int64_t* counts, std::uint64_t* id_sums, std::uint64_t* fps,
    std::uint64_t* tops, const std::uint64_t* row_seeds, std::uint32_t rows,
    std::uint32_t levels, std::uint64_t id_hash, std::int64_t sign,
    std::uint64_t id_delta, std::uint64_t fp_delta) noexcept {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i pm1 =
      _mm256_set1_epi64x(static_cast<long long>(kMersenne61 - 1));
  const __m256i vsign = _mm256_set1_epi64x(static_cast<long long>(sign));
  const __m256i vid = _mm256_set1_epi64x(static_cast<long long>(id_delta));
  const __m256i vfp = _mm256_set1_epi64x(static_cast<long long>(fp_delta));
  const __m256i iota = _mm256_set_epi64x(3, 2, 1, 0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t len = row_prefix_len(row_seeds[r], id_hash, levels);
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    // The prefix length is geometric (E[len] = 2), so a length-bounded
    // loop would mispredict its exit on nearly every row; that, not the
    // arithmetic, dominated a span-loop formulation of this kernel.
    // Instead the first vector of levels is updated branch-free: the
    // deltas are masked to zero on lanes >= len, so those lanes store
    // back exactly what was loaded (the modular fold is also a no-op
    // there: the loaded residue is < p).  Lanes past the row (or, on
    // the last row, past the cell grid) read and rewrite unchanged
    // neighboring arena words — the L0Sketch arena layout guarantees at
    // least 3 words after each stream's cells.  Only 1 row in 8 has
    // len > 4 and takes the extension loop below.
    const __m256i vlen =
        _mm256_set1_epi64x(static_cast<long long>(len));
    const __m256i m = _mm256_cmpgt_epi64(vlen, iota);
    const __m256i c = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + off)),
        _mm256_and_si256(vsign, m));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + off), c);
    const __m256i s = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id_sums + off)),
        _mm256_and_si256(vid, m));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(id_sums + off), s);
    __m256i f = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fps + off)),
        _mm256_and_si256(vfp, m));
    // The fold must honor the mask too: off-lane words (arena slack,
    // row seeds) are arbitrary u64s that a bare compare-subtract would
    // rewrite.
    const __m256i over =
        _mm256_and_si256(_mm256_cmpgt_epi64(f, pm1), m);
    f = _mm256_sub_epi64(f, _mm256_and_si256(over, p));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(fps + off), f);
    if (len > 4) {
      std::size_t l = 4;
      for (; l + 4 <= len; l += 4) {
        const __m256i c2 = _mm256_add_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(counts + off + l)),
            vsign);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + off + l), c2);
        const __m256i s2 = _mm256_add_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(id_sums + off + l)),
            vid);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(id_sums + off + l),
                            s2);
        const __m256i f2 = _mm256_add_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(fps + off + l)),
            vfp);
        const __m256i over2 = _mm256_cmpgt_epi64(f2, pm1);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(fps + off + l),
            _mm256_sub_epi64(f2, _mm256_and_si256(over2, p)));
      }
      if (l < len) {
        add_span_scalar(counts + off + l, id_sums + off + l, fps + off + l,
                        len - l, sign, id_delta, fp_delta);
      }
    }
    tops[r] = std::max<std::uint64_t>(tops[r], len);
  }
}

constexpr SketchKernels kScalarKernels{merge_grid_scalar, add_grid_scalar,
                                       "scalar"};
constexpr SketchKernels kAvx2Kernels{merge_grid_avx2, add_grid_avx2, "avx2"};

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// -1 = auto (CPUID); otherwise a forced SketchDispatch value.
std::atomic<int> g_forced{-1};

SketchDispatch resolve() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SketchDispatch>(forced);
  return cpu_has_avx2() ? SketchDispatch::kAvx2 : SketchDispatch::kScalar;
}

}  // namespace

const SketchKernels& sketch_kernels() noexcept {
  return resolve() == SketchDispatch::kAvx2 ? kAvx2Kernels : kScalarKernels;
}

SketchDispatch active_sketch_dispatch() noexcept { return resolve(); }

bool sketch_dispatch_supported(SketchDispatch d) noexcept {
  return d == SketchDispatch::kScalar || cpu_has_avx2();
}

void force_sketch_dispatch(SketchDispatch d) {
  if (!sketch_dispatch_supported(d)) {
    throw std::invalid_argument(
        "force_sketch_dispatch: requested path unsupported on this CPU");
  }
  g_forced.store(static_cast<int>(d), std::memory_order_relaxed);
}

void reset_sketch_dispatch() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// FingerprintPowers
// ---------------------------------------------------------------------------

FingerprintPowers::FingerprintPowers(std::uint64_t z,
                                     std::uint32_t max_exp_bits)
    : z_(reduce61(z)) {
  digits_ = (max_exp_bits + 3) / 4;
  if (digits_ == 0) digits_ = 1;
  if (digits_ > 16) digits_ = 16;
  table_.assign(static_cast<std::size_t>(digits_) * 16, 1);
  // table[d][v] = z^(v << 4d): within a digit multiply by the digit's
  // unit step; the next digit's unit step is the 16th power of this
  // one's, i.e. table[d][15] * table[d][1].
  std::uint64_t unit = z_;  // z^(1 << 4d)
  for (std::uint32_t d = 0; d < digits_; ++d) {
    std::uint64_t* row = table_.data() + static_cast<std::size_t>(d) * 16;
    row[0] = 1;
    for (std::uint32_t v = 1; v < 16; ++v) {
      row[v] = mulmod61_unchecked(row[v - 1], unit);
    }
    unit = mulmod61_unchecked(row[15], unit);
  }
}

std::uint64_t FingerprintPowers::pow(std::uint64_t exp) const noexcept {
  const std::uint64_t* row = table_.data();
  std::uint64_t r = row[exp & 15];
  exp >>= 4;
  for (std::uint32_t d = 1; d < digits_ && exp != 0; ++d, exp >>= 4) {
    row += 16;
    const std::uint64_t v = exp & 15;
    if (v != 0) r = mulmod61_unchecked(r, row[v]);
  }
  return r;
}

void FingerprintPowers::pow_batch(const std::uint64_t* exps,
                                  std::uint64_t* out,
                                  std::size_t n) const noexcept {
  // Four independent pow chains per iteration: the widening multiplies
  // of distinct exponents have no data dependence, so the out-of-order
  // core overlaps them.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = pow(exps[i]);
    out[i + 1] = pow(exps[i + 1]);
    out[i + 2] = pow(exps[i + 2]);
    out[i + 3] = pow(exps[i + 3]);
  }
  for (; i < n; ++i) out[i] = pow(exps[i]);
}

const FingerprintPowers& fingerprint_powers(std::uint64_t z,
                                            std::uint32_t max_exp_bits) {
  // A tiny thread-local memo: within a Borůvka phase every sketch shares
  // one base, and adjacent phases only ever juggle a couple of bases.
  struct Slot {
    std::uint64_t z = 0;
    std::uint32_t bits = 0;
    FingerprintPowers powers{1, 1};
  };
  thread_local Slot slots[4];
  thread_local std::uint32_t next = 0;
  for (auto& slot : slots) {
    if (slot.z == z && slot.bits >= max_exp_bits && slot.z != 0) {
      return slot.powers;
    }
  }
  Slot& slot = slots[next];
  next = (next + 1) % 4;
  slot.z = z;
  slot.bits = max_exp_bits;
  slot.powers = FingerprintPowers(z, max_exp_bits);
  return slot.powers;
}

}  // namespace km::detail
