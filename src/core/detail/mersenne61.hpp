// Mersenne-61 field primitives shared by the sketch layer and its SIMD
// kernels (core/detail/sketch_kernels.*).
//
// The public entry points in core/sketch.hpp (mulmod61 / powmod61)
// canonicalize arbitrary 64-bit inputs at the boundary; the _unchecked
// flavors here skip that reduction and require inputs already in
// [0, 2^61-1).  The distinction matters: the classic two-fold Mersenne
// reduction inside mulmod is only correct when the 128-bit product fits
// in ~122 bits, i.e. when both factors are reduced.  Feeding an
// unreduced a >= 2^61 (e.g. UINT64_MAX, or a value == p that should
// alias zero) into the unchecked path silently computes the wrong
// residue, which is exactly the boundary bug the canonicalizing wrappers
// exist to close.
#pragma once

#include <cstdint>

namespace km::detail {

inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Canonical representative of an arbitrary 64-bit value mod 2^61-1.
/// Two folds bring any u64 below 2^61 + 7; the final conditional
/// subtract lands in [0, p).  In particular reduce61(p) == 0 and
/// reduce61(UINT64_MAX) == 7.
inline constexpr std::uint64_t reduce61(std::uint64_t a) noexcept {
  a = (a & kMersenne61) + (a >> 61);
  a = (a & kMersenne61) + (a >> 61);
  return a >= kMersenne61 ? a - kMersenne61 : a;
}

/// a + b mod 2^61-1; requires both inputs reduced (no overflow: the sum
/// stays below 2^62).
inline constexpr std::uint64_t addmod61_unchecked(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s >= kMersenne61 ? s - kMersenne61 : s;
}

/// Additive inverse mod 2^61-1 of a reduced input.
inline constexpr std::uint64_t negmod61_unchecked(std::uint64_t a) noexcept {
  return a == 0 ? 0 : kMersenne61 - a;
}

/// a * b mod 2^61-1 via a 128-bit widening multiply and Mersenne
/// folding.  Requires both inputs reduced; result is canonical.
inline constexpr std::uint64_t mulmod61_unchecked(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  const unsigned __int128 x = static_cast<unsigned __int128>(a) * b;
  // x = hi * 2^61 + lo == hi + lo (mod 2^61-1); for reduced inputs
  // x < 2^122, so hi < 2^61 and one extra fold canonicalizes.
  std::uint64_t r = static_cast<std::uint64_t>(x & kMersenne61) +
                    static_cast<std::uint64_t>(x >> 61);
  r = (r & kMersenne61) + (r >> 61);
  return r >= kMersenne61 ? r - kMersenne61 : r;
}

}  // namespace km::detail
