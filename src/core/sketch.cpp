#include "core/sketch.hpp"

#include <bit>
#include <stdexcept>

#include "util/annotations.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace km {

namespace {

inline std::uint64_t addmod61(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;  // both < 2^61: no overflow
  return s >= kSketchPrime ? s - kSketchPrime : s;
}

}  // namespace

std::uint64_t mulmod61(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 x = static_cast<unsigned __int128>(a) * b;
  // Mersenne reduction: x = hi * 2^61 + lo ≡ hi + lo (mod 2^61-1).
  std::uint64_t r = static_cast<std::uint64_t>(x & kSketchPrime) +
                    static_cast<std::uint64_t>(x >> 61);
  r = (r & kSketchPrime) + (r >> 61);
  return r >= kSketchPrime ? r - kSketchPrime : r;
}

std::uint64_t powmod61(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = base;
  while (exp > 0) {
    if (exp & 1) result = mulmod61(result, b);
    b = mulmod61(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t sketch_fingerprint_base(std::uint64_t seed) noexcept {
  // Uniform-ish in [2, p-1]; any value >= 2 gives z^id != 0 and the
  // polynomial-identity error bound.
  return 2 + mix64(seed, 0x51e7c4b1ULL) % (kSketchPrime - 2);
}

// ---------------------------------------------------------------------------
// SketchCell
// ---------------------------------------------------------------------------

// id_sum wraps mod 2^64 by design (linearity over Z/2^64); keep clang's
// opt-in -fsanitize=integer from flagging the intentional wrap.
KM_NO_SANITIZE("unsigned-integer-overflow")
void SketchCell::add_prepared(std::uint64_t id, int sign,
                              std::uint64_t z_pow_id) noexcept {
  if (sign > 0) {
    count += 1;
    id_sum += id;
    fingerprint = addmod61(fingerprint, z_pow_id);
  } else {
    count -= 1;
    id_sum -= id;  // wraps: exact inverse of the add
    fingerprint = addmod61(
        fingerprint, z_pow_id == 0 ? 0 : kSketchPrime - z_pow_id);
  }
}

KM_NO_SANITIZE("unsigned-integer-overflow")
void SketchCell::merge(const SketchCell& other) noexcept {
  count += other.count;
  id_sum += other.id_sum;
  fingerprint = addmod61(fingerprint, other.fingerprint);
}

KM_NO_SANITIZE("unsigned-integer-overflow")  // 0 - id_sum: exact negation
std::optional<std::uint64_t> SketchCell::recover(
    std::uint64_t z, std::uint64_t universe) const noexcept {
  // A ±1-valued 1-sparse vector has count = ±1 and id_sum = ±id exactly
  // (single term: no wrapping).  Anything else that happens to pass the
  // count test is vetoed by the fingerprint whp.
  if (count != 1 && count != -1) return std::nullopt;
  const std::uint64_t id = count == 1 ? id_sum : (0 - id_sum);
  if (universe != 0 && id >= universe) return std::nullopt;
  std::uint64_t expect = powmod61(z, id);
  if (count == -1) expect = expect == 0 ? 0 : kSketchPrime - expect;
  if (expect != fingerprint) return std::nullopt;
  return id;
}

void SketchCell::serialize(Writer& w) const {
  w.put_varint_signed(count);
  w.put_varint_signed(static_cast<std::int64_t>(id_sum));
  w.put_u64(fingerprint);
}

SketchCell SketchCell::deserialize(Reader& r) {
  SketchCell cell;
  cell.count = r.get_varint_signed();
  cell.id_sum = static_cast<std::uint64_t>(r.get_varint_signed());
  cell.fingerprint = r.get_u64();
  return cell;
}

// ---------------------------------------------------------------------------
// EdgeIdCodec
// ---------------------------------------------------------------------------

EdgeIdCodec::EdgeIdCodec(std::size_t n) noexcept
    : vbits(std::max<std::uint32_t>(
          1, ceil_log2(std::max<std::uint64_t>(n, 2)))) {}

// ---------------------------------------------------------------------------
// L0Sketch
// ---------------------------------------------------------------------------

L0Sketch::L0Sketch(const L0SketchShape& shape)
    : shape_(shape),
      z_(sketch_fingerprint_base(shape.seed)),
      cells_(static_cast<std::size_t>(shape.rows) * shape.levels()) {
  row_seeds_.reserve(shape_.rows);
  for (std::uint32_t r = 0; r < shape_.rows; ++r) {
    row_seeds_.push_back(mix64(shape_.seed, 0xA0B1ULL + r));
  }
}

void L0Sketch::add(std::uint64_t id, int sign) noexcept {
  const std::uint64_t z_pow_id = powmod61(z_, id);
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t r = 0; r < shape_.rows; ++r) {
    // Nested subsampling: level l keeps id iff the seeded hash has >= l
    // trailing zero bits, so level-l membership implies level-(l-1)
    // membership and each level halves the expected support.
    const std::uint64_t h = hash_vertex(row_seeds_[r], id);
    const auto tz = static_cast<std::uint32_t>(std::countr_zero(h));
    const std::uint32_t top = std::min(tz, levels - 1);
    SketchCell* row = &cells_[static_cast<std::size_t>(r) * levels];
    for (std::uint32_t l = 0; l <= top; ++l) {
      row[l].add_prepared(id, sign, z_pow_id);
    }
  }
}

void L0Sketch::merge(const L0Sketch& other) {
  if (!(shape_ == other.shape_)) {
    throw std::invalid_argument("L0Sketch::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
}

void L0Sketch::merge_serialized(Reader& r) {
  for (auto& cell : cells_) cell.merge(SketchCell::deserialize(r));
}

bool L0Sketch::empty_whp() const noexcept {
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t row = 0; row < shape_.rows; ++row) {
    if (!cells_[static_cast<std::size_t>(row) * levels].is_zero()) {
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> L0Sketch::sample() const noexcept {
  const std::uint64_t universe =
      shape_.id_bits >= 64 ? 0 : (std::uint64_t{1} << shape_.id_bits);
  const std::uint32_t levels = shape_.levels();
  // Sparsest first: high levels are most likely to be 1-sparse.  The
  // scan order is fixed, so equal sketches always sample the same id.
  for (std::uint32_t l = levels; l-- > 0;) {
    for (std::uint32_t row = 0; row < shape_.rows; ++row) {
      const SketchCell& cell =
          cells_[static_cast<std::size_t>(row) * levels + l];
      if (const auto id = cell.recover(z_, universe)) return id;
    }
  }
  return std::nullopt;
}

void L0Sketch::serialize(Writer& w) const {
  for (const auto& cell : cells_) cell.serialize(w);
}

}  // namespace km
