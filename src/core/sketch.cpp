#include "core/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "core/detail/mersenne61.hpp"
#include "core/detail/sketch_kernels.hpp"
#include "util/annotations.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace km {

std::uint64_t mulmod61(std::uint64_t a, std::uint64_t b) noexcept {
  // Canonicalize at the boundary: the Mersenne folding inside the
  // unchecked multiply is only valid for reduced factors, and values
  // ≡ p (the modulus itself, UINT64_MAX, ...) must alias their residue.
  return detail::mulmod61_unchecked(detail::reduce61(a),
                                    detail::reduce61(b));
}

std::uint64_t powmod61(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = detail::reduce61(base);
  while (exp > 0) {
    if (exp & 1) result = detail::mulmod61_unchecked(result, b);
    b = detail::mulmod61_unchecked(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t sketch_fingerprint_base(std::uint64_t seed) noexcept {
  // Uniform-ish in [2, p-1]; any value >= 2 gives z^id != 0 and the
  // polynomial-identity error bound.
  return 2 + mix64(seed, 0x51e7c4b1ULL) % (kSketchPrime - 2);
}

// ---------------------------------------------------------------------------
// SketchCell
// ---------------------------------------------------------------------------

// id_sum wraps mod 2^64 by design (linearity over Z/2^64); keep clang's
// opt-in -fsanitize=integer from flagging the intentional wrap.
KM_NO_SANITIZE("unsigned-integer-overflow")
void SketchCell::add_prepared(std::uint64_t id, int sign,
                              std::uint64_t z_pow_id) noexcept {
  if (sign > 0) {
    count += 1;
    id_sum += id;
    fingerprint = detail::addmod61_unchecked(fingerprint, z_pow_id);
  } else {
    count -= 1;
    id_sum -= id;  // wraps: exact inverse of the add
    fingerprint = detail::addmod61_unchecked(
        fingerprint, detail::negmod61_unchecked(z_pow_id));
  }
}

KM_NO_SANITIZE("unsigned-integer-overflow")
void SketchCell::merge(const SketchCell& other) noexcept {
  count += other.count;
  id_sum += other.id_sum;
  fingerprint = detail::addmod61_unchecked(fingerprint, other.fingerprint);
}

KM_NO_SANITIZE("unsigned-integer-overflow")  // 0 - id_sum: exact negation
std::optional<std::uint64_t> SketchCell::recover(
    std::uint64_t z, std::uint64_t universe) const noexcept {
  // A ±1-valued 1-sparse vector has count = ±1 and id_sum = ±id exactly
  // (single term: no wrapping).  Anything else that happens to pass the
  // count test is vetoed by the fingerprint whp.
  if (count != 1 && count != -1) return std::nullopt;
  const std::uint64_t id = count == 1 ? id_sum : (0 - id_sum);
  if (universe != 0 && id >= universe) return std::nullopt;
  std::uint64_t expect = powmod61(z, id);
  if (count == -1) expect = detail::negmod61_unchecked(expect);
  if (expect != fingerprint) return std::nullopt;
  return id;
}

void SketchCell::serialize(Writer& w) const {
  w.put_varint_signed(count);
  w.put_varint_signed(static_cast<std::int64_t>(id_sum));
  w.put_u64(fingerprint);
}

SketchCell SketchCell::deserialize(Reader& r) {
  SketchCell cell;
  cell.count = r.get_varint_signed();
  cell.id_sum = static_cast<std::uint64_t>(r.get_varint_signed());
  cell.fingerprint = r.get_u64();
  return cell;
}

// ---------------------------------------------------------------------------
// EdgeIdCodec
// ---------------------------------------------------------------------------

EdgeIdCodec::EdgeIdCodec(std::size_t n) noexcept
    : vbits(std::max<std::uint32_t>(
          1, ceil_log2(std::max<std::uint64_t>(n, 2)))) {}

// ---------------------------------------------------------------------------
// L0Sketch
// ---------------------------------------------------------------------------

namespace {

/// Per-stream stride in words: cells rounded up so each of the three
/// SoA streams starts on a 64-byte boundary within the arena.
std::size_t arena_stride(std::size_t cells) noexcept {
  return (cells + 7) & ~std::size_t{7};
}

std::size_t arena_words(std::size_t cells, std::uint32_t rows) noexcept {
  // +4 slack words: the vectorized add kernel handles a row's first
  // levels with full-width loads/stores whose off-lane words are
  // rewritten unchanged, so up to 3 words past the last stream's cells
  // must stay inside the allocation.
  return 3 * arena_stride(cells) + 2 * rows + 4;
}

std::size_t arena_bytes(std::size_t words) noexcept {
  return ((words * 8) + 63) & ~std::size_t{63};
}

/// Thread-local recycling pool for arena blocks.  A workload constructs
/// and destroys sketches by the million, all sharing one shape (and so
/// one block size) within a phase; without the pool, aligned_alloc +
/// free dominate construction.  One size class suffices — a different
/// size flushes the pool.  Blocks may migrate across threads (a sketch
/// built on one worker can be destroyed on another); each block simply
/// joins the releasing thread's pool.
struct ArenaPool {
  std::size_t bytes = 0;
  std::vector<std::uint64_t*> blocks;

  static constexpr std::size_t kMaxBlocks = 256;

  ~ArenaPool() {
    for (std::uint64_t* p : blocks) std::free(p);
  }
};

ArenaPool& arena_pool() {
  thread_local ArenaPool pool;
  return pool;
}

std::uint64_t* arena_alloc(std::size_t words) {
  const std::size_t bytes = arena_bytes(words);
  ArenaPool& pool = arena_pool();
  if (pool.bytes == bytes && !pool.blocks.empty()) {
    std::uint64_t* p = pool.blocks.back();
    pool.blocks.pop_back();
    return p;
  }
  void* p = std::aligned_alloc(64, bytes);
  if (p == nullptr) throw std::bad_alloc();
  return static_cast<std::uint64_t*>(p);
}

void arena_release(std::uint64_t* arena, std::size_t words) noexcept {
  if (arena == nullptr) return;
  const std::size_t bytes = arena_bytes(words);
  ArenaPool& pool = arena_pool();
  if (pool.bytes != bytes) {
    for (std::uint64_t* p : pool.blocks) std::free(p);
    pool.blocks.clear();
    pool.bytes = bytes;
  }
  if (pool.blocks.size() < ArenaPool::kMaxBlocks) {
    pool.blocks.push_back(arena);
  } else {
    std::free(arena);
  }
}

}  // namespace

void L0Sketch::alloc_arena() {
  const std::size_t stride = arena_stride(cells_);
  arena_ = arena_alloc(arena_words(cells_, shape_.rows));
  counts_ = reinterpret_cast<std::int64_t*>(arena_);
  id_sums_ = arena_ + stride;
  fps_ = arena_ + 2 * stride;
  row_seeds_ = arena_ + 3 * stride;
  tops_ = row_seeds_ + shape_.rows;
}

L0Sketch::L0Sketch(const L0SketchShape& shape)
    : shape_(shape),
      z_(sketch_fingerprint_base(shape.seed)),
      cells_(static_cast<std::size_t>(shape.rows) * shape.levels()) {
  alloc_arena();
  std::memset(arena_, 0, arena_words(cells_, shape_.rows) * 8);
  for (std::uint32_t r = 0; r < shape_.rows; ++r) {
    row_seeds_[r] = mix64(shape_.seed, 0xA0B1ULL + r);
  }
}

L0Sketch::L0Sketch(const L0Sketch& other)
    : shape_(other.shape_), z_(other.z_), cells_(other.cells_) {
  if (other.arena_ != nullptr) {
    alloc_arena();
    std::memcpy(arena_, other.arena_, arena_words(cells_, shape_.rows) * 8);
  }
}

L0Sketch& L0Sketch::operator=(const L0Sketch& other) {
  if (this == &other) return *this;
  L0Sketch copy(other);
  *this = std::move(copy);
  return *this;
}

L0Sketch::L0Sketch(L0Sketch&& other) noexcept
    : shape_(other.shape_),
      z_(other.z_),
      cells_(other.cells_),
      arena_(other.arena_),
      counts_(other.counts_),
      id_sums_(other.id_sums_),
      fps_(other.fps_),
      row_seeds_(other.row_seeds_),
      tops_(other.tops_) {
  other.arena_ = nullptr;
  other.counts_ = nullptr;
  other.id_sums_ = nullptr;
  other.fps_ = nullptr;
  other.row_seeds_ = nullptr;
  other.tops_ = nullptr;
  other.cells_ = 0;
}

L0Sketch& L0Sketch::operator=(L0Sketch&& other) noexcept {
  if (this == &other) return *this;
  arena_release(arena_, arena_words(cells_, shape_.rows));
  shape_ = other.shape_;
  z_ = other.z_;
  cells_ = other.cells_;
  arena_ = other.arena_;
  counts_ = other.counts_;
  id_sums_ = other.id_sums_;
  fps_ = other.fps_;
  row_seeds_ = other.row_seeds_;
  tops_ = other.tops_;
  other.arena_ = nullptr;
  other.counts_ = nullptr;
  other.id_sums_ = nullptr;
  other.fps_ = nullptr;
  other.row_seeds_ = nullptr;
  other.tops_ = nullptr;
  other.cells_ = 0;
  return *this;
}

L0Sketch::~L0Sketch() {
  arena_release(arena_, arena_words(cells_, shape_.rows));
}

KM_NO_SANITIZE("unsigned-integer-overflow")  // 0 - id: pre-negated delta
void L0Sketch::add(std::uint64_t id, int sign) noexcept {
  if (arena_ == nullptr) return;  // default-constructed: no grid
  const auto& pows = detail::fingerprint_powers(z_, shape_.id_bits);
  const std::uint64_t z_pow_id = pows.pow(id);
  const std::uint64_t fp_delta =
      sign > 0 ? z_pow_id : detail::negmod61_unchecked(z_pow_id);
  const std::uint64_t id_delta = sign > 0 ? id : (0 - id);
  // The inner half of hash_vertex(seed_r, id) does not depend on the
  // row; hoist it so the kernel only pays one finalizer per row.
  const std::uint64_t id_hash = hash_u64(id + 0x9e3779b97f4a7c15ULL);
  detail::sketch_kernels().add_grid(counts_, id_sums_, fps_, tops_,
                                    row_seeds_, shape_.rows, shape_.levels(),
                                    id_hash, sign, id_delta, fp_delta);
}

void L0Sketch::merge(const L0Sketch& other) {
  if (!(shape_ == other.shape_)) {
    throw std::invalid_argument("L0Sketch::merge: shape mismatch");
  }
  // A null arena (default-constructed or moved-from) is an empty grid:
  // merging from one is a no-op, merging into one keeps it empty.
  if (arena_ == nullptr || other.arena_ == nullptr) return;
  detail::sketch_kernels().merge_grid(counts_, id_sums_, fps_, tops_,
                                      other.counts_, other.id_sums_,
                                      other.fps_, other.tops_, shape_.rows,
                                      shape_.levels());
}

void L0Sketch::prefetch() const noexcept {
  if (arena_ == nullptr) return;
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t r = 0; r < shape_.rows; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * levels;
    __builtin_prefetch(counts_ + off, 0, 3);
    __builtin_prefetch(id_sums_ + off, 0, 3);
    __builtin_prefetch(fps_ + off, 0, 3);
  }
  __builtin_prefetch(tops_, 0, 3);
}

KM_NO_SANITIZE("unsigned-integer-overflow")  // wrapping id-sum merge
void L0Sketch::merge_serialized(Reader& r) {
  const std::size_t nbytes = (cells_ + 7) / 8;
  std::vector<std::uint8_t> bitmap(nbytes);
  for (std::size_t b = 0; b < nbytes; ++b) bitmap[b] = r.get_u8();
  const std::uint32_t levels = shape_.levels();
  for (std::size_t i = 0; i < cells_; ++i) {
    if ((bitmap[i >> 3] & (1u << (i & 7))) == 0) continue;
    counts_[i] += r.get_varint_signed();
    id_sums_[i] += static_cast<std::uint64_t>(r.get_varint_signed());
    fps_[i] = detail::addmod61_unchecked(fps_[i],
                                         detail::reduce61(r.get_u64()));
    const std::uint32_t row = static_cast<std::uint32_t>(i / levels);
    const std::uint64_t lvl = i % levels;
    if (lvl + 1 > tops_[row]) tops_[row] = lvl + 1;
  }
}

bool L0Sketch::empty_whp() const noexcept {
  if (arena_ == nullptr) return true;
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t row = 0; row < shape_.rows; ++row) {
    const std::size_t i = static_cast<std::size_t>(row) * levels;
    if (counts_[i] != 0 || id_sums_[i] != 0 || fps_[i] != 0) return false;
  }
  return true;
}

std::optional<std::uint64_t> L0Sketch::sample() const noexcept {
  if (arena_ == nullptr) return std::nullopt;
  const std::uint64_t universe =
      shape_.id_bits >= 64 ? 0 : (std::uint64_t{1} << shape_.id_bits);
  const std::uint32_t levels = shape_.levels();
  std::uint64_t lmax = 0;
  for (std::uint32_t row = 0; row < shape_.rows; ++row) {
    lmax = std::max(lmax, tops_[row]);
  }
  // Sparsest first: high levels are most likely to be 1-sparse.  The
  // scan order is fixed (level descending, then row ascending), so
  // equal sketches always sample the same id; cells above a row's
  // watermark are zero and can never recover, so skipping them leaves
  // the result unchanged.
  for (std::uint64_t l = lmax; l-- > 0;) {
    for (std::uint32_t row = 0; row < shape_.rows; ++row) {
      if (l >= tops_[row]) continue;
      const std::size_t i = static_cast<std::size_t>(row) * levels + l;
      const SketchCell cell{counts_[i], id_sums_[i], fps_[i]};
      if (const auto id = cell.recover(z_, universe)) return id;
    }
  }
  return std::nullopt;
}

std::vector<std::uint64_t> L0Sketch::sample_all() const {
  std::vector<std::uint64_t> out;
  if (arena_ == nullptr) return out;
  const std::uint64_t universe =
      shape_.id_bits >= 64 ? 0 : (std::uint64_t{1} << shape_.id_bits);
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t row = 0; row < shape_.rows; ++row) {
    for (std::uint64_t l = 0; l < tops_[row]; ++l) {
      const std::size_t i = static_cast<std::size_t>(row) * levels + l;
      const SketchCell cell{counts_[i], id_sums_[i], fps_[i]};
      if (const auto id = cell.recover(z_, universe)) out.push_back(*id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void L0Sketch::serialize(Writer& w) const {
  const std::size_t nbytes = (cells_ + 7) / 8;
  std::vector<std::byte> bitmap(nbytes, std::byte{0});
  const std::uint32_t levels = shape_.levels();
  for (std::uint32_t row = 0; arena_ != nullptr && row < shape_.rows; ++row) {
    const std::size_t off = static_cast<std::size_t>(row) * levels;
    for (std::uint64_t l = 0; l < tops_[row]; ++l) {
      const std::size_t i = off + l;
      if (counts_[i] != 0 || id_sums_[i] != 0 || fps_[i] != 0) {
        bitmap[i >> 3] |= std::byte{static_cast<std::uint8_t>(1u << (i & 7))};
      }
    }
  }
  w.put_bytes(bitmap);
  for (std::size_t i = 0; i < cells_; ++i) {
    if ((bitmap[i >> 3] & std::byte{static_cast<std::uint8_t>(
                              1u << (i & 7))}) == std::byte{0}) {
      continue;
    }
    w.put_varint_signed(counts_[i]);
    w.put_varint_signed(static_cast<std::int64_t>(id_sums_[i]));
    w.put_u64(fps_[i]);
  }
}

bool operator==(const L0Sketch& a, const L0Sketch& b) {
  if (!(a.shape_ == b.shape_)) return false;
  for (std::size_t i = 0; i < a.cells_; ++i) {
    if (a.counts_[i] != b.counts_[i] || a.id_sums_[i] != b.id_sums_[i] ||
        a.fps_[i] != b.fps_[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace km
