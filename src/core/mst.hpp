// Distributed minimum spanning tree and connected components in the
// k-machine model.
//
// Section 1.3 of the paper derives the Omega~(n/Bk^2) round lower bound
// for MST directly from the General Lower Bound Theorem (complete graph
// with random edge weights; each machine outputs ~n/k MST edges) and
// notes the matching O~(n/k^2) upper bound of Pandurangan et al. [51].
// Crucially, the bound holds under the output criterion used throughout
// the paper: *any* machine may output any part of the solution — which
// is exactly what happens here: MST edges are emitted by the randomized
// fragment proxies, not by the edges' home machines.
//
// distributed_mst() is a Boruvka algorithm built on the paper's
// randomized proxy computation idea:
//   - every Boruvka fragment f is assigned a proxy machine hash(f) mod k,
//     spreading per-fragment coordination uniformly over the cluster;
//   - each phase, home machines push current fragment labels to their
//     neighbors' machines, locally reduce minimum outgoing edges (MOE)
//     per fragment, and send one candidate per (machine, fragment) to
//     the fragment proxy;
//   - proxies pick the global MOE (unique under the (weight, endpoints)
//     total order), break the mutual-MOE 2-cycles, and resolve the new
//     fragment roots by pointer jumping across proxies;
//   - home machines query proxies for their vertices' new roots.
// Each of the <= log2(n) phases costs O~((m+n)/k^2) rounds whp, a
// simplified variant of [51] (which removes the log factors with graph
// sketches).
//
// distributed_components() runs the same machinery with hash-derived
// (distinct, arbitrary) edge weights and returns component labels.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

struct DistributedMstResult {
  std::vector<WeightedEdge> edges;  ///< the MSF, sorted by mst_edge_less
  std::uint64_t total_weight = 0;
  std::vector<std::uint32_t> fragment_of;  ///< final fragment per vertex
  std::size_t phases = 0;
  Metrics metrics;
};

DistributedMstResult distributed_mst(const WeightedGraph& g,
                                     const VertexPartition& partition,
                                     Engine& engine,
                                     std::uint64_t proxy_seed = 0xF7A6);

struct DistributedComponentsResult {
  std::vector<std::uint32_t> labels;  ///< component label per vertex
  std::size_t num_components = 0;
  std::size_t phases = 0;
  Metrics metrics;
};

DistributedComponentsResult distributed_components(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    std::uint64_t proxy_seed = 0xF7A6);

}  // namespace km
