// Distributed triangle enumeration in the k-machine model (Section 3.2).
//
// distributed_triangles() implements the paper's O~(m/k^{5/3} + n/k^{4/3})
// algorithm, a randomized generalization of Dolev et al.'s TriPartition:
//
//  1. Color classes.  A shared hash function colors every vertex with one
//     of c = floor(k^{1/3}) colors, splitting V into c classes of
//     O~(n/c) vertices.  Each *sorted* color triplet {a <= b <= c'} is
//     deterministically assigned to a distinct machine (there are
//     C(c+2,3) <= k of them); that machine is responsible for exactly the
//     triangles whose color multiset equals its triplet, so every
//     triangle is enumerated exactly once.
//  2. Edge designation (the paper's proxy assignment rule).  Both
//     endpoints' home machines know an edge; exactly one must forward it.
//     Machines first broadcast which of their vertices have degree
//     >= 2k log n ("high degree").  For an edge with exactly one
//     high-degree endpoint, the *other* endpoint's machine designates
//     (spreading the high vertex's load over its neighbors' machines);
//     ties (both high / both low) are broken by an edge hash.
//  3. Edge proxies.  The designating machine sends each edge to a
//     uniformly random proxy machine; the proxy forwards it to the <= c
//     machines whose triplet contains both endpoint colors (the paper's
//     "k^{1/3} copies per edge" bound, total traffic m * k^{1/3}).
//  4. Local enumeration.  Each triplet machine builds the received
//     subgraph and enumerates its triangles locally.
//
// distributed_triangles_baseline() is the naive comparison point: every
// designated edge is broadcast to all machines (O~(m/k) rounds), and
// machine j enumerates the triangles whose smallest vertex hashes to j.
//
// Both algorithms can enumerate *open triads* (u-v-w with exactly two
// edges) instead: Section 1.2 notes the bounds carry over.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/triangle_ref.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

enum class TriadMode {
  kTriangles,   ///< enumerate closed triangles
  kOpenTriads,  ///< enumerate paths u-v-w with edge (u,w) absent
};

struct TriangleConfig {
  std::uint64_t color_seed = 0xC0106AULL;  ///< shared hash for coloring
  /// High-degree threshold factor: threshold = factor * k * log2(n).
  /// The paper uses 2 k log n.
  double degree_threshold_factor = 2.0;
  TriadMode mode = TriadMode::kTriangles;
  /// Keep the enumerated triples (for verification); counting always runs.
  bool record_triples = true;
};

struct TriangleResult {
  std::uint64_t total = 0;  ///< triangles (or triads) enumerated
  std::vector<std::uint64_t> per_machine_counts;
  /// Per machine, the enumerated triples (empty if !record_triples).
  std::vector<std::vector<Triangle>> per_machine_triples;
  Metrics metrics;

  /// All triples merged and sorted (for comparison with the reference).
  std::vector<Triangle> merged_sorted() const;
};

/// TriPartition-style algorithm: O~(m/k^{5/3} + n/k^{4/3}) rounds whp.
TriangleResult distributed_triangles(const Graph& g,
                                     const VertexPartition& partition,
                                     Engine& engine,
                                     const TriangleConfig& config = {});

/// Broadcast-everything baseline: O~(m/k) rounds.
TriangleResult distributed_triangles_baseline(const Graph& g,
                                              const VertexPartition& partition,
                                              Engine& engine,
                                              const TriangleConfig& config = {});

/// Number of color classes used for k machines: floor(cbrt(k)).
std::size_t triangle_color_count(std::size_t k) noexcept;

/// Number of machines that host a color triplet: C(c+2, 3) with
/// c = triangle_color_count(k).
std::size_t triangle_worker_count(std::size_t k) noexcept;

}  // namespace km
