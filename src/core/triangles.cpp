#include "core/triangles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/detail/sorted.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {

constexpr std::uint16_t kHighDegreeTag = 1;  ///< list of high-degree vertices
constexpr std::uint16_t kEdgeToProxyTag = 2;
constexpr std::uint16_t kEdgeToWorkerTag = 3;
constexpr std::uint16_t kEdgeBroadcastTag = 4;

/// Sorted color triplets {a <= b <= c'} in lexicographic order; triplet i
/// is hosted by machine i (a fixed assignment known to all machines, as in
/// the paper's "deterministic assignment of triplets ... hard-coded into
/// the algorithm").
struct TripletTable {
  std::size_t colors = 0;
  std::vector<std::array<std::uint8_t, 3>> triplets;
  std::vector<std::int32_t> index_of;  // packed sorted triple -> machine

  explicit TripletTable(std::size_t c) : colors(c) {
    index_of.assign(c * c * c, -1);
    for (std::size_t a = 0; a < c; ++a) {
      for (std::size_t b = a; b < c; ++b) {
        for (std::size_t d = b; d < c; ++d) {
          index_of[pack(a, b, d)] =
              static_cast<std::int32_t>(triplets.size());
          triplets.push_back({static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b),
                              static_cast<std::uint8_t>(d)});
        }
      }
    }
  }

  std::size_t pack(std::size_t a, std::size_t b, std::size_t d) const {
    return (a * colors + b) * colors + d;
  }

  /// Machine hosting the sorted multiset {x, y, z}.
  std::size_t machine_of(std::size_t x, std::size_t y, std::size_t z) const {
    std::array<std::size_t, 3> t{x, y, z};
    std::sort(t.begin(), t.end());
    return static_cast<std::size_t>(index_of[pack(t[0], t[1], t[2])]);
  }
};

struct EdgeSet {
  // Adjacency built from received edges; sorted lists, queried via
  // binary search for the open-triad absence test.
  std::unordered_map<Vertex, std::vector<Vertex>> adjacency;

  void add(Vertex u, Vertex v) {
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }

  void finalize() {
    detail::for_sorted(adjacency, [](Vertex, std::vector<Vertex>& ns) {
      std::sort(ns.begin(), ns.end());
      ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
    });
  }

  bool has_edge(Vertex u, Vertex v) const {
    const auto it = adjacency.find(u);
    if (it == adjacency.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), v);
  }
};

/// Enumerates closed triangles of the local edge set, each exactly once
/// (base edge (a,b) with a<b, apex w > b), filtered by `accept`.
template <typename Accept, typename Out>
void enumerate_local_triangles(const EdgeSet& edges, Accept accept, Out out) {
  for (const auto& [u, ns] : edges.adjacency) {
    for (Vertex v : ns) {
      if (v <= u) continue;  // base edge u < v
      const auto itv = edges.adjacency.find(v);
      if (itv == edges.adjacency.end()) continue;
      const auto& nu = ns;
      const auto& nv = itv->second;
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          if (accept(u, v, *iu)) out(Triangle{u, v, *iu});
          ++iu;
          ++iv;
        }
      }
    }
  }
}

/// Enumerates open triads u-v-w (center v, u < w, edge (u,w) absent),
/// each exactly once, filtered by `accept`.
template <typename Accept, typename Out>
void enumerate_local_triads(const EdgeSet& edges, Accept accept, Out out) {
  for (const auto& [v, ns] : edges.adjacency) {
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        const Vertex u = ns[i], w = ns[j];
        if (!edges.has_edge(u, w) && accept(u, v, w)) {
          Triangle t{u, v, w};
          std::sort(t.begin(), t.end());
          out(t);
        }
      }
    }
  }
}

/// True if this machine (not the other endpoint's home) must designate
/// the proxy for edge (mine, other), where `mine` is owned locally.
bool designates(Vertex mine, Vertex other, const std::vector<bool>& high,
                std::uint64_t seed) {
  const bool mine_high = high[mine];
  const bool other_high = high[other];
  if (other_high && !mine_high) return true;   // low side serves high side
  if (mine_high && !other_high) return false;
  // Both high or both low: pseudo-random tie break (paper: "broken
  // randomly"); the hash makes both endpoints agree without messages.
  const Vertex chosen = (hash_edge(seed, mine, other) & 1)
                            ? std::min(mine, other)
                            : std::max(mine, other);
  return chosen == mine;
}

TriangleResult run_triangles(const Graph& g, const VertexPartition& part,
                             Engine& engine, const TriangleConfig& config,
                             bool use_tripartition) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument("triangles: partition does not match graph/k");
  }
  const std::size_t c = std::max<std::size_t>(1, floor_cbrt(k));
  const TripletTable table(c);
  const double log2n = std::max(1.0, std::log2(std::max<double>(2.0, static_cast<double>(n))));
  const auto threshold = static_cast<std::size_t>(
      config.degree_threshold_factor * static_cast<double>(k) * log2n);

  auto color_of = [&](Vertex v) -> std::size_t {
    return hash_vertex(config.color_seed, v) % c;
  };

  TriangleResult result;
  result.per_machine_counts.assign(k, 0);
  result.per_machine_triples.assign(k, {});

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = part.owned(self);

    // ---- Phase 1: announce high-degree vertices (one broadcast). ----
    {
      Writer w;
      std::uint64_t count = 0;
      Writer ids;
      for (Vertex v : owned) {
        if (g.degree(v) >= threshold) {
          ids.put_varint(v);
          ++count;
        }
      }
      w.put_varint(count);
      w.put_bytes(ids.view());
      ctx.broadcast(kHighDegreeTag, w);
    }
    std::vector<bool> high(n, false);
    for (Vertex v : owned) {
      if (g.degree(v) >= threshold) high[v] = true;
    }
    for (const Message& msg : ctx.exchange()) {
      if (msg.tag != kHighDegreeTag) {
        throw std::logic_error("triangles: unexpected tag in phase 1");
      }
      Reader r(msg.payload);
      const std::uint64_t count = r.get_varint();
      for (std::uint64_t i = 0; i < count; ++i) {
        high[static_cast<Vertex>(r.get_varint())] = true;
      }
    }

    // ---- Phase 2: designate each edge once; ship it to a random proxy
    // (TriPartition) or broadcast it to everyone (baseline). ----
    std::vector<Edge> proxy_edges;   // edges proxied locally
    EdgeSet local_subgraph;          // baseline: full graph replica
    for (Vertex v : owned) {
      for (Vertex u : g.neighbors(v)) {
        // Skip the duplicate enumeration when both endpoints are local.
        if (part.home(u) == self && u < v) continue;
        const bool both_local = part.home(u) == self;
        if (!both_local && !designates(v, u, high, config.color_seed)) {
          continue;
        }
        const auto [a, b] = std::minmax(u, v);
        if (use_tripartition) {
          const std::size_t proxy = ctx.rng().below(k);
          if (proxy == self) {
            proxy_edges.emplace_back(a, b);
          } else {
            Writer w;
            w.put_varint(a);
            w.put_varint(b);
            ctx.send(proxy, kEdgeToProxyTag, w);
          }
        } else {
          local_subgraph.add(a, b);
          Writer w;
          w.put_varint(a);
          w.put_varint(b);
          ctx.broadcast(kEdgeBroadcastTag, w);
        }
      }
    }

    if (!use_tripartition) {
      // ---- Baseline: everyone receives every edge; machine j outputs
      // the triangles/triads whose smallest vertex hashes to j. ----
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto a = static_cast<Vertex>(r.get_varint());
        const auto b = static_cast<Vertex>(r.get_varint());
        local_subgraph.add(a, b);
      }
      local_subgraph.finalize();
      auto mine = [&](Vertex u, Vertex v, Vertex w) {
        const Vertex smallest = std::min({u, v, w});
        return hash_vertex(config.color_seed ^ 0x5a5a, smallest) % k == self;
      };
      auto emit = [&](const Triangle& t) {
        ++result.per_machine_counts[self];
        if (config.record_triples) {
          result.per_machine_triples[self].push_back(t);
        }
      };
      if (config.mode == TriadMode::kTriangles) {
        enumerate_local_triangles(local_subgraph, mine, emit);
      } else {
        enumerate_local_triads(local_subgraph, mine, emit);
      }
      return;
    }

    // ---- Phase 3 (TriPartition): proxies forward each edge to the <= c
    // machines whose triplet contains both endpoint colors. ----
    for (const Message& msg : ctx.exchange()) {
      if (msg.tag != kEdgeToProxyTag) {
        throw std::logic_error("triangles: unexpected tag in phase 3");
      }
      Reader r(msg.payload);
      proxy_edges.emplace_back(static_cast<Vertex>(r.get_varint()),
                               static_cast<Vertex>(r.get_varint()));
    }
    std::vector<Edge> worker_edges;  // edges this machine works on
    for (const auto& [a, b] : proxy_edges) {
      const std::size_t x = color_of(a);
      const std::size_t y = color_of(b);
      std::unordered_set<std::size_t> targets;
      for (std::size_t z = 0; z < c; ++z) {
        targets.insert(table.machine_of(x, y, z));
      }
      for (const std::size_t target : detail::sorted_keys(targets)) {
        if (target == self) {
          worker_edges.emplace_back(a, b);
        } else {
          Writer w;
          w.put_varint(a);
          w.put_varint(b);
          ctx.send(target, kEdgeToWorkerTag, w);
        }
      }
    }

    // ---- Phase 4: local enumeration on the triplet subgraph. ----
    for (const Message& msg : ctx.exchange()) {
      if (msg.tag != kEdgeToWorkerTag) {
        throw std::logic_error("triangles: unexpected tag in phase 4");
      }
      Reader r(msg.payload);
      worker_edges.emplace_back(static_cast<Vertex>(r.get_varint()),
                                static_cast<Vertex>(r.get_varint()));
    }
    if (self >= table.triplets.size()) return;  // no triplet: idle worker
    const auto triplet = table.triplets[self];

    EdgeSet subgraph;
    for (const auto& [a, b] : worker_edges) subgraph.add(a, b);
    subgraph.finalize();

    // Accept exactly the triples whose color multiset equals our triplet,
    // so each triangle/triad is output by exactly one machine.
    auto accept = [&](Vertex u, Vertex v, Vertex w) {
      std::array<std::uint8_t, 3> cols{
          static_cast<std::uint8_t>(color_of(u)),
          static_cast<std::uint8_t>(color_of(v)),
          static_cast<std::uint8_t>(color_of(w))};
      std::sort(cols.begin(), cols.end());
      return cols == triplet;
    };
    auto emit = [&](const Triangle& t) {
      ++result.per_machine_counts[self];
      if (config.record_triples) {
        result.per_machine_triples[self].push_back(t);
      }
    };
    if (config.mode == TriadMode::kTriangles) {
      enumerate_local_triangles(subgraph, accept, emit);
    } else {
      enumerate_local_triads(subgraph, accept, emit);
    }
  };

  result.metrics = engine.run(program);
  for (auto count : result.per_machine_counts) result.total += count;
  return result;
}

}  // namespace

std::vector<Triangle> TriangleResult::merged_sorted() const {
  std::vector<Triangle> all;
  for (const auto& triples : per_machine_triples) {
    all.insert(all.end(), triples.begin(), triples.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

TriangleResult distributed_triangles(const Graph& g,
                                     const VertexPartition& partition,
                                     Engine& engine,
                                     const TriangleConfig& config) {
  return run_triangles(g, partition, engine, config, true);
}

TriangleResult distributed_triangles_baseline(const Graph& g,
                                              const VertexPartition& partition,
                                              Engine& engine,
                                              const TriangleConfig& config) {
  return run_triangles(g, partition, engine, config, false);
}

std::size_t triangle_color_count(std::size_t k) noexcept {
  return std::max<std::size_t>(1, floor_cbrt(k));
}

std::size_t triangle_worker_count(std::size_t k) noexcept {
  const std::size_t c = triangle_color_count(k);
  return c * (c + 1) * (c + 2) / 6;
}

}  // namespace km
