#include "core/connectivity.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/detail/sorted.hpp"
#include "core/sketch.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {

constexpr std::uint16_t kSketchTag = 1;      // (label, L0 cells)
constexpr std::uint16_t kMoeCellTag = 2;     // (label, 1-sparse cell)
constexpr std::uint16_t kIntervalTag = 3;    // (label, lo, hi, dead)
constexpr std::uint16_t kLabelQueryTag = 4;  // (vertex)
constexpr std::uint16_t kLabelReplyTag = 5;  // (vertex, label)
constexpr std::uint16_t kRootQueryTag = 6;   // (label)
constexpr std::uint16_t kRootReplyTag = 7;   // (label, root, finished)
constexpr std::uint16_t kEdgeShipTag = 8;    // baseline: (u, v)
constexpr std::uint16_t kLabelShipTag = 9;   // baseline: labels, owned order

/// An outgoing edge a proxy established for a component this phase.
struct FoundEdge {
  Vertex a = 0;
  Vertex b = 0;
  std::uint64_t weight = 0;
};

/// Both sketch algorithms share one Borůvka driver; the only difference
/// is how a component's proxy obtains an outgoing edge each phase.
enum class EdgeFind {
  kL0Sample,   ///< ℓ₀-sample any crossing edge (connectivity)
  kMoeSearch,  ///< exact min-key crossing edge via threshold search (MST)
};

DistributedMstResult run_sketch_boruvka(const Graph* ug,
                                        const WeightedGraph* wg,
                                        const VertexPartition& part,
                                        Engine& engine,
                                        const SketchConnectivityConfig& cfg) {
  const EdgeFind find_mode = wg ? EdgeFind::kMoeSearch : EdgeFind::kL0Sample;
  const std::size_t n = wg ? wg->num_vertices() : ug->num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument(
        "sketch connectivity: partition does not match graph/k");
  }
  const EdgeIdCodec codec(n);
  const std::uint32_t id_bits = codec.id_bits();
  const std::size_t max_phases =
      cfg.max_phases != 0
          ? cfg.max_phases
          : 4 * std::size_t{ceil_log2(std::max<std::uint64_t>(n, 2))} + 16;
  // MST keys live in 64 - id_bits bits above the edge id, and the search
  // arithmetic needs maxkey + 1 to not wrap: cap keys below 2^63.  Past
  // 2^31 vertices there is no headroom left for any weight bits (and the
  // shift below would be UB), so refuse up front.
  if (find_mode == EdgeFind::kMoeSearch && id_bits >= 63) {
    throw std::invalid_argument(
        "sketch_mst: graph too large for the 63-bit weight-key budget");
  }
  const std::uint64_t max_weight_allowed =
      id_bits >= 63 ? 0 : (std::uint64_t{1} << (63 - id_bits)) - 1;

  DistributedMstResult result;
  result.fragment_of.assign(n, 0);
  std::vector<std::vector<WeightedEdge>> emitted(k);
  std::vector<std::size_t> phases_by_machine(k, 0);

  const auto proxy_of = [&, proxy_seed = mix64(cfg.seed, 0x9c'e7'0a'17ULL)](
                            std::uint32_t label) {
    return static_cast<std::size_t>(hash_vertex(proxy_seed, label) % k);
  };

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = part.owned(self);
    std::unordered_map<Vertex, std::size_t> index_of;
    index_of.reserve(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) index_of[owned[i]] = i;

    const auto neighbors = [&](Vertex v) {
      return wg ? wg->neighbors(v) : ug->neighbors(v);
    };

    // frag[i] = component label of owned[i]; a label in `finished` heads
    // a complete connected component and never changes again.
    std::vector<std::uint32_t> frag(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) frag[i] = owned[i];
    std::unordered_set<std::uint32_t> finished;

    // MOE mode: per-vertex incident (key, sign) lists, built once.  The
    // key packs (weight, edge id) so the key order is exactly
    // mst_edge_less and every key is unique.
    std::vector<std::vector<std::pair<std::uint64_t, std::int8_t>>> incident;
    std::uint64_t max_key = 0;
    if (find_mode == EdgeFind::kMoeSearch) {
      incident.resize(owned.size());
      for (std::size_t i = 0; i < owned.size(); ++i) {
        const Vertex v = owned[i];
        const auto ns = wg->neighbors(v);
        const auto ws = wg->weights(v);
        incident[i].reserve(ns.size());
        for (std::size_t j = 0; j < ns.size(); ++j) {
          if (ws[j] > max_weight_allowed) {
            throw std::invalid_argument(
                "sketch_mst: edge weight exceeds the 63-bit key budget");
          }
          const std::uint64_t key =
              (ws[j] << id_bits) | codec.encode(v, ns[j]);
          incident[i].emplace_back(
              key, static_cast<std::int8_t>(EdgeIdCodec::sign_for(v, ns[j])));
          max_key = std::max(max_key, key);
        }
      }
      max_key = ctx.all_reduce_max(max_key);
    }
    const std::uint32_t halvings =
        find_mode == EdgeFind::kMoeSearch ? ceil_log2(max_key + 1) : 0;

    std::size_t phase = 0;
    bool done = false;
    while (!done) {
      if (phase >= max_phases) {
        throw std::runtime_error(
            "sketch boruvka: phase budget exhausted without convergence");
      }
      const std::uint64_t phase_seed =
          mix64(cfg.seed, 0xB0'12'34'00ULL + phase);
      const std::uint64_t z = sketch_fingerprint_base(phase_seed);
      const auto coin_head = [&](std::uint32_t label) {
        return (hash_vertex(mix64(phase_seed, 0xC0'11ULL), label) & 1) != 0;
      };

      // ---- Find stage: one outgoing edge per hosted component. ----
      std::unordered_map<std::uint32_t, FoundEdge> found;      // proxy side
      std::unordered_set<std::uint32_t> finished_here;         // proxy side
      bool any_alive = false;                                  // proxy side

      if (find_mode == EdgeFind::kL0Sample) {
        const L0SketchShape shape{
            .id_bits = id_bits, .rows = cfg.rows, .seed = phase_seed};
        // Pre-aggregate per (machine, label): summing the sketches of
        // every locally-hosted member costs nothing (linearity), and it
        // is what keeps the per-link load at Õ(n/k²) — without it, a
        // nearly-merged graph funnels one sketch per *vertex* into a
        // single proxy, Θ(n/k) per link.
        std::unordered_map<std::uint32_t, L0Sketch> partial;
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const std::uint32_t c = frag[i];
          if (finished.contains(c)) continue;
          const Vertex v = owned[i];
          L0Sketch& sketch = partial.try_emplace(c, shape).first->second;
          for (const Vertex nb : neighbors(v)) {
            sketch.add(codec.encode(v, nb), EdgeIdCodec::sign_for(v, nb));
          }
        }
        std::unordered_map<std::uint32_t, L0Sketch> folded;
        for (const std::uint32_t c : detail::sorted_keys(partial)) {
          L0Sketch& sketch = partial.at(c);
          const std::size_t proxy = proxy_of(c);
          if (proxy == self) {
            const auto [it, fresh] = folded.try_emplace(c, shape);
            if (fresh) {
              it->second = std::move(sketch);
            } else {
              it->second.merge(sketch);
            }
          } else {
            Writer w;
            w.put_varint(c);
            sketch.serialize(w);
            ctx.send(proxy, kSketchTag, w);
          }
        }
        partial.clear();
        for (const Message& msg : ctx.exchange()) {
          Reader r(msg.payload);
          const auto c = static_cast<std::uint32_t>(r.get_varint());
          folded.try_emplace(c, shape).first->second.merge_serialized(r);
        }
        for (const std::uint32_t c : detail::sorted_keys(folded)) {
          const L0Sketch& sketch = folded.at(c);
          if (sketch.empty_whp()) {
            finished_here.insert(c);
            continue;
          }
          any_alive = true;
          if (const auto id = sketch.sample()) {
            const auto [a, b] = codec.decode(*id);
            if (a < b && b < n) found[c] = FoundEdge{a, b, 0};
          }
          // A failed sample leaves the component idle this phase; the
          // next phase retries with fresh hashes.
        }
      } else {
        // Exponentially-refined threshold search.  Machines keep the
        // current [lo, hi] per hosted label from the proxy's replies;
        // iteration 0 spans the full key range (the emptiness test), the
        // next `halvings` iterations bisect, and the final iteration's
        // cell is exactly 1-sparse and recovers the MOE.
        struct Interval {
          std::uint64_t lo = 0, hi = 0;
          bool dead = false;
        };
        std::unordered_map<std::uint32_t, Interval> ivals;       // machine
        std::unordered_map<std::uint32_t, Interval> proxy_ival;  // proxy
        std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
            senders;  // proxy: machines hosting each label, set at t = 0
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const std::uint32_t c = frag[i];
          if (!finished.contains(c)) {
            ivals.try_emplace(c, Interval{0, max_key, false});
          }
        }
        // Per-phase fingerprint powers, precomputed once per edge.
        std::vector<std::vector<std::uint64_t>> fpc(owned.size());
        for (std::size_t i = 0; i < owned.size(); ++i) {
          if (finished.contains(frag[i])) continue;
          fpc[i].reserve(incident[i].size());
          for (const auto& entry : incident[i]) {
            fpc[i].push_back(powmod61(z, entry.first));
          }
        }
        const std::uint32_t iterations = 1 + halvings + 1;
        for (std::uint32_t t = 0; t < iterations; ++t) {
          // Up: restricted cells pre-aggregated per (machine, label) —
          // one cell per hosted component, not per vertex, keeping the
          // per-link load Õ(n/k²) as components grow across machines.
          std::unordered_map<std::uint32_t, SketchCell> partial;
          for (std::size_t i = 0; i < owned.size(); ++i) {
            const std::uint32_t c = frag[i];
            if (finished.contains(c)) continue;
            const auto iv = ivals.find(c);
            if (iv == ivals.end() || iv->second.dead) continue;
            const std::uint64_t mid =
                t == 0 ? max_key
                       : iv->second.lo + (iv->second.hi - iv->second.lo) / 2;
            SketchCell& cell = partial[c];
            for (std::size_t j = 0; j < incident[i].size(); ++j) {
              const auto& [key, sign] = incident[i][j];
              if (key <= mid) cell.add_prepared(key, sign, fpc[i][j]);
            }
          }
          std::unordered_map<std::uint32_t, SketchCell> folded;
          std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
              senders_now;
          for (const std::uint32_t c : detail::sorted_keys(partial)) {
            const SketchCell& cell = partial.at(c);
            const std::size_t proxy = proxy_of(c);
            if (proxy == self) {
              folded[c].merge(cell);
              if (t == 0) {
                senders_now[c].push_back(static_cast<std::uint32_t>(self));
              }
            } else {
              Writer w;
              w.put_varint(c);
              cell.serialize(w);
              ctx.send(proxy, kMoeCellTag, w);
            }
          }
          for (const Message& msg : ctx.exchange()) {
            Reader r(msg.payload);
            const auto c = static_cast<std::uint32_t>(r.get_varint());
            folded[c].merge(SketchCell::deserialize(r));
            if (t == 0) senders_now[c].push_back(msg.src);
          }
          if (t == 0) {
            for (const std::uint32_t c : detail::sorted_keys(senders_now)) {
              auto& who = senders_now.at(c);
              std::sort(who.begin(), who.end());
              who.erase(std::unique(who.begin(), who.end()), who.end());
              senders[c] = std::move(who);
            }
          }
          // Proxy verdicts.
          for (const std::uint32_t c : detail::sorted_keys(folded)) {
            auto& cell = folded.at(c);
            auto& iv = proxy_ival[c];
            if (t == 0) {
              if (cell.is_zero()) {
                iv.dead = true;
                finished_here.insert(c);
              } else {
                any_alive = true;
                iv.lo = 0;
                iv.hi = max_key;
              }
            } else if (iv.dead) {
              continue;
            } else if (t <= halvings) {
              const std::uint64_t mid = iv.lo + (iv.hi - iv.lo) / 2;
              if (!cell.is_zero()) {
                iv.hi = mid;
              } else {
                iv.lo = mid + 1;
              }
            } else {
              // Final iteration: [lo, hi] pinned the MOE key, the
              // restricted vector is 1-sparse, recovery is exact.
              const auto key = cell.recover(z, max_key + 1);
              if (!key) {
                throw std::logic_error(
                    "sketch_mst: 1-sparse recovery failed at a pinned MOE");
              }
              const auto [a, b] =
                  codec.decode(*key &
                               ((std::uint64_t{1} << id_bits) - 1));
              found[c] = FoundEdge{a, b, *key >> id_bits};
            }
          }
          // Down: updated intervals to every hosting machine (none
          // needed after the final iteration, but the exchange itself
          // stays lockstep for every machine).
          if (t + 1 < iterations) {
            for (const std::uint32_t c : detail::sorted_keys(senders)) {
              const auto& who = senders.at(c);
              const auto iv = proxy_ival.find(c);
              if (iv == proxy_ival.end()) continue;
              // A label declared dead was announced in iteration 0's
              // reply; hosting machines already stopped sending.
              if (iv->second.dead && t > 0) continue;
              for (const std::uint32_t m : who) {
                if (m == self) {
                  ivals[c] = iv->second;
                  continue;
                }
                Writer w;
                w.put_varint(c);
                w.put_varint(iv->second.lo);
                w.put_varint(iv->second.hi);
                w.put_u8(iv->second.dead ? 1 : 0);
                ctx.send(m, kIntervalTag, w);
              }
            }
          }
          for (const Message& msg : ctx.exchange()) {
            Reader r(msg.payload);
            const auto c = static_cast<std::uint32_t>(r.get_varint());
            Interval iv;
            iv.lo = r.get_varint();
            iv.hi = r.get_varint();
            iv.dead = r.get_u8() != 0;
            ivals[c] = iv;
          }
        }
      }

      // ---- Label queries: who is on each end of the found edges? ----
      std::unordered_set<Vertex> query;
      for (const std::uint32_t c : detail::sorted_keys(found)) {
        query.insert(found.at(c).a);
        query.insert(found.at(c).b);
      }
      std::unordered_map<Vertex, std::uint32_t> vertex_label;
      for (const Vertex v : detail::sorted_keys(query)) {
        const std::size_t home = part.home(v);
        if (home == self) {
          vertex_label[v] = frag[index_of.at(v)];
        } else {
          Writer w;
          w.put_varint(v);
          ctx.send(home, kLabelQueryTag, w);
        }
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto v = static_cast<Vertex>(r.get_varint());
        Writer w;
        w.put_varint(v);
        w.put_varint(frag[index_of.at(v)]);
        ctx.send(msg.src, kLabelReplyTag, w);
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto v = static_cast<Vertex>(r.get_varint());
        vertex_label[v] = static_cast<std::uint32_t>(r.get_varint());
      }

      // ---- Coin-flip hooking: tail components hook into heads. ----
      std::unordered_map<std::uint32_t, std::uint32_t> new_root;
      for (const std::uint32_t c : detail::sorted_keys(found)) {
        const FoundEdge& edge = found.at(c);
        const std::uint32_t la = vertex_label.at(edge.a);
        const std::uint32_t lb = vertex_label.at(edge.b);
        if (la != c && lb != c) continue;  // stale sample: skip safely
        const std::uint32_t other = la == c ? lb : la;
        if (other == c) continue;
        if (!coin_head(c) && coin_head(other)) {
          new_root[c] = other;
          if (find_mode == EdgeFind::kMoeSearch) {
            emitted[self].push_back(WeightedEdge{std::min(edge.a, edge.b),
                                                 std::max(edge.a, edge.b),
                                                 edge.weight});
          }
        }
      }

      // ---- Root updates: every machine refreshes its hosted labels. ---
      std::unordered_map<std::uint32_t, std::pair<std::uint32_t, bool>>
          root_info;
      {
        std::unordered_set<std::uint32_t> distinct;
        for (const std::uint32_t c : frag) {
          if (!finished.contains(c)) distinct.insert(c);
        }
        for (const std::uint32_t c : detail::sorted_keys(distinct)) {
          const std::size_t proxy = proxy_of(c);
          if (proxy == self) {
            const auto it = new_root.find(c);
            root_info[c] = {it == new_root.end() ? c : it->second,
                            finished_here.contains(c)};
          } else {
            Writer w;
            w.put_varint(c);
            ctx.send(proxy, kRootQueryTag, w);
          }
        }
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto c = static_cast<std::uint32_t>(r.get_varint());
        const auto it = new_root.find(c);
        Writer w;
        w.put_varint(c);
        w.put_varint(it == new_root.end() ? c : it->second);
        w.put_u8(finished_here.contains(c) ? 1 : 0);
        ctx.send(msg.src, kRootReplyTag, w);
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto c = static_cast<std::uint32_t>(r.get_varint());
        const auto root = static_cast<std::uint32_t>(r.get_varint());
        const bool fin = r.get_u8() != 0;
        root_info[c] = {root, fin};
      }
      for (std::size_t i = 0; i < owned.size(); ++i) {
        const std::uint32_t c = frag[i];
        if (finished.contains(c)) continue;
        const auto& [root, fin] = root_info.at(c);
        frag[i] = root;
        if (fin) finished.insert(c);  // fin implies root == c
      }

      ++phase;
      done = !ctx.all_reduce_or(any_alive);
    }

    for (std::size_t i = 0; i < owned.size(); ++i) {
      result.fragment_of[owned[i]] = frag[i];
    }
    phases_by_machine[self] = phase;
  };

  result.metrics = engine.run(program);
  for (auto& edges : emitted) {
    result.edges.insert(result.edges.end(), edges.begin(), edges.end());
  }
  std::sort(result.edges.begin(), result.edges.end(), mst_edge_less);
  for (const auto& e : result.edges) result.total_weight += e.weight;
  result.phases = phases_by_machine.empty() ? 0 : phases_by_machine[0];
  return result;
}

}  // namespace

DistributedComponentsResult sketch_connectivity(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    const SketchConnectivityConfig& config) {
  auto boruvka =
      run_sketch_boruvka(&g, nullptr, partition, engine, config);
  DistributedComponentsResult result;
  result.labels = std::move(boruvka.fragment_of);
  result.phases = boruvka.phases;
  result.metrics = std::move(boruvka.metrics);
  const std::unordered_set<std::uint32_t> distinct(result.labels.begin(),
                                                   result.labels.end());
  result.num_components = g.num_vertices() == 0 ? 0 : distinct.size();
  return result;
}

DistributedMstResult sketch_mst(const WeightedGraph& g,
                                const VertexPartition& partition,
                                Engine& engine,
                                const SketchConnectivityConfig& config) {
  return run_sketch_boruvka(nullptr, &g, partition, engine, config);
}

DistributedComponentsResult centralized_connectivity_baseline(
    const Graph& g, const VertexPartition& partition, Engine& engine) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (partition.n() != n || partition.k() != k) {
    throw std::invalid_argument(
        "centralized_connectivity_baseline: partition mismatch");
  }

  DistributedComponentsResult result;
  result.labels.assign(n, 0);
  result.phases = 1;

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = partition.owned(self);

    // Ship every locally-held edge to the coordinator (each edge once,
    // from its min endpoint's home): per-link load Θ(m/k · log n).
    std::vector<std::pair<Vertex, Vertex>> local;
    for (const Vertex u : owned) {
      for (const Vertex v : g.neighbors(u)) {
        if (u >= v) continue;
        if (self == 0) {
          local.emplace_back(u, v);
        } else {
          Writer w;
          w.put_varint(u);
          w.put_varint(v);
          ctx.send(0, kEdgeShipTag, w);
        }
      }
    }
    std::vector<Message> inbox = ctx.exchange();
    if (self == 0) {
      UnionFind uf(n);
      for (const auto& [u, v] : local) uf.unite(u, v);
      for (const Message& msg : inbox) {
        Reader r(msg.payload);
        const auto u = static_cast<Vertex>(r.get_varint());
        const auto v = static_cast<Vertex>(r.get_varint());
        uf.unite(u, v);
      }
      // Scatter labels, one message per machine, in owned-vertex order:
      // per-link load Θ(n/k · log n).
      for (std::size_t m = 1; m < k; ++m) {
        Writer w;
        for (const Vertex v : partition.owned(m)) {
          w.put_varint(uf.find(v));
        }
        ctx.send(m, kLabelShipTag, w);
      }
      for (const Vertex v : owned) result.labels[v] = uf.find(v);
    }
    inbox = ctx.exchange();
    if (self != 0) {
      if (inbox.size() != 1 && !owned.empty()) {
        throw std::logic_error("baseline: expected one label message");
      }
      if (!inbox.empty()) {
        Reader r(inbox.front().payload);
        for (const Vertex v : owned) {
          result.labels[v] = static_cast<std::uint32_t>(r.get_varint());
        }
      }
    }
  };

  result.metrics = engine.run(program);
  const std::unordered_set<std::uint32_t> distinct(result.labels.begin(),
                                                   result.labels.end());
  result.num_components = n == 0 ? 0 : distinct.size();
  return result;
}

}  // namespace km
