#include "core/connectivity.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/detail/sketch_kernels.hpp"
#include "core/detail/sorted.hpp"
#include "core/sketch.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {

// Every plane is batched per link: one message per (src, dst, superstep)
// holding every entry bound for dst, so the per-message header is paid
// once per link instead of once per label.
constexpr std::uint16_t kSketchTag = 1;  // [label, nnz, (cell pos, cell)*]*
constexpr std::uint16_t kCandidateTag = 7;  // [label, n, edge id*]*
constexpr std::uint16_t kMoeCellTag = 2;   // [label, 1-sparse cell(s)]*
constexpr std::uint16_t kIntervalTag = 3;  // [label, lo, hi, dead]*
constexpr std::uint16_t kLabelQueryTag = 4;  // [vertex]*
constexpr std::uint16_t kLabelReplyTag = 5;  // [label]* in query order
// stats (attempts, failures, alive) then [label, root, finished]*
constexpr std::uint16_t kRootPushTag = 6;
constexpr std::uint16_t kEdgeShipTag = 8;    // baseline: (u, v)
constexpr std::uint16_t kLabelShipTag = 9;   // baseline: labels, owned order

/// An outgoing edge a proxy established for a component this phase.
struct FoundEdge {
  Vertex a = 0;
  Vertex b = 0;
  std::uint64_t weight = 0;
};

/// Both sketch algorithms share one Borůvka driver; the only difference
/// is how a component's proxy obtains an outgoing edge each phase.
enum class EdgeFind {
  kL0Sample,   ///< ℓ₀-sample any crossing edge (connectivity)
  kMoeSearch,  ///< exact min-key crossing edge via threshold search (MST)
};

DistributedMstResult run_sketch_boruvka(const Graph* ug,
                                        const WeightedGraph* wg,
                                        const VertexPartition& part,
                                        Engine& engine,
                                        const SketchConnectivityConfig& cfg) {
  const EdgeFind find_mode = wg ? EdgeFind::kMoeSearch : EdgeFind::kL0Sample;
  const std::size_t n = wg ? wg->num_vertices() : ug->num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument(
        "sketch connectivity: partition does not match graph/k");
  }
  if (cfg.threshold_arity < 2) {
    throw std::invalid_argument(
        "sketch connectivity: threshold_arity must be >= 2");
  }
  const EdgeIdCodec codec(n);
  const std::uint32_t id_bits = codec.id_bits();
  const std::size_t max_phases =
      cfg.max_phases != 0
          ? cfg.max_phases
          : 4 * std::size_t{ceil_log2(std::max<std::uint64_t>(n, 2))} + 16;
  // MST keys live in 64 - id_bits bits above the edge id, and the search
  // arithmetic needs maxkey + 1 to not wrap: cap keys below 2^63.  Past
  // 2^31 vertices there is no headroom left for any weight bits (and the
  // shift below would be UB), so refuse up front.
  if (find_mode == EdgeFind::kMoeSearch && id_bits >= 63) {
    throw std::invalid_argument(
        "sketch_mst: graph too large for the 63-bit weight-key budget");
  }
  const std::uint64_t max_weight_allowed =
      id_bits >= 63 ? 0 : (std::uint64_t{1} << (63 - id_bits)) - 1;

  DistributedMstResult result;
  result.fragment_of.assign(n, 0);
  std::vector<std::vector<WeightedEdge>> emitted(k);
  std::vector<std::size_t> phases_by_machine(k, 0);

  // Balanced assignment: stratify labels by their rank inside their home
  // machine's owned list, so machine m's hosted labels spread over
  // proxies in lockstep — at phase 0 (labels = owned vertices) every
  // (machine, proxy) link carries exactly floor/ceil(|owned|/k)
  // sketches, where a hashed assignment pays a binomial tail of ~1.8x
  // the mean on some link.  The partition is shared knowledge, so every
  // host of a label computes the same proxy without communication; the
  // hashed flavor stays available for experiments.
  std::vector<std::uint32_t> rank_of;
  if (cfg.balanced_proxies) {
    rank_of.assign(n, 0);
    for (std::size_t m = 0; m < k; ++m) {
      const auto& owned = part.owned(m);
      for (std::size_t i = 0; i < owned.size(); ++i) {
        rank_of[owned[i]] = static_cast<std::uint32_t>(i);
      }
    }
  }
  const auto proxy_of = [&, proxy_seed = mix64(cfg.seed, 0x9c'e7'0a'17ULL)](
                            std::uint32_t label) {
    return cfg.balanced_proxies
               ? static_cast<std::size_t>(rank_of[label] % k)
               : static_cast<std::size_t>(hash_vertex(proxy_seed, label) % k);
  };

  const std::uint32_t arity = cfg.threshold_arity;

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = part.owned(self);
    std::unordered_map<Vertex, std::size_t> index_of;
    index_of.reserve(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) index_of[owned[i]] = i;

    const auto neighbors = [&](Vertex v) {
      return wg ? wg->neighbors(v) : ug->neighbors(v);
    };

    // frag[i] = component label of owned[i]; a label in `finished` heads
    // a complete connected component and never changes again.
    std::vector<std::uint32_t> frag(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) frag[i] = owned[i];
    std::unordered_set<std::uint32_t> finished;

    if (find_mode == EdgeFind::kL0Sample && cfg.batch_local_phases) {
      // Batch every purely machine-local Borůvka phase into superstep
      // zero: union-find over the locally-visible edges (both endpoints
      // owned), then label each local component by its minimum member —
      // globally unique because ownership partitions the vertices.
      UnionFind uf(owned.size());
      for (std::size_t i = 0; i < owned.size(); ++i) {
        for (const Vertex nb : neighbors(owned[i])) {
          const auto it = index_of.find(nb);
          if (it != index_of.end()) uf.unite(i, it->second);
        }
      }
      std::unordered_map<std::size_t, Vertex> min_member;
      for (std::size_t i = 0; i < owned.size(); ++i) {
        auto [it, fresh] = min_member.try_emplace(uf.find(i), owned[i]);
        if (!fresh) it->second = std::min(it->second, owned[i]);
      }
      for (std::size_t i = 0; i < owned.size(); ++i) {
        frag[i] = min_member.at(uf.find(i));
      }
    }

    // MOE mode: per-vertex incident (key, sign) lists, built once.  The
    // key packs (weight, edge id) so the key order is exactly
    // mst_edge_less and every key is unique.
    std::vector<std::vector<std::pair<std::uint64_t, std::int8_t>>> incident;
    std::uint64_t max_key = 0;
    if (find_mode == EdgeFind::kMoeSearch) {
      incident.resize(owned.size());
      for (std::size_t i = 0; i < owned.size(); ++i) {
        const Vertex v = owned[i];
        const auto ns = wg->neighbors(v);
        const auto ws = wg->weights(v);
        incident[i].reserve(ns.size());
        for (std::size_t j = 0; j < ns.size(); ++j) {
          if (ws[j] > max_weight_allowed) {
            throw std::invalid_argument(
                "sketch_mst: edge weight exceeds the 63-bit key budget");
          }
          const std::uint64_t key =
              (ws[j] << id_bits) | codec.encode(v, ns[j]);
          incident[i].emplace_back(
              key, static_cast<std::int8_t>(EdgeIdCodec::sign_for(v, ns[j])));
          max_key = std::max(max_key, key);
        }
      }
      max_key = ctx.all_reduce_max(max_key);
    }
    // s-ary refinements until an interval of max_key + 1 keys pins to
    // one: each step divides the length by arity, rounding up.
    std::uint32_t refinements = 0;
    if (find_mode == EdgeFind::kMoeSearch) {
      for (std::uint64_t len = max_key + 1; len > 1;
           len = (len + arity - 1) / arity) {
        ++refinements;
      }
    }
    // Subinterval boundaries of [lo, hi]: bound(j) for j = 1..arity-1,
    // with bound(0) = lo - 1 and bound(arity) = hi implied.  Sizes
    // differ by at most one, so lengths shrink by ceil-division.
    const auto split_bound = [&](std::uint64_t lo, std::uint64_t len,
                                 std::uint32_t j) {
      const auto wide = static_cast<unsigned __int128>(len) * j;
      return lo + static_cast<std::uint64_t>((wide + arity - 1) / arity) - 1;
    };

    // One reusable Writer per destination; flush() sends every non-empty
    // one under the plane's tag (send() consumes the contents, so the
    // writers are clean for the next plane).
    std::vector<Writer> outbox(k);
    const auto flush = [&](std::uint16_t tag) {
      for (std::size_t dst = 0; dst < k; ++dst) {
        if (dst != self && outbox[dst].size_bytes() != 0) {
          ctx.send(dst, tag, outbox[dst]);
        }
      }
    };

    std::uint32_t rows = cfg.adapt_rows
                             ? std::clamp(cfg.rows, cfg.min_rows, cfg.max_rows)
                             : cfg.rows;

    std::size_t phase = 0;
    bool done = false;
    while (!done) {
      if (phase >= max_phases) {
        throw std::runtime_error(
            "sketch boruvka: phase budget exhausted without convergence");
      }
      const std::uint64_t phase_seed =
          mix64(cfg.seed, 0xB0'12'34'00ULL + phase);
      const std::uint64_t z = sketch_fingerprint_base(phase_seed);

      // ---- Find stage: outgoing edge candidates per hosted component.
      // Connectivity harvests every distinct edge the fold's rows
      // recover (more candidates -> more components hook per phase);
      // the MST search pins exactly one, the MOE. ----
      std::unordered_map<std::uint32_t, std::vector<FoundEdge>> found;
      std::unordered_set<std::uint32_t> finished_here;         // proxy side
      // Machines hosting each label proxied here, recorded from the
      // first up-exchange of the phase; the root push goes only to them.
      std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> hosts;
      bool any_alive = false;                                  // proxy side
      std::uint64_t attempts = 0;                              // proxy side
      std::uint64_t failures = 0;                              // proxy side

      if (find_mode == EdgeFind::kL0Sample) {
        const L0SketchShape shape{
            .id_bits = id_bits, .rows = rows, .seed = phase_seed};
        // Pre-aggregate per (machine, label): summing the sketches of
        // every locally-hosted member costs nothing (linearity), and it
        // is what keeps the per-link load at Õ(n/k²) — without it, a
        // nearly-merged graph funnels one sketch per *vertex* into a
        // single proxy, Θ(n/k) per link.
        std::unordered_map<std::uint32_t, L0Sketch> partial;
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const std::uint32_t c = frag[i];
          if (finished.contains(c)) continue;
          const Vertex v = owned[i];
          L0Sketch& sketch = partial.try_emplace(c, shape).first->second;
          for (const Vertex nb : neighbors(v)) {
            sketch.add(codec.encode(v, nb), EdgeIdCodec::sign_for(v, nb));
          }
        }
        // Sliced two-stage aggregation.  A single-proxy fold pays the
        // per-link *max*, not the mean: which labels a machine hosts is
        // random, so some (host, proxy) link carries 1.6-5x the average
        // sketch load and the measured rounds flatten away from n/k².
        // Instead every nonzero cell travels to a holder hashed from
        // (label, cell position) — cell-granularity balls-into-bins, so
        // every link carries (hosted bits)/k to within a few percent no
        // matter which labels a machine hosts or which cells of the
        // cascade are dense.  All copies of one (label, position) cell
        // hash to the same holder, so each holder folds the true cells
        // of the folded sketch (by linearity the fold of the copies is
        // the cell of the fold).  Holders then recover candidate
        // support members from their folded cells and forward only the
        // ids, so reassembly costs a few varints per label instead of
        // a second sketch-sized hop.  Hosts always send the proxy an
        // entry (possibly empty): it doubles as the host census for
        // the root push.
        const std::uint32_t levels = shape.levels();
        const std::size_t ncells_total = std::size_t{rows} * levels;
        const std::uint64_t universe =
            id_bits >= 64 ? 0 : (std::uint64_t{1} << id_bits);
        const std::uint64_t stripe_seed = mix64(phase_seed, 0x57'81'9eULL);
        const auto holder_of = [&](std::uint32_t c, std::size_t pos) {
          return static_cast<std::size_t>(
              mix64(mix64(stripe_seed, c), static_cast<std::uint64_t>(pos)) %
              k);
        };
        // Folded (position, cell) pairs this machine holds per label.
        std::unordered_map<std::uint32_t,
                           std::vector<std::pair<std::uint32_t, SketchCell>>>
            slice_fold;
        const auto fold_into = [&](std::uint32_t c, std::uint32_t pos,
                                   const SketchCell& cell) {
          auto& acc = slice_fold[c];
          for (auto& [p, folded] : acc) {
            if (p == pos) {
              folded.merge(cell);
              return;
            }
          }
          acc.emplace_back(pos, cell);
        };
        std::vector<std::vector<std::pair<std::uint32_t, SketchCell>>> sliced(
            k);
        for (const std::uint32_t c : detail::sorted_keys(partial)) {
          const L0Sketch& sketch = partial.at(c);
          const std::size_t proxy = proxy_of(c);
          if (proxy == self) {
            hosts[c].push_back(static_cast<std::uint32_t>(self));
          }
          for (auto& cells : sliced) cells.clear();
          for (std::size_t pos = 0; pos < ncells_total; ++pos) {
            const SketchCell cell = sketch.cell(pos / levels, pos % levels);
            if (cell.is_zero()) continue;
            sliced[holder_of(c, pos)].emplace_back(
                static_cast<std::uint32_t>(pos), cell);
          }
          for (std::size_t dst = 0; dst < k; ++dst) {
            if (dst == self) {
              for (const auto& [pos, cell] : sliced[dst]) {
                fold_into(c, pos, cell);
              }
              continue;
            }
            if (sliced[dst].empty() && dst != proxy) continue;
            Writer& w = outbox[dst];
            w.put_varint(c);
            w.put_varint(sliced[dst].size());
            for (const auto& [pos, cell] : sliced[dst]) {
              w.put_varint(pos);
              cell.serialize(w);
            }
          }
        }
        partial.clear();
        flush(kSketchTag);
        for (const Message& msg : ctx.exchange()) {
          Reader r(msg.payload);
          while (!r.done()) {
            const auto c = static_cast<std::uint32_t>(r.get_varint());
            const std::uint64_t nnz = r.get_varint();
            if (proxy_of(c) == self) hosts[c].push_back(msg.src);
            for (std::uint64_t t = 0; t < nnz; ++t) {
              const auto pos = static_cast<std::uint32_t>(r.get_varint());
              fold_into(c, pos, SketchCell::deserialize(r));
            }
          }
        }
        // Candidate forward: recover from the folded stripes, ship ids.
        // A label with no nonzero stripe anywhere has an empty folded
        // sketch (internal edges cancelled in the fold), so absence of
        // reports is the emptiness certificate.
        std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> cand_ids;
        std::unordered_set<std::uint32_t> nonzero_marks;  // proxy side
        for (const std::uint32_t c : detail::sorted_keys(slice_fold)) {
          bool nonzero = false;
          std::vector<std::uint64_t> ids;
          for (const auto& [pos, cell] : slice_fold.at(c)) {
            if (cell.is_zero()) continue;
            nonzero = true;
            if (const auto id = cell.recover(z, universe)) ids.push_back(*id);
          }
          if (!nonzero) continue;
          const std::size_t proxy = proxy_of(c);
          if (proxy == self) {
            nonzero_marks.insert(c);
            auto& acc = cand_ids[c];
            acc.insert(acc.end(), ids.begin(), ids.end());
          } else {
            Writer& w = outbox[proxy];
            w.put_varint(c);
            w.put_varint(ids.size());
            for (const std::uint64_t id : ids) w.put_varint(id);
          }
        }
        slice_fold.clear();
        flush(kCandidateTag);
        for (const Message& msg : ctx.exchange()) {
          Reader r(msg.payload);
          while (!r.done()) {
            const auto c = static_cast<std::uint32_t>(r.get_varint());
            nonzero_marks.insert(c);
            const std::uint64_t m = r.get_varint();
            auto& acc = cand_ids[c];
            for (std::uint64_t t = 0; t < m; ++t) {
              acc.push_back(r.get_varint());
            }
          }
        }
        for (const std::uint32_t c : detail::sorted_keys(hosts)) {
          if (!nonzero_marks.contains(c)) {
            finished_here.insert(c);
            continue;
          }
          any_alive = true;
          ++attempts;
          auto& ids = cand_ids[c];
          std::sort(ids.begin(), ids.end());
          ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
          std::vector<FoundEdge> cand;
          for (const std::uint64_t id : ids) {
            const auto [a, b] = codec.decode(id);
            if (a < b && b < n) cand.push_back(FoundEdge{a, b, 0});
            if (cand.size() == 4) break;  // bound the label-query bits
          }
          // A recovery-free fold leaves the component idle this phase
          // (the next phase retries with fresh hashes) and feeds the
          // row auto-sizing below.
          if (cand.empty()) {
            ++failures;
          } else {
            found[c] = std::move(cand);
          }
        }
      } else {
        // s-ary threshold search.  Machines keep the current [lo, hi]
        // per hosted label from the proxy's pushes; iteration 0 spans
        // the full key range (the emptiness test), the next
        // `refinements` iterations each shrink the interval by `arity`,
        // and the final iteration's cell is exactly 1-sparse and
        // recovers the MOE.
        struct Interval {
          std::uint64_t lo = 0, hi = 0;
          bool dead = false;
        };
        std::unordered_map<std::uint32_t, Interval> ivals;       // machine
        std::unordered_map<std::uint32_t, Interval> proxy_ival;  // proxy
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const std::uint32_t c = frag[i];
          if (!finished.contains(c)) {
            ivals.try_emplace(c, Interval{0, max_key, false});
          }
        }
        // Per-phase fingerprint powers via the shared windowed table
        // (bit-identical to powmod61), one lookup per edge.
        const auto& pows = detail::fingerprint_powers(
            z, static_cast<std::uint32_t>(std::bit_width(max_key) + 1));
        std::vector<std::vector<std::uint64_t>> fpc(owned.size());
        for (std::size_t i = 0; i < owned.size(); ++i) {
          if (finished.contains(frag[i])) continue;
          fpc[i].reserve(incident[i].size());
          for (const auto& entry : incident[i]) {
            fpc[i].push_back(pows.pow(entry.first));
          }
        }
        const std::uint32_t iterations = 1 + refinements + 1;
        std::vector<std::uint64_t> bounds;
        for (std::uint32_t t = 0; t < iterations; ++t) {
          const bool refining = t >= 1 && t <= refinements;
          // Cells per up-entry this iteration: the emptiness test and
          // the final recovery send one, a refinement sends arity-1
          // prefix cells (labels already pinned to one key skip the
          // iteration entirely, on both sides).
          const std::uint32_t ncells = refining ? arity - 1 : 1;
          // Up: restricted cells pre-aggregated per (machine, label) —
          // one entry per hosted component, not per vertex, keeping the
          // per-link load Õ(n/k²) as components grow across machines.
          std::unordered_map<std::uint32_t, std::vector<SketchCell>> partial;
          for (std::size_t i = 0; i < owned.size(); ++i) {
            const std::uint32_t c = frag[i];
            if (finished.contains(c)) continue;
            const auto iv = ivals.find(c);
            if (iv == ivals.end() || iv->second.dead) continue;
            const std::uint64_t lo = iv->second.lo;
            const std::uint64_t len = iv->second.hi - lo + 1;
            if (refining && len == 1) continue;
            bounds.clear();
            if (refining) {
              for (std::uint32_t j = 1; j < arity; ++j) {
                bounds.push_back(split_bound(lo, len, j));
              }
            } else {
              bounds.push_back(t == 0 ? max_key : lo);
            }
            auto& cells = partial[c];
            cells.resize(ncells);
            for (std::size_t j = 0; j < incident[i].size(); ++j) {
              const auto& [key, sign] = incident[i][j];
              for (std::size_t bi = 0; bi < bounds.size(); ++bi) {
                if (key <= bounds[bi]) {
                  cells[bi].add_prepared(key, sign, fpc[i][j]);
                }
              }
            }
          }
          std::unordered_map<std::uint32_t, std::vector<SketchCell>> folded;
          const auto fold = [&](std::uint32_t c,
                                const std::vector<SketchCell>& cells) {
            auto& acc = folded[c];
            acc.resize(ncells);
            for (std::uint32_t j = 0; j < ncells; ++j) acc[j].merge(cells[j]);
          };
          for (const std::uint32_t c : detail::sorted_keys(partial)) {
            const std::size_t proxy = proxy_of(c);
            if (proxy == self) {
              fold(c, partial.at(c));
              if (t == 0) {
                hosts[c].push_back(static_cast<std::uint32_t>(self));
              }
            } else {
              Writer& w = outbox[proxy];
              w.put_varint(c);
              for (const SketchCell& cell : partial.at(c)) cell.serialize(w);
            }
          }
          flush(kMoeCellTag);
          std::vector<SketchCell> incoming(ncells);
          for (const Message& msg : ctx.exchange()) {
            Reader r(msg.payload);
            while (!r.done()) {
              const auto c = static_cast<std::uint32_t>(r.get_varint());
              for (std::uint32_t j = 0; j < ncells; ++j) {
                incoming[j] = SketchCell::deserialize(r);
              }
              fold(c, incoming);
              if (t == 0) hosts[c].push_back(msg.src);
            }
          }
          // Proxy verdicts; `refined` lists the labels whose interval
          // changed and must be pushed back down.
          std::vector<std::uint32_t> refined;
          for (const std::uint32_t c : detail::sorted_keys(folded)) {
            const auto& cells = folded.at(c);
            auto& iv = proxy_ival[c];
            if (t == 0) {
              if (cells[0].is_zero()) {
                iv.dead = true;
                finished_here.insert(c);
                refined.push_back(c);
              } else {
                any_alive = true;
                iv.lo = 0;
                iv.hi = max_key;
              }
            } else if (refining) {
              const std::uint64_t lo = iv.lo;
              const std::uint64_t len = iv.hi - lo + 1;
              // The MOE lies in the leftmost subinterval whose prefix
              // cell is nonzero (prefixes are nested, and a nonempty
              // restriction is nonzero whp by the fingerprint).
              std::uint64_t new_lo = lo;
              std::uint64_t new_hi = iv.hi;
              for (std::uint32_t j = 1; j < arity; ++j) {
                const std::uint64_t b = split_bound(lo, len, j);
                if (!cells[j - 1].is_zero()) {
                  new_hi = b;
                  break;
                }
                new_lo = b + 1;
              }
              iv.lo = new_lo;
              iv.hi = new_hi;
              refined.push_back(c);
            } else {
              // Final iteration: [lo, hi] pinned the MOE key, the
              // restricted vector is 1-sparse, recovery is exact.
              const auto key = cells[0].recover(z, max_key + 1);
              if (!key) {
                throw std::logic_error(
                    "sketch_mst: 1-sparse recovery failed at a pinned MOE");
              }
              const auto [a, b] =
                  codec.decode(*key &
                               ((std::uint64_t{1} << id_bits) - 1));
              found[c] = {FoundEdge{a, b, *key >> id_bits}};
            }
          }
          // Down: push changed intervals to the hosting machines (none
          // needed after the final iteration, but the exchange itself
          // stays lockstep for every machine).  A label declared dead
          // at t = 0 is announced once; hosts then stop sending it.
          if (t + 1 < iterations) {
            std::sort(refined.begin(), refined.end());
            for (const std::uint32_t c : refined) {
              // Every changed interval is pushed, including one that
              // just pinned to a single key: hosts need the final
              // [lo, lo] to build the recovery cell, and both sides
              // skip pinned labels in the remaining refinements.
              const Interval& iv = proxy_ival.at(c);
              auto hit = hosts.find(c);
              if (hit == hosts.end()) continue;
              for (const std::uint32_t m : hit->second) {
                if (m == self) {
                  ivals[c] = iv;
                  continue;
                }
                Writer& w = outbox[m];
                w.put_varint(c);
                w.put_varint(iv.lo);
                w.put_varint(iv.hi);
                w.put_u8(iv.dead ? 1 : 0);
              }
            }
            flush(kIntervalTag);
          }
          if (t + 1 < iterations) {
            for (const Message& msg : ctx.exchange()) {
              Reader r(msg.payload);
              while (!r.done()) {
                const auto c = static_cast<std::uint32_t>(r.get_varint());
                Interval iv;
                iv.lo = r.get_varint();
                iv.hi = r.get_varint();
                iv.dead = r.get_u8() != 0;
                ivals[c] = iv;
              }
            }
          }
        }
      }

      // ---- Label queries: who is on each end of the found edges? ----
      // Batched per home machine; replies mirror the query order, so a
      // reply message is bare labels.
      std::unordered_map<Vertex, std::uint32_t> vertex_label;
      std::vector<std::vector<Vertex>> asked(k);
      {
        std::unordered_set<Vertex> query;
        for (const std::uint32_t c : detail::sorted_keys(found)) {
          for (const FoundEdge& edge : found.at(c)) {
            query.insert(edge.a);
            query.insert(edge.b);
          }
        }
        for (const Vertex v : detail::sorted_keys(query)) {
          const std::size_t home = part.home(v);
          if (home == self) {
            vertex_label[v] = frag[index_of.at(v)];
          } else {
            asked[home].push_back(v);
            outbox[home].put_varint(v);
          }
        }
        flush(kLabelQueryTag);
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        Writer& w = outbox[msg.src];
        while (!r.done()) {
          const auto v = static_cast<Vertex>(r.get_varint());
          w.put_varint(frag[index_of.at(v)]);
        }
      }
      flush(kLabelReplyTag);
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        for (const Vertex v : asked[msg.src]) {
          vertex_label[v] = static_cast<std::uint32_t>(r.get_varint());
        }
      }

      // ---- Min-label hooking: a component hooks across the smallest
      // sampled neighbour whose label is below its own.  Every hook
      // edge points strictly down in label order, so the hook graph is
      // acyclic, and the cluster-maximum label with a successful
      // sample always hooks — with several candidates per fold the
      // merge rate beats a coin-flip rule without any coin exchange.
      std::unordered_map<std::uint32_t, std::uint32_t> new_root;
      for (const std::uint32_t c : detail::sorted_keys(found)) {
        const FoundEdge* best_edge = nullptr;
        std::uint32_t best_other = 0;
        for (const FoundEdge& edge : found.at(c)) {
          const std::uint32_t la = vertex_label.at(edge.a);
          const std::uint32_t lb = vertex_label.at(edge.b);
          if (la != c && lb != c) continue;  // stale sample: skip safely
          const std::uint32_t other = la == c ? lb : la;
          if (other == c) continue;
          const bool hook = other < c;
          if (hook) {
            if (best_edge == nullptr || other < best_other) {
              best_edge = &edge;
              best_other = other;
            }
          }
        }
        if (best_edge != nullptr) {
          new_root[c] = best_other;
          if (find_mode == EdgeFind::kMoeSearch) {
            emitted[self].push_back(
                WeightedEdge{std::min(best_edge->a, best_edge->b),
                             std::max(best_edge->a, best_edge->b),
                             best_edge->weight});
          }
        }
      }

      // ---- Root push: proxies push (label, root, finished) to the
      // recorded hosts, only for labels that changed; every machine's
      // sampling stats ride in the same superstep, so termination needs
      // no separate all-reduce and roots need no query round-trip. ----
      std::unordered_map<std::uint32_t, std::pair<std::uint32_t, bool>> push;
      {
        std::vector<std::vector<std::uint32_t>> tri(k);  // flat (c,root,fin)
        for (const std::uint32_t c : detail::sorted_keys(hosts)) {
          const auto it = new_root.find(c);
          const std::uint32_t root = it == new_root.end() ? c : it->second;
          const bool fin = finished_here.contains(c);
          if (root == c && !fin) continue;
          for (const std::uint32_t m : hosts.at(c)) {
            if (m == self) {
              push[c] = {root, fin};
            } else {
              tri[m].push_back(c);
              tri[m].push_back(root);
              tri[m].push_back(fin ? 1 : 0);
            }
          }
        }
        const bool have_stats = attempts != 0 || failures != 0 || any_alive;
        for (std::size_t dst = 0; dst < k; ++dst) {
          if (dst == self || (tri[dst].empty() && !have_stats)) continue;
          Writer& w = outbox[dst];
          w.put_varint(attempts);
          w.put_varint(failures);
          w.put_u8(any_alive ? 1 : 0);
          for (std::size_t j = 0; j < tri[dst].size(); j += 3) {
            w.put_varint(tri[dst][j]);
            w.put_varint(tri[dst][j + 1]);
            w.put_u8(tri[dst][j + 2] != 0 ? 1 : 0);
          }
          ctx.send(dst, kRootPushTag, w);
        }
      }
      std::uint64_t g_attempts = attempts;
      std::uint64_t g_failures = failures;
      bool g_alive = any_alive;
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        g_attempts += r.get_varint();
        g_failures += r.get_varint();
        g_alive = r.get_u8() != 0 || g_alive;
        while (!r.done()) {
          const auto c = static_cast<std::uint32_t>(r.get_varint());
          const auto root = static_cast<std::uint32_t>(r.get_varint());
          const bool fin = r.get_u8() != 0;
          push[c] = {root, fin};
        }
      }
      for (std::size_t i = 0; i < owned.size(); ++i) {
        const std::uint32_t c = frag[i];
        if (finished.contains(c)) continue;
        const auto it = push.find(c);
        if (it == push.end()) continue;  // unchanged this phase
        frag[i] = it->second.first;
        if (it->second.second) finished.insert(c);  // fin implies root == c
      }
      // Row auto-sizing from the global failure rate; identical inputs
      // on every machine keep the next phase's shapes agreed.
      if (find_mode == EdgeFind::kL0Sample && cfg.adapt_rows &&
          g_attempts != 0) {
        if (g_failures * 4 >= g_attempts) {
          rows = std::min(rows + 1, cfg.max_rows);
        } else if (g_failures * 16 <= g_attempts) {
          rows = std::max(rows - 1, cfg.min_rows);
        }
      }

      ++phase;
      done = !g_alive;
    }

    for (std::size_t i = 0; i < owned.size(); ++i) {
      result.fragment_of[owned[i]] = frag[i];
    }
    phases_by_machine[self] = phase;
  };

  result.metrics = engine.run(program);
  for (auto& edges : emitted) {
    result.edges.insert(result.edges.end(), edges.begin(), edges.end());
  }
  std::sort(result.edges.begin(), result.edges.end(), mst_edge_less);
  // Equal-coin hooking can let two proxies contract the same physical
  // edge in one phase (each from its own component's side); the MSF edge
  // set is the deduplicated union.
  result.edges.erase(std::unique(result.edges.begin(), result.edges.end(),
                                 [](const WeightedEdge& x,
                                    const WeightedEdge& y) {
                                   return x.u == y.u && x.v == y.v &&
                                          x.weight == y.weight;
                                 }),
                     result.edges.end());
  for (const auto& e : result.edges) result.total_weight += e.weight;
  result.phases = phases_by_machine.empty() ? 0 : phases_by_machine[0];
  return result;
}

}  // namespace

DistributedComponentsResult sketch_connectivity(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    const SketchConnectivityConfig& config) {
  auto boruvka =
      run_sketch_boruvka(&g, nullptr, partition, engine, config);
  DistributedComponentsResult result;
  result.labels = std::move(boruvka.fragment_of);
  result.phases = boruvka.phases;
  result.metrics = std::move(boruvka.metrics);
  const std::unordered_set<std::uint32_t> distinct(result.labels.begin(),
                                                   result.labels.end());
  result.num_components = g.num_vertices() == 0 ? 0 : distinct.size();
  return result;
}

DistributedMstResult sketch_mst(const WeightedGraph& g,
                                const VertexPartition& partition,
                                Engine& engine,
                                const SketchConnectivityConfig& config) {
  return run_sketch_boruvka(nullptr, &g, partition, engine, config);
}

DistributedComponentsResult centralized_connectivity_baseline(
    const Graph& g, const VertexPartition& partition, Engine& engine) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (partition.n() != n || partition.k() != k) {
    throw std::invalid_argument(
        "centralized_connectivity_baseline: partition mismatch");
  }

  DistributedComponentsResult result;
  result.labels.assign(n, 0);
  result.phases = 1;

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = partition.owned(self);

    // Ship every locally-held edge to the coordinator (each edge once,
    // from its min endpoint's home): per-link load Θ(m/k · log n).
    std::vector<std::pair<Vertex, Vertex>> local;
    for (const Vertex u : owned) {
      for (const Vertex v : g.neighbors(u)) {
        if (u >= v) continue;
        if (self == 0) {
          local.emplace_back(u, v);
        } else {
          Writer w;
          w.put_varint(u);
          w.put_varint(v);
          ctx.send(0, kEdgeShipTag, w);
        }
      }
    }
    std::vector<Message> inbox = ctx.exchange();
    if (self == 0) {
      UnionFind uf(n);
      for (const auto& [u, v] : local) uf.unite(u, v);
      for (const Message& msg : inbox) {
        Reader r(msg.payload);
        const auto u = static_cast<Vertex>(r.get_varint());
        const auto v = static_cast<Vertex>(r.get_varint());
        uf.unite(u, v);
      }
      // Scatter labels, one message per machine, in owned-vertex order:
      // per-link load Θ(n/k · log n).
      for (std::size_t m = 1; m < k; ++m) {
        Writer w;
        for (const Vertex v : partition.owned(m)) {
          w.put_varint(uf.find(v));
        }
        ctx.send(m, kLabelShipTag, w);
      }
      for (const Vertex v : owned) result.labels[v] = uf.find(v);
    }
    inbox = ctx.exchange();
    if (self != 0) {
      if (inbox.size() != 1 && !owned.empty()) {
        throw std::logic_error("baseline: expected one label message");
      }
      if (!inbox.empty()) {
        Reader r(inbox.front().payload);
        for (const Vertex v : owned) {
          result.labels[v] = static_cast<std::uint32_t>(r.get_varint());
        }
      }
    }
  };

  result.metrics = engine.run(program);
  const std::unordered_set<std::uint32_t> distinct(result.labels.begin(),
                                                   result.labels.end());
  result.num_components = n == 0 ? 0 : distinct.size();
  return result;
}

}  // namespace km
