// Distributed sorting in the k-machine model (Section 1.3).
//
// The paper uses sorting as a General-Lower-Bound-Theorem application:
// with n elements randomly distributed over k machines and the i-th
// machine required to end up holding the i-th block of order statistics,
// the theorem gives Omega~(n/k^2) rounds, matched by an O~(n/k^2)-round
// algorithm.  distributed_sample_sort() is that algorithm:
//
//   1. every machine sends a small random sample of its keys to machine 0;
//   2. machine 0 picks k-1 splitters and broadcasts them;
//   3. every machine partitions its keys by splitter and routes each
//      bucket to its machine (balanced whp: O~(n/k^2) per link);
//   4. machines exchange exact bucket counts and shuffle boundary keys so
//      that machine i holds exactly ranks [i*n/k, (i+1)*n/k).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace km {

struct SortConfig {
  /// Samples per machine sent to the coordinator: factor * k * log2(n).
  double sample_factor = 4.0;
  std::uint64_t placement_seed = 0xBEEF;  ///< random input placement
};

struct SortResult {
  /// blocks[i] = the keys machine i holds at the end, sorted ascending;
  /// machine i holds exactly the global ranks [offsets[i], offsets[i+1]).
  std::vector<std::vector<std::uint64_t>> blocks;
  std::vector<std::size_t> offsets;  // k+1 entries
  Metrics metrics;
};

/// Sorts `keys` (conceptually scattered uniformly at random over the k
/// machines of `engine`) into exact per-machine order-statistic blocks.
SortResult distributed_sample_sort(const std::vector<std::uint64_t>& keys,
                                   Engine& engine,
                                   const SortConfig& config = {});

}  // namespace km
