// Linear graph sketches: ℓ₀-sampling over signed edge-incidence vectors.
//
// The paper's Õ(n/k²) connectivity/MST upper bound (Section 1.3, the
// algorithm of Pandurangan-Robinson-Scquizzato [51], built on the
// Ahn-Guibas-McGregor sketching technique) rests on one linear-algebra
// fact: give every edge e = {a, b} (a < b) a ±1 entry in each endpoint's
// incidence vector (+1 at a, -1 at b).  Then for any vertex set S, the
// *sum* of the member vectors has support exactly on the edges crossing
// the cut (S, V∖S) — internal edges cancel.  A linear sketch of the
// incidence vectors therefore merges under addition: polylog(n) bits per
// vertex travel to a component's proxy machine, the proxy adds them, and
// sampling the folded sketch yields an outgoing edge of the whole
// component without anyone ever enumerating its edge set.
//
// Two layers:
//  - SketchCell: the classic 1-sparse recovery triple (signed count,
//    wrapping id-sum, Mersenne-61 polynomial fingerprint).  Exact when
//    the underlying vector really is 1-sparse; the fingerprint rejects
//    everything else with error ≤ 64/2⁶¹ per check.  Also an exact
//    emptiness test whp (a nonzero vector fingerprints to 0 with
//    probability ≤ support·64/2⁶¹).  sketch_mst's threshold search uses
//    bare cells.
//  - L0Sketch: rows × levels cells, level ℓ subsampling ids nested with
//    probability 2^-ℓ (trailing zeros of a seeded hash).  sample() scans
//    for a verified 1-sparse cell, giving a uniformly-ish random element
//    of the support with constant success probability per row.
//
// Storage is a structure-of-arrays arena: one 64-byte-aligned
// allocation holding three contiguous streams (counts, id-sums,
// fingerprints) over the rows×levels grid, plus per-row seeds and
// watermarks.  The add/merge loops run through runtime-dispatched SIMD
// kernels (core/detail/sketch_kernels.hpp: AVX2 when the CPU has it,
// scalar otherwise) that perform identical integer arithmetic, so the
// dispatch path never changes a single bit of any sketch.  Each row
// also keeps a watermark — one past the highest level any update
// touched — so merge and serialize skip the provably-zero tail of the
// level cascade.
//
// The wire format is sparse: a nonzero-cell bitmap over the grid
// followed by (varint count, varint id-sum, fixed fingerprint) per
// nonzero cell.  Empty cells cost one bit instead of ten bytes, which
// is what keeps the phase-0 payload (n singleton sketches, most of the
// cascade untouched) at Õ(n/k²) with a small constant.
//
// Everything here is deterministic given (seed, id): merging is integer
// addition, so sketches are exactly linear and merge-order invariant
// (tests/test_sketch.cpp holds both as properties, and
// tests/test_sketch_simd.cpp holds scalar/AVX2 bit-identity).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/serialize.hpp"

namespace km {

/// Field modulus for fingerprints: the Mersenne prime 2^61 - 1.
inline constexpr std::uint64_t kSketchPrime = (std::uint64_t{1} << 61) - 1;

/// a * b mod 2^61-1.  Inputs may be arbitrary u64 values: both are
/// canonicalized at entry (values ≡ 2^61-1, e.g. the modulus itself or
/// UINT64_MAX, alias their residue — the modulus aliases zero).  The
/// result is always the canonical representative in [0, 2^61-1).
std::uint64_t mulmod61(std::uint64_t a, std::uint64_t b) noexcept;
/// base^exp mod 2^61-1.  The base is canonicalized at entry like
/// mulmod61; the exponent is a plain integer (not reduced mod p-1).
std::uint64_t powmod61(std::uint64_t base, std::uint64_t exp) noexcept;

/// Packs an undirected edge into one integer id and back: the basis of
/// the incidence vectors.  id = (min << vbits) | max, so ids are unique
/// per edge, nonzero, and decode without any shared state beyond n.
/// vbits tops out at 32 (Vertex is 32-bit): at that edge the id spans
/// the full 64-bit word and every shift below stays < 64, so the
/// arithmetic holds for n all the way up to 2^32.
struct EdgeIdCodec {
  explicit EdgeIdCodec(std::size_t n) noexcept;

  std::uint32_t vbits = 1;  ///< bits per endpoint; 2*vbits = id width

  std::uint64_t encode(Vertex a, Vertex b) const noexcept {
    const Vertex lo = a < b ? a : b;
    const Vertex hi = a < b ? b : a;
    return (std::uint64_t{lo} << vbits) | std::uint64_t{hi};
  }
  /// Sign of vertex v's entry for its incident edge {v, other}.
  static int sign_for(Vertex v, Vertex other) noexcept {
    return v < other ? +1 : -1;
  }
  std::pair<Vertex, Vertex> decode(std::uint64_t id) const noexcept {
    const auto lo = static_cast<Vertex>(id >> vbits);
    const auto hi =
        static_cast<Vertex>(id & ((std::uint64_t{1} << vbits) - 1));
    return {lo, hi};
  }
  std::uint32_t id_bits() const noexcept { return 2 * vbits; }
};

/// 1-sparse recovery cell over a signed integer vector indexed by ids.
/// All three components are linear: merge() is exact vector addition
/// (id_sum wraps mod 2^64 on purpose — recovery only ever reads it when
/// the cell is genuinely 1-sparse, and the fingerprint vetoes the rest).
struct SketchCell {
  std::int64_t count = 0;     ///< sum of signs
  std::uint64_t id_sum = 0;   ///< sum of sign * id, wrapping
  std::uint64_t fingerprint = 0;  ///< sum of sign * z^id mod 2^61-1

  /// Adds sign (±1) at `id`, with z the sketch's fingerprint base.
  void add(std::uint64_t id, int sign, std::uint64_t z) noexcept {
    add_prepared(id, sign, powmod61(z, id));
  }
  /// Same, with z^id precomputed by the caller (hot loops precompute it
  /// once per edge per phase).
  void add_prepared(std::uint64_t id, int sign,
                    std::uint64_t z_pow_id) noexcept;
  void merge(const SketchCell& other) noexcept;

  /// True iff every component is zero: the sketched vector is empty whp
  /// (a nonempty vector fingerprints to zero with probability
  /// ≤ support * 64 / 2^61).
  bool is_zero() const noexcept {
    return count == 0 && id_sum == 0 && fingerprint == 0;
  }

  /// The unique id when the vector is 1-sparse with a ±1 value
  /// (guaranteed exact in that case); nullopt otherwise whp.  `universe`
  /// bounds valid ids (exclusive).
  std::optional<std::uint64_t> recover(std::uint64_t z,
                                       std::uint64_t universe) const noexcept;

  void serialize(Writer& w) const;
  static SketchCell deserialize(Reader& r);

  friend bool operator==(const SketchCell&, const SketchCell&) = default;
};

/// Shape parameters a sender and receiver must agree on for sketches to
/// be mergeable; fully derived from (seed, id_bits, rows).
struct L0SketchShape {
  std::uint32_t id_bits = 2;  ///< universe = 2^id_bits ids
  std::uint32_t rows = 4;     ///< independent sampler repetitions
  std::uint64_t seed = 1;     ///< drives subsampling hashes and z

  std::uint32_t levels() const noexcept { return id_bits + 1; }
  friend bool operator==(const L0SketchShape&, const L0SketchShape&) = default;
};

/// ℓ₀-sampling sketch: `rows` independent samplers, each a geometric
/// cascade of 1-sparse cells over nested subsamples of the id universe.
class L0Sketch {
 public:
  L0Sketch() = default;
  explicit L0Sketch(const L0SketchShape& shape);
  L0Sketch(const L0Sketch& other);
  L0Sketch& operator=(const L0Sketch& other);
  L0Sketch(L0Sketch&& other) noexcept;
  L0Sketch& operator=(L0Sketch&& other) noexcept;
  ~L0Sketch();

  const L0SketchShape& shape() const noexcept { return shape_; }
  std::uint64_t fingerprint_base() const noexcept { return z_; }

  /// Adds sign (±1) at `id` to every cell whose subsample keeps `id`.
  void add(std::uint64_t id, int sign) noexcept;

  /// Exact pointwise vector addition.  Shapes must match (checked).
  void merge(const L0Sketch& other);

  /// Cache hint: request this sketch's merge-relevant lines.  Fold
  /// loops that stream many sketches into one accumulator should hint
  /// the *next* source before merging the current one — the merge is
  /// otherwise bound on the source's demand misses.
  void prefetch() const noexcept;

  /// Reads a serialized sketch of the same shape and merges it in
  /// without materializing a temporary.
  void merge_serialized(Reader& r);

  /// True iff the sketched vector is empty whp: the level-0 cells (no
  /// subsampling) of every row are zero.
  bool empty_whp() const noexcept;

  /// A member of the support, or nullopt if no cell is 1-sparse (retry
  /// with a fresh seed).  Deterministic in the cell contents, so two
  /// sketches that are equal — however they were merged — sample the
  /// same id.
  std::optional<std::uint64_t> sample() const noexcept;

  /// Every distinct support member any 1-sparse cell recovers, sorted
  /// ascending — the rows are independent samplers, so a single fold
  /// usually yields several distinct members for free.  Deterministic in
  /// the cell contents like sample() (which returns the first recovery
  /// in row-major order, not necessarily the smallest).
  std::vector<std::uint64_t> sample_all() const;

  /// Sparse wire format: nonzero-cell bitmap, then per nonzero cell
  /// (varint count, varint id-sum, fixed-width fingerprint).
  void serialize(Writer& w) const;

  /// Test access: the cell at (row, level), assembled from the arena.
  SketchCell cell(std::size_t row, std::size_t level) const noexcept {
    const std::size_t i = row * shape_.levels() + level;
    return SketchCell{counts_[i], id_sums_[i], fps_[i]};
  }
  std::size_t cell_count() const noexcept { return cells_; }

  friend bool operator==(const L0Sketch& a, const L0Sketch& b);

 private:
  void alloc_arena();

  L0SketchShape shape_;
  std::uint64_t z_ = 1;
  std::size_t cells_ = 0;  ///< rows * levels
  // One 64-byte-aligned arena; counts_/id_sums_/fps_ are the three SoA
  // streams over the row-major grid, followed by per-row subsampling
  // seeds and watermarks (tops_[r] = one past the highest level any
  // update touched in row r; every cell at or above it is zero).
  std::uint64_t* arena_ = nullptr;
  std::int64_t* counts_ = nullptr;
  std::uint64_t* id_sums_ = nullptr;
  std::uint64_t* fps_ = nullptr;
  std::uint64_t* row_seeds_ = nullptr;
  std::uint64_t* tops_ = nullptr;
};

/// Fingerprint base shared by every cell derived from `seed`: uniform in
/// [2, p-1].  sketch_mst's bare cells and L0Sketch both use this, so a
/// cell built by one side verifies against the other.
std::uint64_t sketch_fingerprint_base(std::uint64_t seed) noexcept;

}  // namespace km
