// The General Lower Bound Theorem (Theorem 1) and its instantiations.
//
// Theorem 1 relates round complexity to information cost: if on a large
// set of "good" inputs some machine's output raises its knowledge of a
// random variable Z by IC bits (Premises (1) and (2)), then
//     T = Omega(IC / (B k))   rounds.
// The proof counts transcript entropy: T rounds over k-1 links of B bits
// admit at most 2^{(B+1)(k-1)T} transcripts (Lemma 3).
//
// This header provides the theorem as an evaluatable object plus the
// paper's concrete instantiations:
//   - PageRank (Theorem 2):      IC = m/4k = Theta(n/k)  -> Omega~(n/Bk^2)
//   - Triangles (Theorem 3):     IC = Theta((t/k)^{2/3}) -> Omega~(m/Bk^{5/3})
//   - Congested clique (Cor 1):  k = n                   -> Omega~(n^{1/3}/B)
//   - Message tradeoff (Cor 2):  round-optimal triangle algorithms move
//     Omega~(n^2 k^{1/3}) messages in total
//   - Sorting and MST (Sec 1.3): IC = Theta~(n/k)        -> Omega~(n/Bk^2)
// All functions return both the bound and a human-readable derivation so
// the benchmark harness can print bound vs measurement side by side.
#pragma once

#include <cstdint>
#include <string>

namespace km {

/// Theorem 1, evaluatable: T >= IC / (B k) (constants dropped; the
/// benches compare shapes, not constants).
struct GeneralLowerBound {
  double entropy_bits = 0.0;    ///< H[Z]
  double info_cost_bits = 0.0;  ///< IC
  double bandwidth_bits = 1.0;  ///< B
  double k = 1.0;
  std::string derivation;

  double rounds() const noexcept {
    return info_cost_bits / (bandwidth_bits * k);
  }

  /// Max transcript entropy admissible in T rounds (Lemma 3):
  /// (B+1) (k-1) T bits; the theorem needs this >= IC - o(IC).
  double transcript_entropy_bits(double rounds_budget) const noexcept {
    return (bandwidth_bits + 1.0) * (k - 1.0) * rounds_budget;
  }
};

/// Theorem 2: PageRank on the gadget graph H (n = 4q+1 vertices).
/// Z = the q edge-direction bits paired with the v_i identities;
/// H[Z] = q = m/4 bits, IC = q/k.
GeneralLowerBound pagerank_lower_bound(std::size_t n, std::size_t k,
                                       std::uint64_t bandwidth_bits);

/// Theorem 3: triangle enumeration on G(n,1/2).
/// Z = the characteristic edge vector, H[Z] = C(n,2) bits;
/// a machine outputting t/k of the t = Theta(C(n,3)) triangles must have
/// learned Omega((t/k)^{2/3}) edge bits (Rivin/Kruskal-Katona).
GeneralLowerBound triangle_lower_bound(std::size_t n, std::size_t k,
                                       std::uint64_t bandwidth_bits);

/// Same bound parameterized by the actual triangle count t (the paper's
/// Omega~((t/k)^{2/3}/k) form, valid for sparse graphs too).
GeneralLowerBound triangle_lower_bound_from_t(std::size_t n, double t,
                                              std::size_t k,
                                              std::uint64_t bandwidth_bits);

/// Corollary 1: congested clique (k = n) triangle enumeration.
GeneralLowerBound congested_clique_triangle_lower_bound(
    std::size_t n, std::uint64_t bandwidth_bits);

/// Corollary 2: total message complexity of any algorithm that
/// enumerates triangles in the optimal O~(n^2/k^{5/3}) rounds:
/// Omega~(n^2 k^{1/3}) messages.
double triangle_message_lower_bound(std::size_t n, std::size_t k);

/// Section 1.3: distributed sorting (machine i must output the i-th
/// order-statistic block).  IC = Theta((n/k) log n) output bits.
GeneralLowerBound sorting_lower_bound(std::size_t n, std::size_t k,
                                      std::uint64_t bandwidth_bits);

/// Section 1.3: MST on a complete graph with random edge weights (each
/// machine outputs ~n/k MST edges, each carrying Theta(log n) bits).
GeneralLowerBound mst_lower_bound(std::size_t n, std::size_t k,
                                  std::uint64_t bandwidth_bits);

/// Upper-bound predictions (algorithm side), for bound-vs-achieved
/// tables: rounds predicted by Theorem 4 / Theorem 5 shapes with unit
/// constants and message size ~ log2(n) bits.
double pagerank_upper_bound_rounds(std::size_t n, std::size_t k,
                                   std::uint64_t bandwidth_bits);
double triangle_upper_bound_rounds(std::size_t n, std::size_t m,
                                   std::size_t k,
                                   std::uint64_t bandwidth_bits);

}  // namespace km
