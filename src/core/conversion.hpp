// Random-edge-partition to random-vertex-partition conversion.
//
// Footnote 3 of the paper: results transfer between the REP and RVP
// models because the input can be re-partitioned in O~(m/k^2 + n/k)
// rounds.  convert_rep_to_rvp() performs that transformation: every
// machine forwards each of its edges to the home machines of both
// endpoints (homes are hash-computable, so no lookups are needed).  The
// result gives each machine exactly the incident-edge knowledge RVP
// grants it.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

struct RepToRvpResult {
  /// local_edges[i] = edges incident to machine i's vertices, as (u,v)
  /// with u owned by machine i (edges with both endpoints owned appear
  /// once per endpoint orientation), sorted.
  std::vector<std::vector<Edge>> local_edges;
  Metrics metrics;
};

RepToRvpResult convert_rep_to_rvp(const Graph& g,
                                  const EdgePartition& edge_partition,
                                  const VertexPartition& vertex_partition,
                                  Engine& engine);

}  // namespace km
