#include "core/info_cost.hpp"

#include <algorithm>

#include "graph/triangle_ref.hpp"
#include "util/mathx.hpp"

namespace km {

std::vector<std::uint64_t> known_paths_per_machine(
    const PageRankLowerBoundGraph& h, const VertexPartition& partition) {
  std::vector<std::uint64_t> counts(partition.k(), 0);
  for (std::size_t i = 0; i < h.q(); ++i) {
    // Machine knows path i if it owns {x_i, t_i} or {u_i, v_i}: owning
    // x_i or t_i reveals the important edge's direction from incident
    // edges of that vertex only when paired with the index-identifying
    // vertex (see proof of Lemma 5: cases (1) x_j & t_j, (2) u_j & v_j).
    const auto hx = partition.home(h.x(i));
    const auto hu = partition.home(h.u(i));
    const auto ht = partition.home(h.t(i));
    const auto hv = partition.home(h.v(i));
    const bool via_xt = (hx == ht);
    const bool via_uv = (hu == hv);
    if (via_xt) ++counts[hx];
    if (via_uv && !(via_xt && hu == hx)) ++counts[hu];  // avoid double count
  }
  return counts;
}

std::vector<std::uint64_t> known_edges_per_machine(
    const Graph& g, const VertexPartition& partition) {
  std::vector<std::uint64_t> counts(partition.k(), 0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u >= v) continue;
      const auto hu = partition.home(u);
      const auto hv = partition.home(v);
      ++counts[hu];
      if (hv != hu) ++counts[hv];
    }
  }
  return counts;
}

std::vector<std::uint64_t> local_triangles_per_machine(
    const Graph& g, const VertexPartition& partition) {
  std::vector<std::uint64_t> counts(partition.k(), 0);
  for_each_triangle(g, [&](const Triangle& t) {
    // A machine sees all three edges iff it owns >= 2 of the corners.
    const auto h0 = partition.home(t[0]);
    const auto h1 = partition.home(t[1]);
    const auto h2 = partition.home(t[2]);
    if (h0 == h1) ++counts[h0];
    if (h1 == h2 && h1 != h0) ++counts[h1];
    if (h0 == h2 && h0 != h1 && !(h1 == h2)) ++counts[h0];
  });
  return counts;
}

double triangle_output_information_bits(double t_out, double t_local) {
  const double undetermined = std::max(0.0, t_out - t_local);
  return min_edges_for_triangles(undetermined);
}

double pagerank_output_information_bits(double outputs, double paths_known) {
  return std::max(0.0, outputs - paths_known);
}

}  // namespace km
