#include "core/pagerank.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/detail/sorted.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {

constexpr std::uint16_t kLightTag = 1;  ///< <count, dest:v>
constexpr std::uint16_t kHeavyTag = 2;  ///< <count, src:u>

struct MachineState {
  std::vector<Vertex> owned;          // sorted (VertexPartition invariant)
  std::vector<std::uint64_t> tokens;  // current tokens per owned vertex
  std::vector<std::uint64_t> visits;  // psi per owned vertex

  std::size_t local_index(Vertex v) const {
    const auto it = std::lower_bound(owned.begin(), owned.end(), v);
    if (it == owned.end() || *it != v) {
      throw std::logic_error("pagerank: message for vertex not hosted here");
    }
    return static_cast<std::size_t>(it - owned.begin());
  }
};

/// Deposits `count` tokens arriving at owned vertex v (visit + hold).
void deposit(MachineState& st, Vertex v, std::uint64_t count) {
  const std::size_t i = st.local_index(v);
  st.tokens[i] += count;
  st.visits[i] += count;
}

/// Spreads `count` tokens of remote vertex u uniformly over the locally
/// hosted out-neighbors of u (Algorithm 1, lines 31-36).
void spread_heavy(MachineState& st, const Digraph& g,
                  const VertexPartition& part, std::size_t self, Rng& rng,
                  Vertex u, std::uint64_t count) {
  std::vector<Vertex> local_outs;
  for (Vertex w : g.out_neighbors(u)) {
    if (part.home(w) == self) local_outs.push_back(w);
  }
  if (local_outs.empty()) {
    throw std::logic_error("pagerank: heavy tokens sent to machine hosting "
                           "no out-neighbor of the source vertex");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    deposit(st, local_outs[rng.below(local_outs.size())], 1);
  }
}

PageRankResult run_pagerank(const Digraph& g, const VertexPartition& part,
                            Engine& engine, const PageRankConfig& config,
                            bool heavy_path_enabled) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument("pagerank: partition does not match graph/k");
  }
  const auto tokens0 = static_cast<std::uint64_t>(
      std::ceil(config.c * std::log(std::max<double>(2.0, static_cast<double>(n)))));
  const std::size_t max_iters =
      config.max_iterations
          ? config.max_iterations
          : static_cast<std::size_t>(
                10.0 *
                std::ceil(std::log(static_cast<double>(n) *
                                   static_cast<double>(tokens0) + 2.0) /
                          config.eps));

  PageRankResult result;
  result.estimates.assign(n, 0.0);
  result.initial_tokens_per_vertex = tokens0;
  std::vector<std::size_t> iterations_by_machine(k, 0);

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    MachineState st;
    st.owned = part.owned(self);
    st.tokens.assign(st.owned.size(), tokens0);
    st.visits.assign(st.owned.size(), tokens0);  // creation counts as visit

    std::size_t iteration = 0;
    while (iteration < max_iters) {
      ++iteration;
      // Terminate each token independently with probability eps (line 5).
      for (auto& t : st.tokens) {
        t -= ctx.rng().binomial(t, config.eps);
      }

      // Tokens deposited locally this iteration must only become active
      // in the next one; stage them separately.
      std::vector<std::pair<Vertex, std::uint64_t>> local_light;
      std::vector<std::pair<Vertex, std::uint64_t>> local_heavy;

      // alpha: per-destination-vertex counts for light vertices (line 8).
      std::unordered_map<Vertex, std::uint64_t> alpha;
      for (std::size_t i = 0; i < st.owned.size(); ++i) {
        std::uint64_t t = st.tokens[i];
        if (t == 0) continue;
        const Vertex u = st.owned[i];
        const auto outs = g.out_neighbors(u);
        if (outs.empty()) {
          st.tokens[i] = 0;  // dangling vertex: walks terminate here
          continue;
        }
        const bool light = !heavy_path_enabled || t < k;
        if (light) {
          // Lines 9-16: route each token to a uniform out-neighbor,
          // aggregated per destination vertex.
          for (; t > 0; --t) {
            const Vertex v = outs[ctx.rng().below(outs.size())];
            ++alpha[v];
          }
        } else {
          // Lines 18-27: heavy vertex; aggregate per destination machine.
          // Sampling a uniform out-neighbor and binning by its home
          // machine realizes exactly the (n_{1,u}/d_u, ..., n_{k,u}/d_u)
          // distribution of line 23.
          std::unordered_map<std::uint32_t, std::uint64_t> beta;
          for (; t > 0; --t) {
            const Vertex v = outs[ctx.rng().below(outs.size())];
            ++beta[part.home(v)];
          }
          for (const std::uint32_t machine : detail::sorted_keys(beta)) {
            const std::uint64_t count = beta.at(machine);
            if (machine == self) {
              local_heavy.emplace_back(u, count);
            } else {
              Writer w;
              w.put_varint(u);
              w.put_varint(count);
              ctx.send(machine, kHeavyTag, w);
            }
          }
        }
        st.tokens[i] = 0;
      }
      for (const Vertex v : detail::sorted_keys(alpha)) {
        const std::uint64_t count = alpha.at(v);
        const std::uint32_t machine = part.home(v);
        if (machine == self) {
          local_light.emplace_back(v, count);
        } else {
          Writer w;
          w.put_varint(v);
          w.put_varint(count);
          ctx.send(machine, kLightTag, w);
        }
      }

      // Superstep boundary: deliver all token messages.
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        if (msg.tag == kLightTag) {
          const auto v = static_cast<Vertex>(r.get_varint());
          deposit(st, v, r.get_varint());
        } else if (msg.tag == kHeavyTag) {
          const auto u = static_cast<Vertex>(r.get_varint());
          spread_heavy(st, g, part, self, ctx.rng(), u, r.get_varint());
        } else {
          throw std::logic_error("pagerank: unexpected message tag");
        }
      }
      for (const auto& [v, count] : local_light) deposit(st, v, count);
      for (const auto& [u, count] : local_heavy) {
        spread_heavy(st, g, part, self, ctx.rng(), u, count);
      }

      // Global termination check (costs one superstep of k-1 small
      // messages per machine), amortized over several iterations: an
      // iteration with no tokens anywhere sends no messages and is free.
      const std::size_t interval =
          std::max<std::size_t>(1, config.termination_check_interval);
      if (iteration % interval == 0 || iteration == max_iters) {
        std::uint64_t outstanding = 0;
        for (auto t : st.tokens) outstanding += t;
        if (ctx.all_reduce_sum(outstanding) == 0) break;
      }
    }

    // Publish estimates: owned index ranges are disjoint across machines.
    const double denom =
        static_cast<double>(n) * static_cast<double>(tokens0);
    for (std::size_t i = 0; i < st.owned.size(); ++i) {
      result.estimates[st.owned[i]] =
          config.eps * static_cast<double>(st.visits[i]) / denom;
    }
    iterations_by_machine[self] = iteration;
  };

  result.metrics = engine.run(program);
  result.iterations = iterations_by_machine.empty() ? 0 : iterations_by_machine[0];
  return result;
}

}  // namespace

PageRankResult distributed_pagerank(const Digraph& g,
                                    const VertexPartition& partition,
                                    Engine& engine,
                                    const PageRankConfig& config) {
  return run_pagerank(g, partition, engine, config, true);
}

PageRankResult distributed_pagerank_baseline(const Digraph& g,
                                             const VertexPartition& partition,
                                             Engine& engine,
                                             const PageRankConfig& config) {
  return run_pagerank(g, partition, engine, config, false);
}

}  // namespace km
