// Empirical information-cost accounting: the measurable counterparts of
// the quantities in the lower-bound proofs (Sections 2.3 and 2.4).
//
// The General Lower Bound Theorem's premises are concentration statements
// about what machines know *initially* under the random vertex partition.
// This module measures those quantities on concrete sampled inputs so the
// benches/tests can verify:
//   - Lemma 5:  every machine initially knows O(n log n / k^2) weakly
//     connected X-V paths of the gadget graph H;
//   - Lemma 10: every machine initially knows O(n^2 log n / k) edges of
//     G(n,1/2);
//   - Lemma 11: t3 (locally visible triangles) is O~(n^3/k^{3/2}), so
//     almost all of the t/k triangles a machine outputs are undetermined
//     and cost Omega((t/k)^{2/3}) received edge-bits (Rivin bound);
//   - the engine's recv_bits_per_machine is lower-bounded by the IC the
//     theorem predicts, closing the loop between theory and simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/lb_graphs.hpp"
#include "sim/partition.hpp"

namespace km {

/// Lemma 5: for each machine, the number of indices i whose weakly
/// connected path (x_i, u_i, t_i, v_i) is revealed by the initial
/// partition — i.e. the machine owns {x_i and t_i} or {u_i and v_i}
/// (either pair exposes the edge direction *and* the matching v_i).
std::vector<std::uint64_t> known_paths_per_machine(
    const PageRankLowerBoundGraph& h, const VertexPartition& partition);

/// Lemma 10: edges initially known per machine (an edge is known to a
/// machine owning at least one endpoint).
std::vector<std::uint64_t> known_edges_per_machine(
    const Graph& g, const VertexPartition& partition);

/// Lemma 11's t3: triangles fully visible to a machine initially (it
/// knows all three edges, i.e. owns at least two of the corners).
std::vector<std::uint64_t> local_triangles_per_machine(
    const Graph& g, const VertexPartition& partition);

/// Lemma 11's information cost for a machine that outputs `t_out`
/// triangles of which `t_local` were locally visible:
/// IC = min_edges_for_triangles(t_out - t_local) bits (0 if negative).
double triangle_output_information_bits(double t_out, double t_local);

/// PageRank surprisal accounting (Lemmas 7-8): with q = (n-1)/4 important
/// edges, a machine that initially knows `paths_known` of them and
/// outputs `outputs` PageRank values of V has surprisal drop
/// >= outputs - paths_known bits.
double pagerank_output_information_bits(double outputs, double paths_known);

}  // namespace km
