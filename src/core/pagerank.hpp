// Distributed PageRank approximation in the k-machine model.
//
// distributed_pagerank() implements Algorithm 1 of the paper (Section
// 3.1), the O~(n/k^2)-round algorithm:
//   * every vertex starts ceil(c * ln n) random-walk tokens;
//   * each iteration every token terminates with probability eps and
//     otherwise moves to a uniformly random out-neighbor;
//   * *light* vertices (fewer than k tokens) aggregate token counts per
//     destination vertex and send <count, dest:v> messages to the
//     destination's home machine (a random machine under RVP, so direct
//     routing satisfies Lemma 13);
//   * *heavy* vertices (at least k tokens) aggregate per destination
//     *machine*, sampling machines proportionally to the number of
//     neighbors hosted there, and send at most k-1 <count, src:u>
//     messages; the receiving machine spreads the tokens uniformly over
//     the locally hosted out-neighbors of u (lines 18-27 / 31-36).
// The PageRank estimate of v is eps * psi_v / (n * ceil(c ln n)) where
// psi_v counts the tokens that visited v (Theorem 4; [20]).
//
// distributed_pagerank_baseline() is the Conversion-Theorem-style
// baseline bounded by O~(n/k) rounds [33]: identical token process but
// *every* vertex uses the per-destination-vertex path, so a machine
// hosting a high-degree vertex must emit up to deg(u) distinct messages
// per iteration (the star-graph hot spot described in Section 3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

struct PageRankConfig {
  double eps = 0.2;  ///< reset probability (paper's epsilon)
  double c = 8.0;    ///< token multiplier; tokens0 = ceil(c * ln n)
  /// Safety cap on iterations; 0 means 10 * ceil(ln(n * tokens0) / eps),
  /// far beyond the whp termination point of [20].
  std::size_t max_iterations = 0;
  /// Global termination (all tokens dead) is detected with an
  /// all-reduce every this many iterations.  Checking less often saves
  /// one collective superstep per iteration at the cost of at most
  /// interval-1 empty (free) trailing iterations.
  std::size_t termination_check_interval = 4;
};

struct PageRankResult {
  std::vector<double> estimates;  ///< per-vertex PageRank estimate
  std::size_t iterations = 0;     ///< token-walk iterations executed
  std::uint64_t initial_tokens_per_vertex = 0;
  Metrics metrics;
};

/// Algorithm 1 (light/heavy vertex split): O~(n/k^2) rounds whp.
PageRankResult distributed_pagerank(const Digraph& g,
                                    const VertexPartition& partition,
                                    Engine& engine,
                                    const PageRankConfig& config = {});

/// Naive token forwarding (no heavy-vertex machinery): O~(n/k) rounds
/// worst case; the baseline the paper improves on.
PageRankResult distributed_pagerank_baseline(const Digraph& g,
                                             const VertexPartition& partition,
                                             Engine& engine,
                                             const PageRankConfig& config = {});

}  // namespace km
