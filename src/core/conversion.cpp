#include "core/conversion.hpp"

#include <algorithm>
#include <stdexcept>

namespace km {

namespace {
constexpr std::uint16_t kEdgeTag = 1;
}

RepToRvpResult convert_rep_to_rvp(const Graph& g,
                                  const EdgePartition& edge_partition,
                                  const VertexPartition& vertex_partition,
                                  Engine& engine) {
  const std::size_t k = engine.k();
  if (edge_partition.k() != k || vertex_partition.k() != k) {
    throw std::invalid_argument("convert_rep_to_rvp: k mismatch");
  }
  const auto edges = g.edge_list();
  if (edge_partition.m() != edges.size()) {
    throw std::invalid_argument("convert_rep_to_rvp: edge count mismatch");
  }

  RepToRvpResult result;
  result.local_edges.assign(k, {});

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    auto& local = result.local_edges[self];

    // Send every owned edge to the home machines of both endpoints.
    for (const std::uint32_t e : edge_partition.owned(self)) {
      const auto [u, v] = edges[e];
      const std::uint32_t hu = vertex_partition.home(u);
      const std::uint32_t hv = vertex_partition.home(v);
      // Orientation (owned endpoint first) is fixed by the receiver.
      if (hu == self) {
        local.emplace_back(u, v);
      } else {
        Writer w;
        w.put_varint(u);
        w.put_varint(v);
        ctx.send(hu, kEdgeTag, w);
      }
      if (hv == self) {
        local.emplace_back(v, u);
      } else if (hv != hu) {
        Writer w;
        w.put_varint(v);
        w.put_varint(u);
        ctx.send(hv, kEdgeTag, w);
      } else {
        // Both endpoints share a home: one message carries both roles.
        // (hu == hv != self; the receiver will record both orientations.)
      }
    }

    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      const auto a = static_cast<Vertex>(r.get_varint());
      const auto b = static_cast<Vertex>(r.get_varint());
      // a is an endpoint owned here (sender addressed us as home(a)).
      local.emplace_back(a, b);
      if (vertex_partition.home(b) == self) local.emplace_back(b, a);
    }
    std::sort(local.begin(), local.end());
    local.erase(std::unique(local.begin(), local.end()), local.end());
  };

  result.metrics = engine.run(program);
  return result;
}

}  // namespace km
