#include "core/sorting.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {
constexpr std::uint16_t kSampleTag = 1;
constexpr std::uint16_t kSplitterTag = 2;
constexpr std::uint16_t kBucketTag = 3;
constexpr std::uint16_t kRebalanceTag = 4;

void put_keys(Writer& w, const std::vector<std::uint64_t>& keys) {
  // Delta-encoded varints over the sorted sequence: keeps per-key cost
  // near the information-theoretic O(log n) bits.
  w.put_varint(keys.size());
  std::uint64_t prev = 0;
  for (std::uint64_t key : keys) {
    w.put_varint(key - prev);
    prev = key;
  }
}

std::vector<std::uint64_t> get_keys(Reader& r) {
  const std::uint64_t count = r.get_varint();
  std::vector<std::uint64_t> keys(count);
  std::uint64_t prev = 0;
  for (auto& key : keys) {
    prev += r.get_varint();
    key = prev;
  }
  return keys;
}
}  // namespace

SortResult distributed_sample_sort(const std::vector<std::uint64_t>& keys,
                                   Engine& engine, const SortConfig& config) {
  const std::size_t n = keys.size();
  const std::size_t k = engine.k();

  SortResult result;
  result.blocks.assign(k, {});
  result.offsets.assign(k + 1, 0);
  for (std::size_t i = 0; i <= k; ++i) result.offsets[i] = i * n / k;

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();

    // Random initial placement (the model's random input distribution).
    std::vector<std::uint64_t> mine;
    for (std::size_t i = 0; i < n; ++i) {
      if (hash_u64(config.placement_seed ^ hash_u64(i)) % k == self) {
        mine.push_back(keys[i]);
      }
    }
    std::sort(mine.begin(), mine.end());

    // ---- Phase 1: sample -> coordinator (machine 0). ----
    const double log2n =
        std::max(1.0, std::log2(static_cast<double>(std::max<std::size_t>(n, 2))));
    const auto samples_wanted = static_cast<std::size_t>(
        config.sample_factor * static_cast<double>(k) * log2n /
        static_cast<double>(k));  // per machine
    std::vector<std::uint64_t> sample;
    for (std::size_t i = 0; i < std::min(samples_wanted, mine.size()); ++i) {
      sample.push_back(mine[ctx.rng().below(mine.size())]);
    }
    std::sort(sample.begin(), sample.end());
    if (self != 0) {
      Writer w;
      put_keys(w, sample);
      ctx.send(0, kSampleTag, w);
    }
    std::vector<std::uint64_t> pooled = sample;
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      auto got = get_keys(r);
      pooled.insert(pooled.end(), got.begin(), got.end());
    }

    // ---- Phase 2: coordinator broadcasts k-1 splitters. ----
    std::vector<std::uint64_t> splitters;
    if (self == 0) {
      std::sort(pooled.begin(), pooled.end());
      for (std::size_t i = 1; i < k; ++i) {
        const std::size_t pos =
            pooled.empty() ? 0 : i * pooled.size() / k;
        splitters.push_back(pooled.empty() ? 0
                                           : pooled[std::min(pos, pooled.size() - 1)]);
      }
      Writer w;
      put_keys(w, splitters);
      ctx.broadcast(kSplitterTag, w);
      ctx.exchange();
    } else {
      for (const Message& msg : ctx.exchange()) {
        if (msg.tag == kSplitterTag) {
          Reader r(msg.payload);
          splitters = get_keys(r);
        }
      }
    }

    // ---- Phase 3: route each bucket to its machine. ----
    // Bucket b = keys in [splitters[b-1], splitters[b]).
    std::vector<std::vector<std::uint64_t>> buckets(k);
    for (std::uint64_t key : mine) {
      const std::size_t b = static_cast<std::size_t>(
          std::upper_bound(splitters.begin(), splitters.end(), key) -
          splitters.begin());
      buckets[b].push_back(key);
    }
    std::vector<std::uint64_t> held = std::move(buckets[self]);
    for (std::size_t dst = 0; dst < k; ++dst) {
      if (dst == self || buckets[dst].empty()) continue;
      Writer w;
      put_keys(w, buckets[dst]);
      ctx.send(dst, kBucketTag, w);
    }
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      auto got = get_keys(r);
      held.insert(held.end(), got.begin(), got.end());
    }
    std::sort(held.begin(), held.end());

    // ---- Phase 4: exact rebalance to order-statistic blocks. ----
    // Everyone learns every bucket size, computes the global rank range
    // it currently holds, and forwards each key to the machine owning
    // that rank.
    const auto counts = ctx.all_gather(held.size());
    std::size_t my_rank0 = 0;
    for (std::size_t i = 0; i < self; ++i) my_rank0 += counts[i];

    auto owner_of_rank = [&](std::size_t rank) {
      // Machine i owns ranks [i*n/k, (i+1)*n/k).
      std::size_t lo = 0, hi = k - 1;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (rank < (mid + 1) * n / k) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return lo;
    };

    std::vector<std::vector<std::uint64_t>> outgoing(k);
    for (std::size_t i = 0; i < held.size(); ++i) {
      outgoing[owner_of_rank(my_rank0 + i)].push_back(held[i]);
    }
    std::vector<std::uint64_t> final_block = std::move(outgoing[self]);

    // Rebalance destinations are rank-adjacent machines, an adversarially
    // skewed pattern that would serialize on single links.  Valiant-style
    // two-hop routing in small chunks (Lemma 13) spreads both hops over
    // all k links: each chunk travels via a uniformly random intermediate.
    constexpr std::size_t kChunkKeys = 64;
    std::vector<std::pair<std::size_t, std::vector<std::uint64_t>>> held_fwd;
    auto encode_chunk = [](std::size_t dst,
                           std::span<const std::uint64_t> chunk) {
      Writer w;
      w.put_varint(dst);
      put_keys(w, std::vector<std::uint64_t>(chunk.begin(), chunk.end()));
      return w.take();
    };
    for (std::size_t dst = 0; dst < k; ++dst) {
      if (dst == self) continue;
      const auto& keys_out = outgoing[dst];
      for (std::size_t pos = 0; pos < keys_out.size(); pos += kChunkKeys) {
        const std::span<const std::uint64_t> chunk(
            keys_out.data() + pos,
            std::min(kChunkKeys, keys_out.size() - pos));
        const std::size_t via = ctx.rng().below(k);
        if (via == self) {
          held_fwd.emplace_back(
              dst, std::vector<std::uint64_t>(chunk.begin(), chunk.end()));
        } else {
          ctx.send(via, kRebalanceTag, encode_chunk(dst, chunk));
        }
      }
    }
    // Hop 2: forward chunks that stopped here; keep what is ours.
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      const auto dst = static_cast<std::size_t>(r.get_varint());
      auto got = get_keys(r);
      if (dst == self) {
        final_block.insert(final_block.end(), got.begin(), got.end());
      } else {
        ctx.send(dst, kRebalanceTag, encode_chunk(dst, got));
      }
    }
    for (const auto& [dst, chunk] : held_fwd) {
      if (dst == self) {
        final_block.insert(final_block.end(), chunk.begin(), chunk.end());
      } else {
        ctx.send(dst, kRebalanceTag, encode_chunk(dst, chunk));
      }
    }
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      r.get_varint();  // dst == self
      auto got = get_keys(r);
      final_block.insert(final_block.end(), got.begin(), got.end());
    }
    std::sort(final_block.begin(), final_block.end());
    result.blocks[self] = std::move(final_block);
  };

  result.metrics = engine.run(program);
  return result;
}

}  // namespace km
