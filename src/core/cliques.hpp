// Distributed 4-clique enumeration: the paper's subgraph-enumeration
// generalization (Section 1.2: "Our techniques and results can be
// generalized to the enumeration of other small subgraphs such as cycles
// and cliques").
//
// The TriPartition scheme generalizes from triples to s-tuples: color
// vertices with c = floor(k^{1/s}) colors, assign each sorted color
// s-multiset to a machine, and replicate every edge to the machines
// whose multiset contains both endpoint colors.  For s = 4 an edge is
// replicated to C(c+1, 2) ~ k^{1/2} machines, giving total traffic
// m * k^{1/2} and round complexity O~(m/k^{3/2}) — the analogue of
// Theorem 5's O~(m/k^{5/3}).  Each 4-clique's color multiset identifies
// the unique machine that outputs it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

/// A 4-clique as its vertex IDs in increasing order.
using Clique4 = std::array<Vertex, 4>;

// ---- Sequential reference ----

/// Number of 4-cliques (K4 subgraphs) in g.
std::uint64_t count_four_cliques(const Graph& g);

/// All 4-cliques, sorted lexicographically.
std::vector<Clique4> enumerate_four_cliques(const Graph& g);

// ---- Distributed algorithm ----

struct CliqueConfig {
  std::uint64_t color_seed = 0xC11C0EULL;
  double degree_threshold_factor = 2.0;  ///< same designation rule
  bool record_cliques = true;
};

struct CliqueResult {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> per_machine_counts;
  std::vector<std::vector<Clique4>> per_machine_cliques;
  Metrics metrics;

  std::vector<Clique4> merged_sorted() const;
};

/// O~(m/k^{3/2})-round 4-clique enumeration.
CliqueResult distributed_four_cliques(const Graph& g,
                                      const VertexPartition& partition,
                                      Engine& engine,
                                      const CliqueConfig& config = {});

/// Colors used for k machines: floor(k^{1/4}).
std::size_t clique_color_count(std::size_t k) noexcept;

/// Machines hosting a color quadruplet: C(c+3, 4).
std::size_t clique_worker_count(std::size_t k) noexcept;

}  // namespace km
