#include "core/cliques.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/detail/sorted.hpp"
#include "util/hash.hpp"

namespace km {

namespace {

constexpr std::uint16_t kHighDegreeTag = 1;
constexpr std::uint16_t kEdgeToProxyTag = 2;
constexpr std::uint16_t kEdgeToWorkerTag = 3;

/// Sorted color quadruplets {a<=b<=c<=d} in lex order; quadruplet i is
/// hosted by machine i.
struct QuadTable {
  std::size_t colors = 0;
  std::vector<std::array<std::uint8_t, 4>> quads;
  std::vector<std::int32_t> index_of;  // packed sorted quad -> machine

  explicit QuadTable(std::size_t c) : colors(c) {
    index_of.assign(c * c * c * c, -1);
    for (std::size_t a = 0; a < c; ++a) {
      for (std::size_t b = a; b < c; ++b) {
        for (std::size_t d = b; d < c; ++d) {
          for (std::size_t e = d; e < c; ++e) {
            index_of[pack(a, b, d, e)] =
                static_cast<std::int32_t>(quads.size());
            quads.push_back({static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b),
                             static_cast<std::uint8_t>(d),
                             static_cast<std::uint8_t>(e)});
          }
        }
      }
    }
  }

  std::size_t pack(std::size_t a, std::size_t b, std::size_t d,
                   std::size_t e) const {
    return ((a * colors + b) * colors + d) * colors + e;
  }

  std::size_t machine_of(std::array<std::size_t, 4> m) const {
    std::sort(m.begin(), m.end());
    return static_cast<std::size_t>(index_of[pack(m[0], m[1], m[2], m[3])]);
  }
};

/// Sorted-adjacency subgraph over received edges.
struct LocalEdges {
  std::unordered_map<Vertex, std::vector<Vertex>> adj;

  void add(Vertex u, Vertex v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  void finalize() {
    detail::for_sorted(adj, [](Vertex, std::vector<Vertex>& ns) {
      std::sort(ns.begin(), ns.end());
      ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
    });
  }
  bool has_edge(Vertex u, Vertex v) const {
    const auto it = adj.find(u);
    return it != adj.end() &&
           std::binary_search(it->second.begin(), it->second.end(), v);
  }
};

/// Enumerates each 4-clique once: base edge (a,b) with a<b the two
/// smallest vertices, then pairs (x<y) of common neighbors >b that are
/// themselves adjacent.
template <typename Accept, typename Out>
void enumerate_local_k4(const LocalEdges& edges, Accept accept, Out out) {
  std::vector<Vertex> common;
  for (const auto& [a, ns] : edges.adj) {
    for (Vertex b : ns) {
      if (b <= a) continue;
      const auto itb = edges.adj.find(b);
      if (itb == edges.adj.end()) continue;
      common.clear();
      const auto& na = ns;
      const auto& nb = itb->second;
      auto ia = std::upper_bound(na.begin(), na.end(), b);
      auto ib = std::upper_bound(nb.begin(), nb.end(), b);
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          common.push_back(*ia);
          ++ia;
          ++ib;
        }
      }
      for (std::size_t i = 0; i < common.size(); ++i) {
        for (std::size_t j = i + 1; j < common.size(); ++j) {
          if (edges.has_edge(common[i], common[j]) &&
              accept(a, b, common[i], common[j])) {
            out(Clique4{a, b, common[i], common[j]});
          }
        }
      }
    }
  }
}

/// Same designation rule as triangles.cpp: the low-degree side of a
/// high/low edge designates; ties break by edge hash.
bool designates(Vertex mine, Vertex other, const std::vector<bool>& high,
                std::uint64_t seed) {
  const bool mine_high = high[mine];
  const bool other_high = high[other];
  if (other_high && !mine_high) return true;
  if (mine_high && !other_high) return false;
  const Vertex chosen = (hash_edge(seed, mine, other) & 1)
                            ? std::min(mine, other)
                            : std::max(mine, other);
  return chosen == mine;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sequential reference
// ---------------------------------------------------------------------------

std::vector<Clique4> enumerate_four_cliques(const Graph& g) {
  LocalEdges edges;
  for (const auto& [u, v] : g.edge_list()) edges.add(u, v);
  edges.finalize();
  std::vector<Clique4> out;
  enumerate_local_k4(
      edges, [](Vertex, Vertex, Vertex, Vertex) { return true; },
      [&](const Clique4& c) { out.push_back(c); });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t count_four_cliques(const Graph& g) {
  LocalEdges edges;
  for (const auto& [u, v] : g.edge_list()) edges.add(u, v);
  edges.finalize();
  std::uint64_t count = 0;
  enumerate_local_k4(
      edges, [](Vertex, Vertex, Vertex, Vertex) { return true; },
      [&](const Clique4&) { ++count; });
  return count;
}

// ---------------------------------------------------------------------------
// Distributed algorithm
// ---------------------------------------------------------------------------

std::vector<Clique4> CliqueResult::merged_sorted() const {
  std::vector<Clique4> all;
  for (const auto& cs : per_machine_cliques) {
    all.insert(all.end(), cs.begin(), cs.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::size_t clique_color_count(std::size_t k) noexcept {
  std::size_t c = 1;
  while ((c + 1) * (c + 1) * (c + 1) * (c + 1) <= k) ++c;
  return c;
}

std::size_t clique_worker_count(std::size_t k) noexcept {
  const std::size_t c = clique_color_count(k);
  return c * (c + 1) * (c + 2) * (c + 3) / 24;
}

CliqueResult distributed_four_cliques(const Graph& g,
                                      const VertexPartition& part,
                                      Engine& engine,
                                      const CliqueConfig& config) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument("cliques: partition does not match graph/k");
  }
  const std::size_t c = clique_color_count(k);
  const QuadTable table(c);
  const double log2n =
      std::max(1.0, std::log2(std::max<double>(2.0, static_cast<double>(n))));
  const auto threshold = static_cast<std::size_t>(
      config.degree_threshold_factor * static_cast<double>(k) * log2n);

  auto color_of = [&](Vertex v) -> std::size_t {
    return hash_vertex(config.color_seed, v) % c;
  };

  CliqueResult result;
  result.per_machine_counts.assign(k, 0);
  result.per_machine_cliques.assign(k, {});

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = part.owned(self);

    // Phase 1: high-degree announcements (as in triangles.cpp).
    {
      Writer w;
      std::uint64_t count = 0;
      Writer ids;
      for (Vertex v : owned) {
        if (g.degree(v) >= threshold) {
          ids.put_varint(v);
          ++count;
        }
      }
      w.put_varint(count);
      w.put_bytes(ids.view());
      ctx.broadcast(kHighDegreeTag, w);
    }
    std::vector<bool> high(n, false);
    for (Vertex v : owned) {
      if (g.degree(v) >= threshold) high[v] = true;
    }
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      const std::uint64_t count = r.get_varint();
      for (std::uint64_t i = 0; i < count; ++i) {
        high[static_cast<Vertex>(r.get_varint())] = true;
      }
    }

    // Phase 2: designation -> random edge proxies.
    std::vector<Edge> proxy_edges;
    for (Vertex v : owned) {
      for (Vertex u : g.neighbors(v)) {
        if (part.home(u) == self && u < v) continue;
        const bool both_local = part.home(u) == self;
        if (!both_local && !designates(v, u, high, config.color_seed)) {
          continue;
        }
        const auto [a, b] = std::minmax(u, v);
        const std::size_t proxy = ctx.rng().below(k);
        if (proxy == self) {
          proxy_edges.emplace_back(a, b);
        } else {
          Writer w;
          w.put_varint(a);
          w.put_varint(b);
          ctx.send(proxy, kEdgeToProxyTag, w);
        }
      }
    }

    // Phase 3: proxies fan each edge out to the C(c+1,2) quadruplet
    // machines whose multiset contains both endpoint colors.
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      proxy_edges.emplace_back(static_cast<Vertex>(r.get_varint()),
                               static_cast<Vertex>(r.get_varint()));
    }
    std::vector<Edge> worker_edges;
    for (const auto& [a, b] : proxy_edges) {
      const std::size_t x = color_of(a);
      const std::size_t y = color_of(b);
      std::unordered_set<std::size_t> targets;
      for (std::size_t z = 0; z < c; ++z) {
        for (std::size_t w2 = z; w2 < c; ++w2) {
          targets.insert(table.machine_of({x, y, z, w2}));
        }
      }
      for (const std::size_t target : detail::sorted_keys(targets)) {
        if (target == self) {
          worker_edges.emplace_back(a, b);
        } else {
          Writer w;
          w.put_varint(a);
          w.put_varint(b);
          ctx.send(target, kEdgeToWorkerTag, w);
        }
      }
    }

    // Phase 4: local enumeration filtered by color multiset.
    for (const Message& msg : ctx.exchange()) {
      Reader r(msg.payload);
      worker_edges.emplace_back(static_cast<Vertex>(r.get_varint()),
                                static_cast<Vertex>(r.get_varint()));
    }
    if (self >= table.quads.size()) return;  // idle worker
    const auto quad = table.quads[self];

    LocalEdges subgraph;
    for (const auto& [a, b] : worker_edges) subgraph.add(a, b);
    subgraph.finalize();

    auto accept = [&](Vertex a, Vertex b, Vertex x, Vertex y) {
      std::array<std::uint8_t, 4> cols{
          static_cast<std::uint8_t>(color_of(a)),
          static_cast<std::uint8_t>(color_of(b)),
          static_cast<std::uint8_t>(color_of(x)),
          static_cast<std::uint8_t>(color_of(y))};
      std::sort(cols.begin(), cols.end());
      return cols == quad;
    };
    enumerate_local_k4(subgraph, accept, [&](const Clique4& clique) {
      ++result.per_machine_counts[self];
      if (config.record_cliques) {
        result.per_machine_cliques[self].push_back(clique);
      }
    });
  };

  result.metrics = engine.run(program);
  for (auto count : result.per_machine_counts) result.total += count;
  return result;
}

}  // namespace km
