#include "core/mst.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/detail/sorted.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace km {

namespace {

constexpr std::uint16_t kFragPushTag = 1;   // (vertex, fragment)
constexpr std::uint16_t kCandidateTag = 2;  // (frag, u, v, w, other_frag)
constexpr std::uint16_t kMutualTag = 3;     // (to_frag, from_frag, u, v, w)
constexpr std::uint16_t kJumpQueryTag = 4;  // (queried_frag, asking_frag)
constexpr std::uint16_t kJumpReplyTag = 5;  // (asking_frag, new_ptr)
constexpr std::uint16_t kRootQueryTag = 6;  // (frag)
constexpr std::uint16_t kRootReplyTag = 7;  // (frag, root)

struct Candidate {
  bool valid = false;
  WeightedEdge edge;
  std::uint32_t other_frag = 0;

  void offer(const WeightedEdge& e, std::uint32_t other) {
    if (!valid || mst_edge_less(e, edge)) {
      valid = true;
      edge = e;
      other_frag = other;
    }
  }
};

/// Per-fragment state a proxy machine tracks within one phase.
struct FragState {
  Candidate moe;
  std::uint32_t ptr = 0;   // pointer-jumping cursor towards the root
  bool record = false;     // whether this proxy emits the MOE edge
};

void put_edge(Writer& w, const WeightedEdge& e) {
  w.put_varint(e.u);
  w.put_varint(e.v);
  w.put_varint(e.weight);
}

WeightedEdge get_edge(Reader& r) {
  WeightedEdge e;
  e.u = static_cast<Vertex>(r.get_varint());
  e.v = static_cast<Vertex>(r.get_varint());
  e.weight = r.get_varint();
  return e;
}

DistributedMstResult run_boruvka(const WeightedGraph& g,
                                 const VertexPartition& part, Engine& engine,
                                 std::uint64_t proxy_seed) {
  const std::size_t n = g.num_vertices();
  const std::size_t k = engine.k();
  if (part.n() != n || part.k() != k) {
    throw std::invalid_argument("mst: partition does not match graph/k");
  }
  const std::size_t max_phases = ceil_log2(std::max<std::size_t>(n, 2)) + 1;
  const std::size_t jump_iters = ceil_log2(std::max<std::size_t>(n, 2)) + 1;

  DistributedMstResult result;
  result.fragment_of.assign(n, 0);
  std::vector<std::vector<WeightedEdge>> emitted(k);
  std::vector<std::size_t> phases_by_machine(k, 0);

  const auto proxy_of = [&](std::uint32_t frag) {
    return static_cast<std::size_t>(hash_vertex(proxy_seed, frag) % k);
  };

  const Program program = [&](MachineContext& ctx) {
    const std::size_t self = ctx.id();
    const auto& owned = part.owned(self);
    // frag[i] = fragment (root vertex id) of owned[i].
    std::vector<std::uint32_t> frag(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) frag[i] = owned[i];
    std::size_t phase = 0;
    while (phase < max_phases) {
      ++phase;

      // ---- Step A: push fragment labels to neighbors' machines. ----
      std::unordered_map<Vertex, std::uint32_t> nbr_frag;
      {
        std::vector<bool> target(k);
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const Vertex v = owned[i];
          std::fill(target.begin(), target.end(), false);
          for (Vertex u : g.neighbors(v)) target[part.home(u)] = true;
          Writer w;
          w.put_varint(v);
          w.put_varint(frag[i]);
          const auto payload = w.take();
          for (std::size_t m = 0; m < k; ++m) {
            if (!target[m]) continue;
            if (m == self) {
              nbr_frag[v] = frag[i];
            } else {
              ctx.send(m, kFragPushTag, std::vector<std::byte>(payload));
            }
          }
        }
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto v = static_cast<Vertex>(r.get_varint());
        nbr_frag[v] = static_cast<std::uint32_t>(r.get_varint());
      }

      // ---- Step B: local MOE per fragment -> fragment proxies. ----
      std::unordered_map<std::uint32_t, Candidate> local_best;
      for (std::size_t i = 0; i < owned.size(); ++i) {
        const Vertex v = owned[i];
        const auto ns = g.neighbors(v);
        const auto ws = g.weights(v);
        for (std::size_t j = 0; j < ns.size(); ++j) {
          const auto it = nbr_frag.find(ns[j]);
          if (it == nbr_frag.end()) {
            throw std::logic_error("mst: missing neighbor fragment");
          }
          if (it->second == frag[i]) continue;  // internal edge
          local_best[frag[i]].offer(
              WeightedEdge{std::min(v, ns[j]), std::max(v, ns[j]), ws[j]},
              it->second);
        }
      }
      std::unordered_map<std::uint32_t, FragState> proxy_state;
      for (const std::uint32_t f : detail::sorted_keys(local_best)) {
        const Candidate& cand = local_best.at(f);
        const std::size_t proxy = proxy_of(f);
        if (proxy == self) {
          auto& st = proxy_state[f];
          st.moe.offer(cand.edge, cand.other_frag);
        } else {
          Writer w;
          w.put_varint(f);
          put_edge(w, cand.edge);
          w.put_varint(cand.other_frag);
          ctx.send(proxy, kCandidateTag, w);
        }
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto f = static_cast<std::uint32_t>(r.get_varint());
        const WeightedEdge e = get_edge(r);
        const auto other = static_cast<std::uint32_t>(r.get_varint());
        proxy_state[f].moe.offer(e, other);
      }

      // ---- Step C: break mutual-MOE 2-cycles, pick roots. ----
      // Every tracked fragment tells its parent's proxy about its MOE;
      // the smaller fragment of a mutual pair becomes the root and emits
      // the edge (dedup), the larger one drops its copy.
      // Each tracked fragment f points at its MOE partner; the merge
      // graph is a functional graph whose only cycles are the mutual-MOE
      // 2-cycles (the MOE is unique under mst_edge_less).  The larger
      // half of each mutual pair drops its duplicate edge copy here; the
      // pair minimum becomes the root via the min rule during pointer
      // jumping below.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> drop_if_mutual;
      for (const std::uint32_t f : detail::sorted_keys(proxy_state)) {
        FragState& st = proxy_state.at(f);
        st.ptr = st.moe.other_frag;
        st.record = true;
        const std::size_t target = proxy_of(st.moe.other_frag);
        if (target == self) {
          drop_if_mutual.emplace_back(st.moe.other_frag, f);
          continue;
        }
        Writer w;
        w.put_varint(st.moe.other_frag);
        w.put_varint(f);
        put_edge(w, st.moe.edge);
        ctx.send(target, kMutualTag, w);
      }
      auto apply_mutual = [&](std::uint32_t gf, std::uint32_t from,
                              const WeightedEdge& e) {
        const auto it = proxy_state.find(gf);
        if (it == proxy_state.end()) return;  // finished fragment
        auto& st = it->second;
        if (st.moe.valid && st.moe.other_frag == from && st.moe.edge == e &&
            gf > from) {
          st.record = false;  // duplicate (larger) half of a mutual pair
        }
      };
      for (const auto& [gf, from] : drop_if_mutual) {
        apply_mutual(gf, from, proxy_state.at(from).moe.edge);
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto gf = static_cast<std::uint32_t>(r.get_varint());
        const auto from = static_cast<std::uint32_t>(r.get_varint());
        apply_mutual(gf, from, get_edge(r));
      }

      // Pointer jumping across fragment proxies: ptr[f] <- ptr[ptr[f]]
      // each iteration; a query that closes a 2-cycle resolves to the
      // pair minimum, which thereby becomes the root.
      for (std::size_t jump = 0; jump < jump_iters; ++jump) {
        bool changed = false;
        for (const std::uint32_t f : detail::sorted_keys(proxy_state)) {
          const FragState& st = proxy_state.at(f);
          const std::size_t target = proxy_of(st.ptr);
          if (target == self) continue;  // resolved locally below
          Writer w;
          w.put_varint(st.ptr);
          w.put_varint(f);
          ctx.send(target, kJumpQueryTag, w);
        }
        // Answer queries: ptr[g], with the 2-cycle min rule.
        auto answer = [&](std::uint32_t g,
                          std::uint32_t asking) -> std::uint32_t {
          const auto it = proxy_state.find(g);
          if (it == proxy_state.end()) return g;  // finished: g is a root
          const std::uint32_t next = it->second.ptr;
          if (next == asking) return std::min(g, asking);  // 2-cycle
          return next;
        };
        std::vector<std::pair<std::uint32_t, std::uint32_t>> local_updates;
        for (const std::uint32_t f : detail::sorted_keys(proxy_state)) {
          const FragState& st = proxy_state.at(f);
          if (proxy_of(st.ptr) != self) continue;
          local_updates.emplace_back(f, answer(st.ptr, f));
        }
        for (const Message& msg : ctx.exchange()) {
          Reader r(msg.payload);
          const auto g2 = static_cast<std::uint32_t>(r.get_varint());
          const auto asking = static_cast<std::uint32_t>(r.get_varint());
          Writer w;
          w.put_varint(asking);
          w.put_varint(answer(g2, asking));
          ctx.send(msg.src, kJumpReplyTag, w);
        }
        for (const Message& msg : ctx.exchange()) {
          Reader r(msg.payload);
          const auto f = static_cast<std::uint32_t>(r.get_varint());
          const auto next = static_cast<std::uint32_t>(r.get_varint());
          changed |= (proxy_state[f].ptr != next);
          proxy_state[f].ptr = next;
        }
        for (const auto& [f, next] : local_updates) {
          changed |= (proxy_state[f].ptr != next);
          proxy_state[f].ptr = next;
        }
        // Chains are typically short; stop jumping as soon as every
        // pointer is stable everywhere (one tiny collective per jump).
        if (!ctx.all_reduce_or(changed)) break;
      }

      // ---- Emit this phase's MST edges at the proxies. ----
      std::uint64_t added_here = 0;
      for (const std::uint32_t f : detail::sorted_keys(proxy_state)) {
        const FragState& st = proxy_state.at(f);
        if (st.record && st.moe.valid) {
          emitted[self].push_back(st.moe.edge);
          ++added_here;
        }
      }

      // ---- Step D: home machines learn their vertices' new roots. ----
      std::unordered_set<std::uint32_t> distinct_frags(frag.begin(),
                                                       frag.end());
      std::unordered_map<std::uint32_t, std::uint32_t> root_of;
      for (const std::uint32_t f : detail::sorted_keys(distinct_frags)) {
        const std::size_t proxy = proxy_of(f);
        if (proxy == self) {
          const auto it = proxy_state.find(f);
          root_of[f] = (it == proxy_state.end()) ? f : it->second.ptr;
        } else {
          Writer w;
          w.put_varint(f);
          ctx.send(proxy, kRootQueryTag, w);
        }
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto f = static_cast<std::uint32_t>(r.get_varint());
        const auto it = proxy_state.find(f);
        Writer w;
        w.put_varint(f);
        w.put_varint(it == proxy_state.end() ? f : it->second.ptr);
        ctx.send(msg.src, kRootReplyTag, w);
      }
      for (const Message& msg : ctx.exchange()) {
        Reader r(msg.payload);
        const auto f = static_cast<std::uint32_t>(r.get_varint());
        root_of[f] = static_cast<std::uint32_t>(r.get_varint());
      }
      for (auto& f : frag) f = root_of.at(f);

      // ---- Termination: no fragment found an outgoing edge. ----
      if (ctx.all_reduce_sum(added_here) == 0) break;
    }

    for (std::size_t i = 0; i < owned.size(); ++i) {
      result.fragment_of[owned[i]] = frag[i];
    }
    phases_by_machine[self] = phase;
  };

  result.metrics = engine.run(program);
  for (auto& edges : emitted) {
    result.edges.insert(result.edges.end(), edges.begin(), edges.end());
  }
  std::sort(result.edges.begin(), result.edges.end(), mst_edge_less);
  for (const auto& e : result.edges) result.total_weight += e.weight;
  result.phases = phases_by_machine.empty() ? 0 : phases_by_machine[0];
  return result;
}

}  // namespace

DistributedMstResult distributed_mst(const WeightedGraph& g,
                                     const VertexPartition& partition,
                                     Engine& engine,
                                     std::uint64_t proxy_seed) {
  return run_boruvka(g, partition, engine, proxy_seed);
}

DistributedComponentsResult distributed_components(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    std::uint64_t proxy_seed) {
  // Arbitrary distinct weights make Boruvka's choices unique; the
  // resulting forest spans each component.
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  for (const auto& [u, v] : g.edge_list()) {
    edges.push_back({u, v, 1 + hash_edge(proxy_seed ^ 0x11, u, v) % 1000003});
  }
  const auto wg = WeightedGraph::from_edges(g.num_vertices(), std::move(edges));
  auto mst = run_boruvka(wg, partition, engine, proxy_seed);

  DistributedComponentsResult result;
  result.labels = std::move(mst.fragment_of);
  result.phases = mst.phases;
  result.metrics = mst.metrics;
  std::unordered_set<std::uint32_t> distinct(result.labels.begin(),
                                             result.labels.end());
  result.num_components = g.num_vertices() == 0 ? 0 : distinct.size();
  return result;
}

}  // namespace km
