#include "core/bounds.hpp"

#include <cmath>
#include <sstream>

#include "util/mathx.hpp"

namespace km {

namespace {
double log2n(std::size_t n) {
  return std::max(1.0, std::log2(static_cast<double>(std::max<std::size_t>(n, 2))));
}
}  // namespace

GeneralLowerBound pagerank_lower_bound(std::size_t n, std::size_t k,
                                       std::uint64_t bandwidth_bits) {
  GeneralLowerBound lb;
  const double q = static_cast<double>(n - 1) / 4.0;  // m/4 important edges
  lb.entropy_bits = q;
  lb.info_cost_bits = q / static_cast<double>(k);
  lb.bandwidth_bits = static_cast<double>(bandwidth_bits);
  lb.k = static_cast<double>(k);
  std::ostringstream os;
  os << "Theorem 2: H[Z]=m/4=" << q << " bits (edge-direction bits of H); "
     << "some machine outputs >= m/4k PageRank values of V, each revealing "
     << "one bit => IC=" << lb.info_cost_bits << "; T >= IC/(Bk) = "
     << lb.rounds() << " ~ Omega(n/Bk^2)";
  lb.derivation = os.str();
  return lb;
}

GeneralLowerBound triangle_lower_bound_from_t(std::size_t n, double t,
                                              std::size_t k,
                                              std::uint64_t bandwidth_bits) {
  GeneralLowerBound lb;
  lb.entropy_bits = binomial_coeff(n, 2);  // C(n,2) edge bits
  // Lemma 11: a machine outputting t/k triangles learned at least
  // min_edges_for_triangles(t/k) edges it did not know.
  lb.info_cost_bits = min_edges_for_triangles(t / static_cast<double>(k));
  lb.bandwidth_bits = static_cast<double>(bandwidth_bits);
  lb.k = static_cast<double>(k);
  std::ostringstream os;
  os << "Theorem 3: H[Z]=C(n,2)=" << lb.entropy_bits
     << " bits; t=" << t << " triangles, some machine outputs t/k, "
     << "Rivin bound => IC=Omega((t/k)^{2/3})=" << lb.info_cost_bits
     << "; T >= IC/(Bk) = " << lb.rounds() << " ~ Omega(n^2/Bk^{5/3})";
  lb.derivation = os.str();
  return lb;
}

GeneralLowerBound triangle_lower_bound(std::size_t n, std::size_t k,
                                       std::uint64_t bandwidth_bits) {
  // G(n,1/2) has t = C(n,3)/8 triangles in expectation (Lemma 9 uses
  // t = Theta(C(n,3))).
  const double t = binomial_coeff(n, 3) / 8.0;
  return triangle_lower_bound_from_t(n, t, k, bandwidth_bits);
}

GeneralLowerBound congested_clique_triangle_lower_bound(
    std::size_t n, std::uint64_t bandwidth_bits) {
  GeneralLowerBound lb = triangle_lower_bound(n, n, bandwidth_bits);
  std::ostringstream os;
  os << "Corollary 1 (k=n): " << lb.derivation
     << "; with k=n this is Omega(n^{1/3}/B) rounds";
  lb.derivation = os.str();
  return lb;
}

double triangle_message_lower_bound(std::size_t n, std::size_t k) {
  // Corollary 2: every machine must receive Omega~(n^2/k^{2/3}) bits;
  // with O(log n)-bit messages that is Omega~(n^2 k^{1/3}) messages total.
  const double nn = static_cast<double>(n);
  return nn * nn * std::cbrt(static_cast<double>(k)) / log2n(n);
}

GeneralLowerBound sorting_lower_bound(std::size_t n, std::size_t k,
                                      std::uint64_t bandwidth_bits) {
  GeneralLowerBound lb;
  const double out_bits =
      static_cast<double>(n) / static_cast<double>(k) * log2n(n);
  lb.entropy_bits = static_cast<double>(n) * log2n(n);
  lb.info_cost_bits = out_bits;
  lb.bandwidth_bits = static_cast<double>(bandwidth_bits);
  lb.k = static_cast<double>(k);
  std::ostringstream os;
  os << "Sorting (Sec 1.3): machine i outputs its n/k order statistics "
     << "(~log n bits each) => IC=" << out_bits << "; T >= IC/(Bk) = "
     << lb.rounds() << " ~ Omega(n/Bk^2) (up to log factors)";
  lb.derivation = os.str();
  return lb;
}

GeneralLowerBound mst_lower_bound(std::size_t n, std::size_t k,
                                  std::uint64_t bandwidth_bits) {
  GeneralLowerBound lb;
  const double out_bits =
      static_cast<double>(n) / static_cast<double>(k) * log2n(n);
  lb.entropy_bits = static_cast<double>(n) * log2n(n);
  lb.info_cost_bits = out_bits;
  lb.bandwidth_bits = static_cast<double>(bandwidth_bits);
  lb.k = static_cast<double>(k);
  std::ostringstream os;
  os << "MST (Sec 1.3, complete graph with random weights): some machine "
     << "outputs n/k MST edges (~log n surprisal bits each) => IC="
     << out_bits << "; T >= IC/(Bk) = " << lb.rounds()
     << " ~ Omega(n/Bk^2)";
  lb.derivation = os.str();
  return lb;
}

double pagerank_upper_bound_rounds(std::size_t n, std::size_t k,
                                   std::uint64_t bandwidth_bits) {
  // Theorem 4: O~(n/k^2).  Per iteration each machine sources
  // O~(n log n / k) messages of ~log n bits spread over k links, over
  // O(log n / eps) iterations.
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  const double L = log2n(n);
  return nn * L * L * L / (kk * kk * static_cast<double>(bandwidth_bits));
}

double triangle_upper_bound_rounds(std::size_t n, std::size_t m,
                                   std::size_t k,
                                   std::uint64_t bandwidth_bits) {
  // Theorem 5: O~(m/k^{5/3} + n/k^{4/3}).
  const double mm = static_cast<double>(m);
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  const double L = log2n(n);
  return (mm / std::pow(kk, 5.0 / 3.0) + nn / std::pow(kk, 4.0 / 3.0)) * L *
         L / static_cast<double>(bandwidth_bits);
}

}  // namespace km
