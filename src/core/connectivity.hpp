// Sketch-based connectivity and MST in the k-machine model: the paper's
// Õ(n/k²)-round upper bound (Section 1.3, the algorithm of [51] built on
// AGM linear graph sketches), plus the trivial Õ(n/k) centralized
// baseline the round-bounds harness measures it against.
//
// sketch_connectivity() runs Borůvka phases where *no machine ever
// enumerates a component's edge set*:
//   - each phase, every home machine builds a fresh-seeded ℓ₀ sketch
//     (core/sketch.hpp, O(polylog n) bits) of each owned vertex's signed
//     edge-incidence vector and sends it to the component's proxy
//     machine hash(label) mod k;
//   - the proxy *adds* the member sketches — internal edges cancel by
//     linearity — and samples the folded sketch: a uniformly random
//     outgoing edge of the whole component, or proof (whp) that none
//     exists and the component is complete;
//   - components merge by coin-flip hooking (Karger/Luby style): a
//     phase-seeded hash coin marks each label head or tail, and a tail
//     hooks into the head on the far side of its sampled edge.  Heads
//     never move, so merges are depth-1 stars and no pointer-jumping
//     cycles can form; a constant fraction of active components merges
//     per phase in expectation, giving O(log n) phases whp.
// Per phase each machine ships Õ(n/k) sketch bits spread over k random
// proxies — Õ(n/k²) per link, hence Õ(n/k²) rounds per phase at
// B = polylog(n), against Ω̃(n/k²) from the paper's General Lower Bound
// Theorem.  tests/test_round_bounds.cpp pins the measured exponent.
//
// sketch_mst() extends this to exact MST: each phase, every active
// component finds its true minimum outgoing edge under the total key
// order (weight, endpoints) — the same tie-break order as the Kruskal
// reference, so the result is the unique MSF edge for edge set — by an
// exponentially-refined threshold search.  The proxy halves a key
// interval [lo, hi] per step; home machines send 1-sparse cells of each
// member vertex's incidence vector *restricted to edges with key <= mid*,
// and the folded cell being nonzero (exact whp, by fingerprint) decides
// the half.  Once the interval pins the MOE key, the restricted vector
// is exactly 1-sparse and the cell recovers the edge deterministically.
// Hooking then contracts only MOE edges, so every emitted edge is in the
// MSF by the cut property, and the emitted set is exactly Kruskal's.
//
// centralized_connectivity_baseline() is the Õ(n/k) strawman: every
// machine ships its local edges to machine 0, which union-finds and
// ships labels back — per-link load Θ((m+n)/k · log n), one phase.
#pragma once

#include <cstdint>

#include "core/mst.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"

namespace km {

/// Knobs for the sketch algorithms; defaults follow the paper's
/// parameterization (polylog-bit sketches, O(log n) phase budget).
struct SketchConnectivityConfig {
  std::uint64_t seed = 0x5ce7c4;  ///< drives sketch hashes, coins, proxies
  std::uint32_t rows = 4;         ///< independent ℓ₀ samplers per sketch
  /// Hard phase cap (a failed convergence throws); 0 = 4*ceil_log2(n)+16,
  /// generous against the O(log n) whp bound.
  std::size_t max_phases = 0;
};

/// Sketch-based connectivity; labels are component-consistent vertex ids.
DistributedComponentsResult sketch_connectivity(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    const SketchConnectivityConfig& config = {});

/// Exact MST via per-component threshold search over linear sketches.
/// Produces the unique MSF under mst_edge_less (identical to Kruskal).
DistributedMstResult sketch_mst(const WeightedGraph& g,
                                const VertexPartition& partition,
                                Engine& engine,
                                const SketchConnectivityConfig& config = {});

/// The Õ(n/k) baseline: centralize all edges at machine 0, union-find,
/// scatter labels.  Exists to give test_round_bounds and bench_sketch
/// the n/k-vs-n/k² separation the paper claims.
DistributedComponentsResult centralized_connectivity_baseline(
    const Graph& g, const VertexPartition& partition, Engine& engine);

}  // namespace km
