// Sketch-based connectivity and MST in the k-machine model: the paper's
// Õ(n/k²)-round upper bound (Section 1.3, the algorithm of [51] built on
// AGM linear graph sketches), plus the trivial Õ(n/k) centralized
// baseline the round-bounds harness measures it against.
//
// sketch_connectivity() runs Borůvka phases where *no machine ever
// enumerates a component's edge set*.  A phase is exactly five
// supersteps:
//   1. sketch-up: every home machine builds a fresh-seeded ℓ₀ sketch
//      (core/sketch.hpp, O(polylog n) bits) of each hosted component's
//      summed edge-incidence vector, pre-aggregated over its owned
//      members, and ships each nonzero cell to a *holder* machine
//      hashed from (label, cell position).  All copies of one cell
//      meet at one holder, so the folded copies are exactly that cell
//      of the component's folded sketch (internal edges cancel by
//      linearity) — and because the balancing granularity is a single
//      cell, every link carries its machine's hosted sketch bits
//      spread 1/k-evenly *regardless of which labels it hosts*.  A
//      single designated proxy per label (rank mod k) always receives
//      an entry from each host, giving it the phase's host census;
//   2. candidate-forward: each holder runs 1-sparse recovery on its
//      folded cells and forwards just the recovered edge ids to the
//      label's proxy — a few varints per label, not a second
//      sketch-sized hop.  Absence of any nonzero report is the proxy's
//      (whp-exact) proof the component has no outgoing edge left;
//   3. label-query / 4. label-reply: proxies resolve the component
//      labels of the candidate endpoints from their home machines, one
//      batched query message per link with replies mirrored in query
//      order;
//   5. root-push: proxies decide hooking and *push* (label, root,
//      finished) only to the machines recorded as hosts in step 1, and
//      only for labels that actually changed — no per-label root
//      queries — with each machine's sampling statistics (attempts,
//      failures, any-alive) piggybacked on the same superstep, so the
//      phase needs neither a root-query round-trip nor a separate
//      all-reduce to detect termination.
// Components merge by min-label hooking: a component hooks across the
// smallest-labelled sampled neighbour whose label is below its own.
// Hook edges point strictly downward in label order, so no pointer
// cycle can form, and with several candidate edges per fold the
// per-phase merge probability beats a coin-flip rule — the measured
// grids converge in ~log₂(n)·0.9 phases.  Per phase each machine ships
// Õ(n/k) sketch bits spread cell-by-cell over all k links — Õ(n/k²)
// per link, hence Õ(n/k²) rounds per phase at B = polylog(n), against
// Ω̃(n/k²) from the paper's General Lower Bound Theorem.
// tests/test_round_bounds.cpp pins the measured exponent.  Two further
// knobs trade constants: sketch rows start at
// SketchConnectivityConfig::rows and auto-size against the observed
// sample-failure rate (the piggybacked statistics make every machine
// see identical totals, so shapes stay agreed), and batch_local_phases
// contracts every machine-local component with a zero-communication
// union-find before phase 0 — batching all purely local Borůvka phases
// into one superstep.
//
// sketch_mst() extends this to exact MST: each phase, every active
// component finds its true minimum outgoing edge under the total key
// order (weight, endpoints) — the same tie-break order as the Kruskal
// reference, so the result is the unique MSF edge for edge set — by an
// s-ary threshold search (s = threshold_arity).  Per refinement step
// the proxy splits its key interval [lo, hi] into s near-equal
// subintervals; home machines send s-1 cells of each hosted component's
// incidence vector *restricted to keys <= split_j*, and the leftmost
// nonzero prefix cell (exact whp, by fingerprint) names the subinterval
// holding the MOE — log_s instead of log_2 interval refinements, each a
// two-superstep up/down exchange with per-link-batched messages.  Once
// the interval pins the MOE key, the restricted vector is exactly
// 1-sparse and the cell recovers the edge deterministically.  Hooking
// then contracts only MOE edges, so every emitted edge is in the MSF by
// the cut property, and the emitted set is exactly Kruskal's.
//
// centralized_connectivity_baseline() is the Õ(n/k) strawman: every
// machine ships its local edges to machine 0, which union-finds and
// ships labels back — per-link load Θ((m+n)/k · log n), one phase.
#pragma once

#include <cstdint>

#include "core/mst.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"

namespace km {

/// Knobs for the sketch algorithms; defaults follow the paper's
/// parameterization (polylog-bit sketches, O(log n) phase budget).
struct SketchConnectivityConfig {
  std::uint64_t seed = 0x5ce7c4;  ///< drives sketch hashes, coins, proxies
  std::uint32_t rows = 2;         ///< initial ℓ₀ samplers per sketch
  /// Hard phase cap (a failed convergence throws); 0 = 4*ceil_log2(n)+16,
  /// generous against the O(log n) whp bound.
  std::size_t max_phases = 0;
  /// Auto-size rows between phases from the globally-observed sample
  /// failure rate: >= 1/4 failures grows rows (to max_rows), <= 1/16
  /// shrinks them (to min_rows).  Every machine sees the same
  /// piggybacked totals, so the adapted shape stays agreed without any
  /// extra superstep.
  bool adapt_rows = true;
  std::uint32_t min_rows = 2;  ///< adaptation floor
  std::uint32_t max_rows = 6;  ///< adaptation cap
  /// Proxy assignment: home-machine rank mod k (balanced — per-phase
  /// proxied label counts differ by at most one, spreading the census,
  /// candidate, and root-push load) instead of a hashed assignment
  /// with a sqrt-sized tail.  Sketch bits themselves are balanced
  /// separately, cell-by-cell, whichever flavor is picked here.
  bool balanced_proxies = true;
  /// Contract every machine-local component with a zero-communication
  /// union-find before phase 0 (connectivity only): all Borůvka phases
  /// whose merges stay inside one machine collapse into superstep zero.
  /// Off by default: the measured round grids pin the pure per-phase
  /// protocol, and local contraction helps small k far more than large
  /// k (a k-dependent head start that flattens the fitted exponent).
  bool batch_local_phases = false;
  /// Arity s of the MST threshold search: each refinement sends s-1
  /// prefix cells and divides the key interval by s, so the interval
  /// pins after log_s(max_key) two-superstep exchanges instead of
  /// log_2.  Must be >= 2.
  std::uint32_t threshold_arity = 4;
};

/// Sketch-based connectivity; labels are component-consistent vertex ids.
DistributedComponentsResult sketch_connectivity(
    const Graph& g, const VertexPartition& partition, Engine& engine,
    const SketchConnectivityConfig& config = {});

/// Exact MST via per-component threshold search over linear sketches.
/// Produces the unique MSF under mst_edge_less (identical to Kruskal).
DistributedMstResult sketch_mst(const WeightedGraph& g,
                                const VertexPartition& partition,
                                Engine& engine,
                                const SketchConnectivityConfig& config = {});

/// The Õ(n/k) baseline: centralize all edges at machine 0, union-find,
/// scatter labels.  Exists to give test_round_bounds and bench_sketch
/// the n/k-vs-n/k² separation the paper claims.
DistributedComponentsResult centralized_connectivity_baseline(
    const Graph& g, const VertexPartition& partition, Engine& engine);

}  // namespace km
