#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace km {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Options::get_uint(const std::string& name,
                                std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes") {
    return true;
  }
  return false;
}

}  // namespace km
