#include "util/options.hpp"

#include <algorithm>

#include "util/parse.hpp"

namespace km {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = std::move(arg);
      value = argv[++i];
    } else {
      name = std::move(arg);
    }
    if (name.empty()) {
      throw OptionsError("empty flag name ('--' or '--=value')");
    }
    if (!values_.emplace(name, std::move(value)).second) {
      throw OptionsError("duplicate flag --" + name + " (given more than once)");
    }
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

void Options::reject_unknown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string msg = "unknown flag --" + name + " (accepted:";
    for (const auto& k : known) msg += " --" + k;
    msg += ")";
    throw OptionsError(msg);
  }
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

const std::string* Options::find_required_value(const std::string& name,
                                                const char* type_name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return nullptr;
  if (it->second.empty()) {
    throw OptionsError("flag --" + name + " is missing its " + type_name +
                       " value");
  }
  return &it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const std::string* value = find_required_value(name, "integer");
  if (!value) return fallback;
  std::int64_t parsed = 0;
  if (!parse_strict_int(*value, parsed)) {
    throw OptionsError("flag --" + name + " expects an integer, got '" +
                       *value + "'");
  }
  return parsed;
}

std::uint64_t Options::get_uint(const std::string& name,
                                std::uint64_t fallback) const {
  const std::string* value = find_required_value(name, "unsigned integer");
  if (!value) return fallback;
  std::uint64_t parsed = 0;
  if (!parse_strict_uint(*value, parsed)) {
    throw OptionsError("flag --" + name +
                       " expects a non-negative integer, got '" + *value +
                       "'");
  }
  return parsed;
}

double Options::get_double(const std::string& name, double fallback) const {
  const std::string* value = find_required_value(name, "number");
  if (!value) return fallback;
  double parsed = 0.0;
  if (!parse_strict_double(*value, parsed)) {
    throw OptionsError("flag --" + name + " expects a number, got '" + *value +
                       "'");
  }
  return parsed;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  throw OptionsError("flag --" + name + " expects a boolean, got '" + v + "'");
}

}  // namespace km
