#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace km {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // the root value
  if (stack_.back() == Frame::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    key_pending_ = false;
    return;  // comma/indent were emitted by key()
  }
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key() outside of object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: key() twice in a row");
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  newline_indent();
  out_ += escape(name);
  out_ += indent_ > 0 ? ": " : ":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_.push_back('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_.push_back(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += escape(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out_ += "null";
  } else {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    if (res.ec != std::errc{}) throw std::logic_error("JsonWriter: to_chars");
    out_.append(buf, res.ptr);
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_) throw std::logic_error("JsonWriter: document incomplete");
  return out_;
}

}  // namespace km
