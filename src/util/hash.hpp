// Hashing utilities. The random vertex partition (RVP) of the k-machine
// model is conveniently implemented by hashing vertex IDs to machines
// (Section 1.1 of the paper): any machine that knows a vertex ID also knows
// its home machine.
#pragma once

#include <cstdint>
#include <string_view>

namespace km {

/// FNV-1a over a byte string (stable across platforms).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Strong 64-bit integer hash (splitmix64 finalizer).
std::uint64_t hash_u64(std::uint64_t x) noexcept;

/// Seeded hash of a vertex ID; the basis of hash-based RVP.
std::uint64_t hash_vertex(std::uint64_t seed, std::uint64_t vertex) noexcept;

/// Combine two hashes (boost-style, 64-bit constants).
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept;

/// Canonical hash of an undirected edge: order-independent.
std::uint64_t hash_edge(std::uint64_t seed, std::uint64_t u,
                        std::uint64_t v) noexcept;

}  // namespace km
