// Hashing utilities. The random vertex partition (RVP) of the k-machine
// model is conveniently implemented by hashing vertex IDs to machines
// (Section 1.1 of the paper): any machine that knows a vertex ID also knows
// its home machine.
#pragma once

#include <cstdint>
#include <string_view>

namespace km {

/// FNV-1a over a byte string (stable across platforms).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Strong 64-bit integer hash (splitmix64 finalizer).  Inline: the
/// sketch kernels evaluate it per (edge, row) on their hot path.
inline std::uint64_t hash_u64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded hash of a vertex ID; the basis of hash-based RVP.
inline std::uint64_t hash_vertex(std::uint64_t seed,
                                 std::uint64_t vertex) noexcept {
  return hash_u64(seed ^ hash_u64(vertex + 0x9e3779b97f4a7c15ULL));
}

/// Combine two hashes (boost-style, 64-bit constants).
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept;

/// Canonical hash of an undirected edge: order-independent.
std::uint64_t hash_edge(std::uint64_t seed, std::uint64_t u,
                        std::uint64_t v) noexcept;

}  // namespace km
