// Thread-local recycling of byte buffers.
//
// The message plane allocates one byte buffer per serialized payload and
// frees it when the last PayloadRef drops; at millions of messages per
// second that allocator churn dominates.  acquire_buffer()/recycle_buffer()
// keep a small per-thread free list of vectors so payload and Writer
// storage is reused across supersteps.  Buffers recycle into the pool of
// whichever thread releases them (typically the receiver), which matches
// the SPMD engine where every machine both sends and receives.
#pragma once

#include <cstddef>
#include <vector>

namespace km {

/// Pops a recycled buffer (empty, capacity preserved) from the calling
/// thread's pool, or returns a fresh empty vector when the pool is dry.
std::vector<std::byte> acquire_buffer() noexcept;

/// Returns storage to the calling thread's pool.  Oversized buffers and
/// overflow beyond the pool cap are simply freed.
void recycle_buffer(std::vector<std::byte>&& buf) noexcept;

}  // namespace km
