// Thread-local recycling of byte buffers.
//
// The message plane allocates one byte buffer per serialized payload and
// frees it when the last PayloadRef drops; at millions of messages per
// second that allocator churn dominates.  acquire_buffer()/recycle_buffer()
// keep a small per-thread free list of vectors so payload, Writer, and
// frame storage is reused across supersteps.  Buffers recycle into the
// pool of whichever thread releases them (typically the receiver), which
// matches the SPMD engine where every machine both sends and receives.
//
// Every pool op also maintains counters so a workload can tell when it
// thrashes past the caps (256 buffers, 1 MiB per buffer, 8 MiB per
// thread): buffer_pool_counters() aggregates the cumulative hit/miss/
// eviction counts across all threads (live and exited) plus the current
// occupancy of the live pools.  The counters are per-thread cache lines
// updated with relaxed atomics, so the hot path never shares a line
// between threads; Engine::run snapshots them and reports the per-run
// delta through Metrics::summary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace km {

/// Cumulative buffer-pool activity (all threads) plus current occupancy
/// (live threads).  All counts are monotone except the two gauges.
struct BufferPoolCounters {
  std::uint64_t hits = 0;          ///< acquires served from a pool
  std::uint64_t misses = 0;        ///< acquires that fell through (fresh vector)
  std::uint64_t recycled = 0;      ///< recycles adopted into a pool
  std::uint64_t evicted = 0;       ///< recycles declined past the caps
  std::uint64_t evicted_bytes = 0; ///< capacity bytes freed by those declines
  std::uint64_t pooled_buffers = 0;  ///< gauge: buffers currently held
  std::uint64_t pooled_bytes = 0;    ///< gauge: capacity bytes currently held

  /// Activity since `start` (cumulative fields subtract; gauges are
  /// carried over as-is, since occupancy is a point-in-time reading).
  BufferPoolCounters since(const BufferPoolCounters& start) const noexcept {
    BufferPoolCounters d = *this;
    d.hits -= start.hits;
    d.misses -= start.misses;
    d.recycled -= start.recycled;
    d.evicted -= start.evicted;
    d.evicted_bytes -= start.evicted_bytes;
    return d;
  }
};

/// Pops a recycled buffer (empty, capacity preserved) from the calling
/// thread's pool, or returns a fresh empty vector when the pool is dry.
std::vector<std::byte> acquire_buffer() noexcept;

/// Returns storage to the calling thread's pool.  Oversized buffers and
/// overflow beyond the pool cap are simply freed (counted as evictions).
void recycle_buffer(std::vector<std::byte>&& buf) noexcept;

/// Aggregated counters over every thread's pool: exited threads' activity
/// is folded into the total at thread exit; occupancy gauges cover live
/// pools only.
BufferPoolCounters buffer_pool_counters() noexcept;

}  // namespace km
