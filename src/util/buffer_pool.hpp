// Thread-local recycling of byte buffers, with a shared return channel.
//
// The message plane allocates one byte buffer per serialized payload and
// frees it when the last PayloadRef drops; at millions of messages per
// second that allocator churn dominates.  acquire_buffer()/recycle_buffer()
// keep a small per-thread free list of vectors so payload, Writer, and
// frame storage is reused across supersteps.  Buffers recycle into the
// pool of whichever thread releases them (typically the receiver), which
// matches the SPMD engine where every machine both sends and receives.
//
// Worker pools break the per-thread symmetry: with k machines multiplexed
// over W workers, frame buffers are acquired on the *sender's* worker and
// released on the *receiver's*, so one worker's pool drains (every
// acquire a fresh allocation) while another's overflows (every recycle an
// eviction).  The shared shelf closes the loop: a recycle that overflows
// its local pool parks the buffer on a global mutex-protected shelf
// instead of freeing it, and an acquire that misses its local pool
// refills from the shelf before falling back to a fresh vector.  Shelf
// traffic only happens on the local miss/overflow paths — the hot
// hit/recycle paths never touch the mutex — and a dying worker flushes
// its remaining buffers to the shelf so capacities stay warm across
// engine runs.
//
// Every pool op also maintains counters so a workload can tell when it
// thrashes past the caps (256 buffers, 1 MiB per buffer, 8 MiB per
// thread; 1024 buffers / 32 MiB on the shelf): buffer_pool_counters()
// aggregates the cumulative hit/miss/eviction/shelf counts across all
// threads (live and exited) plus the current occupancy of the live pools
// and the shelf.  The counters are per-thread cache lines updated with
// relaxed atomics, so the hot path never shares a line between threads;
// Engine::run snapshots them and reports the per-run delta through
// Metrics::summary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace km {

/// Cumulative buffer-pool activity (all threads) plus current occupancy
/// (live threads).  All counts are monotone except the two gauges.
struct BufferPoolCounters {
  std::uint64_t hits = 0;          ///< acquires served from a pool
  std::uint64_t misses = 0;        ///< acquires that fell through (fresh vector)
  std::uint64_t recycled = 0;      ///< recycles adopted into a pool
  std::uint64_t evicted = 0;       ///< recycles declined past the caps
  std::uint64_t evicted_bytes = 0; ///< capacity bytes freed by those declines
  std::uint64_t shelf_returns = 0; ///< local overflows parked on the shelf
  std::uint64_t shelf_refills = 0; ///< local misses served from the shelf
  std::uint64_t pooled_buffers = 0;  ///< gauge: buffers currently held
  std::uint64_t pooled_bytes = 0;    ///< gauge: capacity bytes currently held
  std::uint64_t shelf_buffers = 0;   ///< gauge: buffers on the shared shelf
  std::uint64_t shelf_bytes = 0;     ///< gauge: shelf capacity bytes

  /// Activity since `start` (cumulative fields subtract; gauges are
  /// carried over as-is, since occupancy is a point-in-time reading).
  BufferPoolCounters since(const BufferPoolCounters& start) const noexcept {
    BufferPoolCounters d = *this;
    d.hits -= start.hits;
    d.misses -= start.misses;
    d.recycled -= start.recycled;
    d.evicted -= start.evicted;
    d.evicted_bytes -= start.evicted_bytes;
    d.shelf_returns -= start.shelf_returns;
    d.shelf_refills -= start.shelf_refills;
    return d;
  }
};

/// Pops a recycled buffer (empty, capacity preserved) from the calling
/// thread's pool, refilling from the shared shelf when the local pool is
/// dry, or returns a fresh empty vector when both are.
std::vector<std::byte> acquire_buffer() noexcept;

/// Returns storage to the calling thread's pool.  Overflow beyond the
/// local caps is offered to the shared shelf (the cross-thread return
/// channel); oversized buffers and shelf overflow are freed (counted as
/// evictions).
void recycle_buffer(std::vector<std::byte>&& buf) noexcept;

/// Frees every buffer parked on the shared shelf and returns how many
/// were dropped.  For tests that assert exact per-op counter deltas (a
/// populated shelf turns their expected misses into refills) and for
/// callers that want the memory back.
std::size_t drain_buffer_shelf() noexcept;

/// Aggregated counters over every thread's pool: exited threads' activity
/// is folded into the total at thread exit; occupancy gauges cover live
/// pools only.
BufferPoolCounters buffer_pool_counters() noexcept;

}  // namespace km
