// Read-side JSON: a deliberately tiny recursive-descent parser, the
// mirror of util/json.hpp's JsonWriter (no external dependency).
//
// Promoted out of tools/trace_check so every consumer of the repo's JSON
// documents — the trace validators, the km_serve request plane, tests
// diffing km.run_result/v1 output — shares one parser.  Objects preserve
// insertion order as a vector of pairs; no unordered containers, so
// users stay km_lint-clean.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace km {

/// Minimal JSON document model.  One struct instead of a variant so the
/// recursive type stays simple; `kind` says which payload field is live.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Kind k) const noexcept { return kind == k; }
  /// First member named `key`, or nullptr (valid only on objects).
  const JsonValue* find(std::string_view key) const noexcept;
};

/// Parses `text` into `out`.  Returns false and sets `error` (with byte
/// offset) on malformed input.  Full document: trailing garbage is an
/// error.
bool parse_json(std::string_view text, JsonValue& out, std::string& error);

}  // namespace km
