// Strict string-to-number parsing, shared by everything that turns user
// text into numbers (CLI options, dataset specs, list flags).  One
// implementation of the fiddly rules — whole-string consumption, no sign
// on unsigned values, overflow detection — so a fix lands everywhere.
//
// All functions return false (leaving `out` untouched) on empty input,
// trailing garbage, overflow/underflow, or a sign where none is allowed;
// callers wrap the failure in their own error type and message.
#pragma once

#include <cstdint>
#include <string>

namespace km {

/// Base-10 unsigned integer; rejects '+'/'-' prefixes.
bool parse_strict_uint(const std::string& text, std::uint64_t& out) noexcept;

/// Base-10 signed integer.
bool parse_strict_int(const std::string& text, std::int64_t& out) noexcept;

/// Floating point (strtod grammar, whole string must parse).
bool parse_strict_double(const std::string& text, double& out) noexcept;

}  // namespace km
