#include "util/mathx.hpp"

#include <algorithm>
#include <cmath>

namespace km {

std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - static_cast<std::uint32_t>(__builtin_clzll(x - 1));
}

std::uint32_t floor_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 63 - static_cast<std::uint32_t>(__builtin_clzll(x));
}

std::uint64_t floor_cbrt(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  auto c = static_cast<std::uint64_t>(std::cbrt(static_cast<double>(x)));
  // Fix up floating point error in both directions.
  while (c > 0 && c * c * c > x) --c;
  while ((c + 1) * (c + 1) * (c + 1) <= x) ++c;
  return c;
}

double binomial_coeff(std::uint64_t n, std::uint64_t r) noexcept {
  if (r > n) return 0.0;
  r = std::min(r, n - r);
  double result = 1.0;
  for (std::uint64_t i = 1; i <= r; ++i) {
    result *= static_cast<double>(n - r + i) / static_cast<double>(i);
  }
  return result;
}

double binary_entropy(double p) noexcept {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double entropy_bits(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double entropy_bits_counts(std::span<const std::uint64_t> counts) noexcept {
  double total = 0.0;
  for (auto c : counts) total += static_cast<double>(c);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log2(p);
  }
  return h;
}

namespace {
struct LogStats {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  std::size_t n = 0;
};

LogStats accumulate(std::span<const double> x, std::span<const double> y) {
  LogStats s;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    s.sx += lx;
    s.sy += ly;
    s.sxx += lx * lx;
    s.syy += ly * ly;
    s.sxy += lx * ly;
    ++s.n;
  }
  return s;
}
}  // namespace

double fit_log_log_slope(std::span<const double> x,
                         std::span<const double> y) noexcept {
  const LogStats s = accumulate(x, y);
  if (s.n < 2) return 0.0;
  const double n = static_cast<double>(s.n);
  const double denom = n * s.sxx - s.sx * s.sx;
  if (denom == 0.0) return 0.0;
  return (n * s.sxy - s.sx * s.sy) / denom;
}

double log_log_correlation(std::span<const double> x,
                           std::span<const double> y) noexcept {
  const LogStats s = accumulate(x, y);
  if (s.n < 2) return 0.0;
  const double n = static_cast<double>(s.n);
  const double cov = n * s.sxy - s.sx * s.sy;
  const double vx = n * s.sxx - s.sx * s.sx;
  const double vy = n * s.syy - s.sy * s.sy;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double min_edges_for_triangles(double t) noexcept {
  if (t <= 0.0) return 0.0;
  return std::pow(6.0 * t, 2.0 / 3.0) / 2.0;
}

double max_triangles_for_edges(double edges) noexcept {
  if (edges <= 0.0) return 0.0;
  return std::pow(2.0 * edges, 1.5) / 6.0;
}

}  // namespace km
