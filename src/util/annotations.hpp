// Clang thread-safety annotations (the Chromium/abseil capability model)
// plus the annotated lock primitives the simulator uses with them.
//
// The engine's lock discipline — which members a mutex guards, which
// functions must (or must not) hold it, and which state the combining-tree
// barrier hands a thread exclusively — is machine-checked at compile time
// under clang's -Wthread-safety analysis (the `analyze` CMake preset turns
// it into -Werror=thread-safety).  Off clang every macro expands to
// nothing, so gcc/MSVC builds are unaffected.
//
// Usage vocabulary:
//  - KM_CAPABILITY("name")  on a class: instances are capabilities the
//    analysis tracks (our Mutex, and PhantomCapability below).
//  - KM_GUARDED_BY(cap)     on a member: reads/writes require `cap`.
//  - KM_REQUIRES(cap)       on a function: callers must hold `cap`.
//  - KM_EXCLUDES(cap)       on a function: callers must NOT hold `cap`
//    (the function acquires it itself; guards against self-deadlock).
//  - KM_ACQUIRE / KM_RELEASE on functions that take/drop a capability.
//  - KM_ASSERT_CAPABILITY   on a no-op function that *tells* the analysis
//    a capability is held — the escape hatch for exclusivity established
//    by a protocol the function-local analysis cannot see (the barrier's
//    fold phase, a post-join epilogue).
//
// The analysis is function-local and trusts annotations at call
// boundaries, so every assertion function must carry a comment citing the
// protocol that makes it true.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KM_THREAD_ANNOTATION
#define KM_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define KM_CAPABILITY(x) KM_THREAD_ANNOTATION(capability(x))
#define KM_SCOPED_CAPABILITY KM_THREAD_ANNOTATION(scoped_lockable)
#define KM_GUARDED_BY(x) KM_THREAD_ANNOTATION(guarded_by(x))
#define KM_PT_GUARDED_BY(x) KM_THREAD_ANNOTATION(pt_guarded_by(x))
#define KM_REQUIRES(...) \
  KM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define KM_REQUIRES_SHARED(...) \
  KM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define KM_EXCLUDES(...) KM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define KM_ACQUIRE(...) \
  KM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KM_RELEASE(...) \
  KM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KM_TRY_ACQUIRE(...) \
  KM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define KM_ASSERT_CAPABILITY(...) \
  KM_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define KM_RETURN_CAPABILITY(x) KM_THREAD_ANNOTATION(lock_returned(x))
#define KM_NO_THREAD_SAFETY_ANALYSIS \
  KM_THREAD_ANNOTATION(no_thread_safety_analysis)

// Sanitizer suppression for functions whose arithmetic wraps on purpose
// (sketch id-sums, Mersenne-61 mulmod).  Unsigned wrap is defined C++ and
// invisible to -fsanitize=undefined; clang's optional -fsanitize=integer
// would still flag it, so the intent is declared at the definition.  GCC
// warns on sanitizer names it does not know, hence the clang gate.
#if defined(__clang__)
#define KM_NO_SANITIZE(check) __attribute__((no_sanitize(check)))
#else
#define KM_NO_SANITIZE(check)
#endif

namespace km {

/// std::mutex with capability annotations.  Drop-in for the simulator's
/// internal locks: the analysis can only track lock discipline through
/// annotated acquire/release points, which the standard mutex lacks.
class KM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KM_ACQUIRE() { mu_.lock(); }
  void unlock() KM_RELEASE() { mu_.unlock(); }
  bool try_lock() KM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::scoped_lock carries no annotations).
class KM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() KM_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A capability with no lock behind it: exclusive access established by a
/// protocol instead of a mutex (the tree barrier's fold phase, the
/// single-threaded prologue/epilogue of Engine::run).  acquire/release/
/// assert_held cost nothing at runtime; they exist so KM_GUARDED_BY
/// members stay machine-checked even where the exclusion mechanism is
/// lock-free.  Every assert_held() call site must say, in a comment, which
/// protocol guarantees the exclusivity it claims.
class KM_CAPABILITY("role") PhantomCapability {
 public:
  PhantomCapability() = default;
  PhantomCapability(const PhantomCapability&) = delete;
  PhantomCapability& operator=(const PhantomCapability&) = delete;

  void acquire() noexcept KM_ACQUIRE() {}
  void release() noexcept KM_RELEASE() {}
  void assert_held() const noexcept KM_ASSERT_CAPABILITY() {}
};

}  // namespace km
