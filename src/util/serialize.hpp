// Message serialization with bit-accurate size accounting.
//
// The k-machine model charges rounds as ceil(bits per link / B); the paper
// assumes messages of O(log n) bits. To keep the simulator's cost model
// honest, all message payloads are produced through Writer (which encodes
// integers as LEB128 varints so that "small" values really cost few bits)
// and decoded through Reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace km {

/// Error thrown when a Reader runs off the end of a payload or decodes a
/// malformed varint.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte buffer with varint and fixed-width encoders.  The
/// backing storage comes from the thread-local buffer pool
/// (util/buffer_pool.hpp) and returns there on destruction, so hot loops
/// that create a Writer per message do not hit the allocator.
class Writer {
 public:
  Writer();
  ~Writer();
  Writer(const Writer&) = default;
  Writer& operator=(const Writer&) = default;
  Writer(Writer&&) noexcept = default;
  Writer& operator=(Writer&&) noexcept = default;

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// LEB128 unsigned varint: 1 byte per 7 bits of payload.
  void put_varint(std::uint64_t v);
  /// Zigzag-encoded signed varint.
  void put_varint_signed(std::int64_t v);
  void put_double(double v);
  void put_bytes(std::span<const std::byte> bytes);

  std::size_t size_bytes() const noexcept { return buf_.size(); }
  std::size_t size_bits() const noexcept { return buf_.size() * 8; }

  /// Moves the accumulated buffer out; the Writer is reusable afterwards.
  std::vector<std::byte> take() noexcept;

  /// Discards the accumulated bytes but keeps the capacity, so a Writer
  /// reused across messages appends without reallocating.
  void clear() noexcept { buf_.clear(); }

  std::span<const std::byte> view() const noexcept { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential decoder over a byte span. Throws SerializeError on underrun.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) noexcept : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  std::int64_t get_varint_signed();
  double get_double();

  /// Skips `n` payload bytes (e.g. a length-prefixed blob another layer
  /// will view zero-copy). Throws SerializeError past the end.
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Number of bytes a varint encoding of v occupies (for cost estimates).
std::size_t varint_size(std::uint64_t v) noexcept;

/// Appends the LEB128 varint encoding of v to a raw byte buffer (the
/// Writer-free flavor, for builders that own their storage — e.g. the
/// message plane's per-link frames).
void append_varint(std::vector<std::byte>& buf, std::uint64_t v);

}  // namespace km
