#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/mathx.hpp"

namespace km {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::imbalance() const noexcept {
  const double mu = mean();
  return mu > 0.0 ? max() / mu : 0.0;
}

std::string Accumulator::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

double quantile(std::vector<double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Accumulator summarize(std::span<const double> xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc;
}

void Log2Histogram::add(std::uint64_t x) noexcept {
  const std::size_t bucket = (x == 0) ? 0 : 1 + floor_log2(x);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
}

std::string Log2Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto b : buckets_) peak = std::max(peak, b);
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t lo = (i == 0) ? 0 : (1ULL << (i - 1));
    const std::uint64_t hi = (i == 0) ? 0 : (1ULL << i) - 1;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << lo << "," << hi << "] " << std::string(bar, '#') << " "
       << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace km
