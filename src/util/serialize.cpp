#include "util/serialize.hpp"

#include <bit>
#include <cstring>

#include "util/buffer_pool.hpp"

namespace km {

Writer::Writer() : buf_(acquire_buffer()) {}

Writer::~Writer() { recycle_buffer(std::move(buf_)); }

namespace {
template <typename T>
void append_le(std::vector<std::byte>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::byte raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  buf.insert(buf.end(), raw, raw + sizeof(T));
}
}  // namespace

void Writer::put_u8(std::uint8_t v) { append_le(buf_, v); }
void Writer::put_u16(std::uint16_t v) { append_le(buf_, v); }
void Writer::put_u32(std::uint32_t v) { append_le(buf_, v); }
void Writer::put_u64(std::uint64_t v) { append_le(buf_, v); }

void Writer::put_varint(std::uint64_t v) { append_varint(buf_, v); }

void Writer::put_varint_signed(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void Writer::put_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Writer::put_bytes(std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::vector<std::byte> Writer::take() noexcept {
  std::vector<std::byte> out = acquire_buffer();
  out.swap(buf_);
  return out;
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw SerializeError("Reader: payload underrun");
  }
}

namespace {
template <typename T>
T read_le(std::span<const std::byte> data, std::size_t pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  return v;
}
}  // namespace

std::uint8_t Reader::get_u8() {
  need(1);
  auto v = read_le<std::uint8_t>(data_, pos_);
  pos_ += 1;
  return v;
}

std::uint16_t Reader::get_u16() {
  need(2);
  auto v = read_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::get_u32() {
  need(4);
  auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::get_u64() {
  need(8);
  auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

std::uint64_t Reader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift >= 64) throw SerializeError("Reader: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::int64_t Reader::get_varint_signed() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double Reader::get_double() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void append_varint(std::vector<std::byte>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf.push_back(static_cast<std::byte>(v));
}

}  // namespace km
