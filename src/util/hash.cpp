#include "util/hash.hpp"

#include <algorithm>

namespace km {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return h ^ (hash_u64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

std::uint64_t hash_edge(std::uint64_t seed, std::uint64_t u,
                        std::uint64_t v) noexcept {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return hash_combine(hash_vertex(seed, lo), hi);
}

}  // namespace km
