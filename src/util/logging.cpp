#include "util/logging.hpp"

#include <atomic>
#include <iostream>

#include "util/annotations.hpp"

namespace km {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes line output only; the level is a lock-free atomic.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const MutexLock lock(g_mutex);
  std::cerr << "[km:" << level_name(level) << "] " << msg << "\n";
}

namespace detail {
LogStream::~LogStream() { log_line(level_, os_.str()); }
}  // namespace detail

}  // namespace km
