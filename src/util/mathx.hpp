// Small math helpers used throughout: integer logs, binomial coefficients,
// entropy functions (the General Lower Bound Theorem is information
// theoretic), and least-squares exponent fitting used by the benchmark
// harness to report measured scaling exponents next to the paper's
// predicted ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace km {

/// ceil(log2(x)) for x >= 1; returns 0 for x <= 1.
std::uint32_t ceil_log2(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1.
std::uint32_t floor_log2(std::uint64_t x) noexcept;

/// floor(cbrt(x)) computed exactly on integers.
std::uint64_t floor_cbrt(std::uint64_t x) noexcept;

/// Integer ceiling division a/b, b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Binomial coefficient C(n, r) as double (exact for small arguments,
/// avoids overflow for large ones).
double binomial_coeff(std::uint64_t n, std::uint64_t r) noexcept;

/// Binary entropy of a Bernoulli(p) bit, in bits. h(0)=h(1)=0.
double binary_entropy(double p) noexcept;

/// Shannon entropy (bits) of a discrete distribution given as
/// (possibly unnormalized) nonnegative weights.
double entropy_bits(std::span<const double> weights) noexcept;

/// Empirical Shannon entropy (bits) of a sample of category counts.
double entropy_bits_counts(std::span<const std::uint64_t> counts) noexcept;

/// Least-squares fit of log(y) = a + b*log(x); returns the exponent b.
/// Used to verify measured scaling exponents (e.g. rounds ~ k^-2).
double fit_log_log_slope(std::span<const double> x,
                         std::span<const double> y) noexcept;

/// Pearson correlation of log(x) vs log(y); quality measure for the fit.
double log_log_correlation(std::span<const double> x,
                           std::span<const double> y) noexcept;

/// Minimum number of edges any graph needs to contain `t` triangles.
/// From the Kruskal–Katona / Rivin bound used in Lemma 11 of the paper:
/// a graph with E edges has at most (2E)^{3/2}/6 triangles, hence
/// E >= (6t)^{2/3} / 2.
double min_edges_for_triangles(double t) noexcept;

/// Maximum number of triangles representable with E edges: (2E)^{3/2}/6.
double max_triangles_for_edges(double edges) noexcept;

}  // namespace km
