#include "util/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace km {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
      case 'f':
        return parse_literal(out);
      case 'n':
        return parse_literal(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(JsonValue& out) {
    const auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return fail("expected a value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = begin;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("malformed \\u escape");
          }
          // UTF-8 encode (BMP only; the repo's writers never emit
          // surrogate pairs).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  return Parser(text, error).parse(out);
}

}  // namespace km
