#include "util/parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace km {

bool parse_strict_uint(const std::string& text, std::uint64_t& out) noexcept {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      end == text.c_str()) {
    return false;
  }
  out = parsed;
  return true;
}

bool parse_strict_int(const std::string& text, std::int64_t& out) noexcept {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      end == text.c_str()) {
    return false;
  }
  out = parsed;
  return true;
}

bool parse_strict_double(const std::string& text, double& out) noexcept {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      end == text.c_str()) {
    return false;
  }
  out = parsed;
  return true;
}

}  // namespace km
