// Tiny leveled logger. The simulator is multi-threaded; log lines are
// serialized through a mutex (an annotated km::Mutex in logging.cpp, so
// -Wthread-safety sees the discipline) to keep interleaved machine
// output readable.
#pragma once

#include <sstream>
#include <string>

namespace km {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream();
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace km

#define KM_LOG_DEBUG ::km::detail::LogStream(::km::LogLevel::kDebug)
#define KM_LOG_INFO ::km::detail::LogStream(::km::LogLevel::kInfo)
#define KM_LOG_WARN ::km::detail::LogStream(::km::LogLevel::kWarn)
#define KM_LOG_ERROR ::km::detail::LogStream(::km::LogLevel::kError)
