// Minimal streaming JSON writer — the serialization side of the runtime's
// machine-readable results (no external JSON dependency, by design).
//
// The writer emits RFC 8259 JSON: keys in insertion order (schema-stable
// output for diffing and regression tracking), strings escaped, doubles
// printed with std::to_chars shortest round-trip form so re-parsing yields
// bit-identical values.  Structural misuse (value without a key inside an
// object, mismatched end_*) throws std::logic_error rather than emitting
// malformed output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace km {

class JsonWriter {
 public:
  /// indent == 0: compact one-line output; indent > 0: pretty-printed.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value; valid only directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document. Throws if containers are still open.
  std::string str() const;

  /// Escapes `s` as a JSON string literal including the quotes.
  static std::string escape(std::string_view s);

 private:
  enum class Frame { kObject, kArray };

  void before_value();
  void newline_indent();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
  bool done_ = false;
  int indent_;
};

}  // namespace km
