// Deterministic pseudo-random number generation for the k-machine simulator.
//
// Every machine in a simulation owns its own Rng seeded from
// (global seed, machine id) via splitmix64, so simulation results are
// reproducible regardless of thread scheduling.  The generator is
// xoshiro256** (Blackman & Vigna), which is fast, has 256 bits of state and
// passes BigCrush; it also models std::uniform_random_bit_generator so the
// standard <random> distributions can be layered on top.
#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

namespace km {

/// splitmix64 step; used for seeding and cheap stateless mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of two words into one well-distributed word.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Convenience: machine-local generator, seed derived from (seed, stream).
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next 64 uniformly random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's nearly-divisionless rejection method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double real01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exact Binomial(n, p) sample. Uses direct simulation for small n and
  /// std::binomial_distribution (BTPE-class) for large n.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> xs) noexcept {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// `count` distinct values sampled uniformly from [0, bound), sorted.
  /// Requires count <= bound. Floyd's algorithm; O(count) expected work.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t bound,
                                             std::size_t count);

 private:
  std::uint64_t s_[4];
};

}  // namespace km
