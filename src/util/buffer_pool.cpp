#include "util/buffer_pool.hpp"

#include <atomic>
#include <utility>

#include "util/annotations.hpp"

namespace km {

namespace {

constexpr std::size_t kMaxPooledBuffers = 256;
constexpr std::size_t kMaxBufferCapacity = std::size_t{1} << 20;   // 1 MiB
constexpr std::size_t kMaxPooledBytes = std::size_t{8} << 20;      // 8 MiB

// Per-thread counter cell.  Relaxed atomics on a thread-private cache
// line: writes cost a plain increment, while buffer_pool_counters() can
// read other threads' cells without a data race.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::uint64_t> evicted_bytes{0};
  std::atomic<std::uint64_t> pooled_buffers{0};
  std::atomic<std::uint64_t> pooled_bytes{0};
};

// Registry of live cells plus totals retired by exited threads.  The
// mutex guards only registration, retirement, and the aggregate read —
// never the pool hot path.
struct Registry {
  Mutex mutex;
  std::vector<const CounterCell*> live KM_GUARDED_BY(mutex);
  // gauges stay 0: a dead pool holds nothing
  BufferPoolCounters retired KM_GUARDED_BY(mutex);
};

Registry& registry() noexcept {
  static Registry reg;
  return reg;
}

struct Pool {
  Pool() {
    buffers.reserve(kMaxPooledBuffers);
    auto& reg = registry();
    const MutexLock lock(reg.mutex);
    reg.live.push_back(&cell);
  }
  ~Pool() {
    destroyed = true;
    auto& reg = registry();
    const MutexLock lock(reg.mutex);
    reg.retired.hits += cell.hits.load(std::memory_order_relaxed);
    reg.retired.misses += cell.misses.load(std::memory_order_relaxed);
    reg.retired.recycled += cell.recycled.load(std::memory_order_relaxed);
    reg.retired.evicted += cell.evicted.load(std::memory_order_relaxed);
    reg.retired.evicted_bytes +=
        cell.evicted_bytes.load(std::memory_order_relaxed);
    std::erase(reg.live, &cell);
  }
  std::vector<std::vector<std::byte>> buffers;
  std::size_t pooled_bytes = 0;  // sum of capacities held
  bool destroyed = false;        // guards late releases at thread exit
  CounterCell cell;
};

Pool& local_pool() noexcept {
  thread_local Pool pool;
  return pool;
}

void bump(std::atomic<std::uint64_t>& counter, std::uint64_t by = 1) noexcept {
  counter.fetch_add(by, std::memory_order_relaxed);
}

}  // namespace

std::vector<std::byte> acquire_buffer() noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || pool.buffers.empty()) {
    if (!pool.destroyed) bump(pool.cell.misses);
    return {};
  }
  std::vector<std::byte> buf = std::move(pool.buffers.back());
  pool.buffers.pop_back();
  pool.pooled_bytes -= buf.capacity();
  bump(pool.cell.hits);
  pool.cell.pooled_buffers.store(pool.buffers.size(),
                                 std::memory_order_relaxed);
  pool.cell.pooled_bytes.store(pool.pooled_bytes, std::memory_order_relaxed);
  return buf;
}

void recycle_buffer(std::vector<std::byte>&& buf) noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || buf.capacity() == 0) {
    return;  // nothing to account: no storage changes hands
  }
  if (buf.capacity() > kMaxBufferCapacity ||
      pool.buffers.size() >= kMaxPooledBuffers ||
      pool.pooled_bytes + buf.capacity() > kMaxPooledBytes) {
    bump(pool.cell.evicted);
    bump(pool.cell.evicted_bytes, buf.capacity());
    return;  // not adopted: the caller's vector frees the storage
  }
  buf.clear();
  pool.pooled_bytes += buf.capacity();
  // Never reallocates: the vector was reserved to kMaxPooledBuffers.
  pool.buffers.push_back(std::move(buf));
  bump(pool.cell.recycled);
  pool.cell.pooled_buffers.store(pool.buffers.size(),
                                 std::memory_order_relaxed);
  pool.cell.pooled_bytes.store(pool.pooled_bytes, std::memory_order_relaxed);
}

BufferPoolCounters buffer_pool_counters() noexcept {
  auto& reg = registry();
  const MutexLock lock(reg.mutex);
  BufferPoolCounters total = reg.retired;
  for (const CounterCell* cell : reg.live) {
    total.hits += cell->hits.load(std::memory_order_relaxed);
    total.misses += cell->misses.load(std::memory_order_relaxed);
    total.recycled += cell->recycled.load(std::memory_order_relaxed);
    total.evicted += cell->evicted.load(std::memory_order_relaxed);
    total.evicted_bytes +=
        cell->evicted_bytes.load(std::memory_order_relaxed);
    total.pooled_buffers +=
        cell->pooled_buffers.load(std::memory_order_relaxed);
    total.pooled_bytes += cell->pooled_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace km
