#include "util/buffer_pool.hpp"

#include <utility>

namespace km {

namespace {

constexpr std::size_t kMaxPooledBuffers = 256;
constexpr std::size_t kMaxBufferCapacity = std::size_t{1} << 20;   // 1 MiB
constexpr std::size_t kMaxPooledBytes = std::size_t{8} << 20;      // 8 MiB

struct Pool {
  Pool() { buffers.reserve(kMaxPooledBuffers); }
  ~Pool() { destroyed = true; }
  std::vector<std::vector<std::byte>> buffers;
  std::size_t pooled_bytes = 0;  // sum of capacities held
  bool destroyed = false;        // guards late releases at thread exit
};

Pool& local_pool() noexcept {
  thread_local Pool pool;
  return pool;
}

}  // namespace

std::vector<std::byte> acquire_buffer() noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || pool.buffers.empty()) return {};
  std::vector<std::byte> buf = std::move(pool.buffers.back());
  pool.buffers.pop_back();
  pool.pooled_bytes -= buf.capacity();
  return buf;
}

void recycle_buffer(std::vector<std::byte>&& buf) noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || buf.capacity() == 0 ||
      buf.capacity() > kMaxBufferCapacity ||
      pool.buffers.size() >= kMaxPooledBuffers ||
      pool.pooled_bytes + buf.capacity() > kMaxPooledBytes) {
    return;  // not adopted: the caller's vector frees the storage
  }
  buf.clear();
  pool.pooled_bytes += buf.capacity();
  // Never reallocates: the vector was reserved to kMaxPooledBuffers.
  pool.buffers.push_back(std::move(buf));
}

}  // namespace km
