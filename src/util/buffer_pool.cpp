#include "util/buffer_pool.hpp"

#include <atomic>
#include <utility>

#include "util/annotations.hpp"

namespace km {

namespace {

constexpr std::size_t kMaxPooledBuffers = 256;
constexpr std::size_t kMaxBufferCapacity = std::size_t{1} << 20;   // 1 MiB
constexpr std::size_t kMaxPooledBytes = std::size_t{8} << 20;      // 8 MiB
constexpr std::size_t kMaxShelfBuffers = 1024;
constexpr std::size_t kMaxShelfBytes = std::size_t{32} << 20;      // 32 MiB

// Per-thread counter cell.  Relaxed atomics on a thread-private cache
// line: writes cost a plain increment, while buffer_pool_counters() can
// read other threads' cells without a data race.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::uint64_t> evicted_bytes{0};
  std::atomic<std::uint64_t> shelf_returns{0};
  std::atomic<std::uint64_t> shelf_refills{0};
  std::atomic<std::uint64_t> pooled_buffers{0};
  std::atomic<std::uint64_t> pooled_bytes{0};
};

// The cross-thread return channel: buffers released on a thread whose
// local pool is full park here until some thread's acquire misses.  Only
// the miss/overflow paths take the mutex, so the channel costs nothing
// while local pools are in balance; under a worker pool (sim/executor),
// where frames are acquired on the sender's worker and released on the
// receiver's, it is what keeps capacities circulating instead of being
// re-allocated every superstep.
struct Shelf {
  Shelf() { buffers.reserve(kMaxShelfBuffers); }
  Mutex mutex;
  std::vector<std::vector<std::byte>> buffers KM_GUARDED_BY(mutex);
  std::size_t bytes KM_GUARDED_BY(mutex) = 0;  // sum of capacities held
};

Shelf& shelf() noexcept {
  static Shelf s;
  return s;
}

/// Parks `buf` on the shelf; declines (false) past the shelf caps.
bool shelf_push(std::vector<std::byte>&& buf) noexcept {
  Shelf& s = shelf();
  const MutexLock lock(s.mutex);
  if (s.buffers.size() >= kMaxShelfBuffers ||
      s.bytes + buf.capacity() > kMaxShelfBytes) {
    return false;
  }
  buf.clear();
  s.bytes += buf.capacity();
  s.buffers.push_back(std::move(buf));  // never reallocates: reserved
  return true;
}

/// Pops a parked buffer into `out`; false when the shelf is empty.
bool shelf_pop(std::vector<std::byte>& out) noexcept {
  Shelf& s = shelf();
  const MutexLock lock(s.mutex);
  if (s.buffers.empty()) return false;
  out = std::move(s.buffers.back());
  s.buffers.pop_back();
  s.bytes -= out.capacity();
  return true;
}

// Registry of live cells plus totals retired by exited threads.  The
// mutex guards only registration, retirement, and the aggregate read —
// never the pool hot path.
struct Registry {
  Mutex mutex;
  std::vector<const CounterCell*> live KM_GUARDED_BY(mutex);
  // gauges stay 0: a dead pool holds nothing
  BufferPoolCounters retired KM_GUARDED_BY(mutex);
};

Registry& registry() noexcept {
  static Registry reg;
  return reg;
}

struct Pool {
  Pool() {
    buffers.reserve(kMaxPooledBuffers);
    auto& reg = registry();
    const MutexLock lock(reg.mutex);
    reg.live.push_back(&cell);
  }
  ~Pool() {
    destroyed = true;
    // Flush the holdings to the shelf so capacities survive this thread:
    // engine runs spawn fresh workers each time, and without the flush
    // every run would rebuild its working set from cold allocations.
    for (auto& buf : buffers) {
      if (!shelf_push(std::move(buf))) break;  // shelf full: rest is freed
    }
    buffers.clear();
    auto& reg = registry();
    const MutexLock lock(reg.mutex);
    reg.retired.hits += cell.hits.load(std::memory_order_relaxed);
    reg.retired.misses += cell.misses.load(std::memory_order_relaxed);
    reg.retired.recycled += cell.recycled.load(std::memory_order_relaxed);
    reg.retired.evicted += cell.evicted.load(std::memory_order_relaxed);
    reg.retired.evicted_bytes +=
        cell.evicted_bytes.load(std::memory_order_relaxed);
    reg.retired.shelf_returns +=
        cell.shelf_returns.load(std::memory_order_relaxed);
    reg.retired.shelf_refills +=
        cell.shelf_refills.load(std::memory_order_relaxed);
    std::erase(reg.live, &cell);
  }
  std::vector<std::vector<std::byte>> buffers;
  std::size_t pooled_bytes = 0;  // sum of capacities held
  bool destroyed = false;        // guards late releases at thread exit
  CounterCell cell;
};

Pool& local_pool() noexcept {
  thread_local Pool pool;
  return pool;
}

void bump(std::atomic<std::uint64_t>& counter, std::uint64_t by = 1) noexcept {
  counter.fetch_add(by, std::memory_order_relaxed);
}

}  // namespace

std::vector<std::byte> acquire_buffer() noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || pool.buffers.empty()) {
    if (pool.destroyed) return {};
    // Local pool dry: pull from the cross-thread return channel before
    // paying for a fresh allocation (cold path — mutex is fine here).
    std::vector<std::byte> from_shelf;
    if (shelf_pop(from_shelf)) {
      bump(pool.cell.shelf_refills);
      return from_shelf;
    }
    bump(pool.cell.misses);
    return {};
  }
  std::vector<std::byte> buf = std::move(pool.buffers.back());
  pool.buffers.pop_back();
  pool.pooled_bytes -= buf.capacity();
  bump(pool.cell.hits);
  pool.cell.pooled_buffers.store(pool.buffers.size(),
                                 std::memory_order_relaxed);
  pool.cell.pooled_bytes.store(pool.pooled_bytes, std::memory_order_relaxed);
  return buf;
}

void recycle_buffer(std::vector<std::byte>&& buf) noexcept {
  Pool& pool = local_pool();
  if (pool.destroyed || buf.capacity() == 0) {
    return;  // nothing to account: no storage changes hands
  }
  if (buf.capacity() > kMaxBufferCapacity) {
    // Outsized storage is never pooled anywhere: freeing it is the point
    // of the cap.
    bump(pool.cell.evicted);
    bump(pool.cell.evicted_bytes, buf.capacity());
    return;
  }
  if (pool.buffers.size() >= kMaxPooledBuffers ||
      pool.pooled_bytes + buf.capacity() > kMaxPooledBytes) {
    // Local overflow: offer it to the cross-thread return channel — under
    // a worker pool this is the receiver handing the sender's frame
    // capacity back — and only free it when the shelf is full too.
    const std::uint64_t capacity = buf.capacity();
    if (shelf_push(std::move(buf))) {
      bump(pool.cell.shelf_returns);
    } else {
      bump(pool.cell.evicted);
      bump(pool.cell.evicted_bytes, capacity);
    }
    return;
  }
  buf.clear();
  pool.pooled_bytes += buf.capacity();
  // Never reallocates: the vector was reserved to kMaxPooledBuffers.
  pool.buffers.push_back(std::move(buf));
  bump(pool.cell.recycled);
  pool.cell.pooled_buffers.store(pool.buffers.size(),
                                 std::memory_order_relaxed);
  pool.cell.pooled_bytes.store(pool.pooled_bytes, std::memory_order_relaxed);
}

BufferPoolCounters buffer_pool_counters() noexcept {
  auto& reg = registry();
  const MutexLock lock(reg.mutex);
  BufferPoolCounters total = reg.retired;
  for (const CounterCell* cell : reg.live) {
    total.hits += cell->hits.load(std::memory_order_relaxed);
    total.misses += cell->misses.load(std::memory_order_relaxed);
    total.recycled += cell->recycled.load(std::memory_order_relaxed);
    total.evicted += cell->evicted.load(std::memory_order_relaxed);
    total.evicted_bytes +=
        cell->evicted_bytes.load(std::memory_order_relaxed);
    total.shelf_returns +=
        cell->shelf_returns.load(std::memory_order_relaxed);
    total.shelf_refills +=
        cell->shelf_refills.load(std::memory_order_relaxed);
    total.pooled_buffers +=
        cell->pooled_buffers.load(std::memory_order_relaxed);
    total.pooled_bytes += cell->pooled_bytes.load(std::memory_order_relaxed);
  }
  {
    Shelf& s = shelf();
    const MutexLock shelf_lock(s.mutex);
    total.shelf_buffers = s.buffers.size();
    total.shelf_bytes = s.bytes;
  }
  return total;
}

std::size_t drain_buffer_shelf() noexcept {
  Shelf& s = shelf();
  const MutexLock lock(s.mutex);
  const std::size_t dropped = s.buffers.size();
  s.buffers.clear();  // keeps the reserved slot capacity, frees the storage
  s.bytes = 0;
  return dropped;
}

}  // namespace km
