// Minimal command-line option parsing for examples and tools.
// Supports --name=value and --name value forms plus --help generation.
//
// Error handling is strict so CLI mistakes fail loudly instead of
// silently running with a default: a flag given twice throws at parse
// time, a malformed or missing numeric value throws from the typed
// getter, and tools can reject unknown flags with reject_unknown().
// All errors are OptionsError with a message naming the offending flag.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace km {

/// Thrown on CLI misuse: duplicate flag, malformed value, missing value,
/// or (via reject_unknown) an unrecognized flag.
class OptionsError : public std::runtime_error {
 public:
  explicit OptionsError(const std::string& what) : std::runtime_error(what) {}
};

class Options {
 public:
  /// Throws OptionsError if the same --flag appears more than once.
  Options(int argc, char** argv);

  /// True if --name was present at all (with or without a value).
  bool has(const std::string& name) const;

  /// Typed getters return `fallback` when --name is absent, and throw
  /// OptionsError when it is present with a missing or malformed value
  /// (get_uint additionally rejects negative values).
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Throws OptionsError if any parsed flag is not in `known`; the
  /// message lists the offending flag and the accepted set.
  void reject_unknown(const std::vector<std::string>& known) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  const std::string* find_required_value(const std::string& name,
                                         const char* type_name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace km
