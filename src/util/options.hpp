// Minimal command-line option parsing for examples and tools.
// Supports --name=value and --name value forms plus --help generation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace km {

class Options {
 public:
  Options(int argc, char** argv);

  /// True if --name was present at all (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace km
