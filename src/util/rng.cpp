#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace km {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int s) noexcept {
  return (x << s) | (x >> (64 - s));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : Rng(mix64(seed, stream)) {}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::real01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 32) {
    std::uint64_t c = 0;
    for (std::uint64_t i = 0; i < n; ++i) c += bernoulli(p) ? 1 : 0;
    return c;
  }
  std::binomial_distribution<std::uint64_t> dist(n, p);
  return dist(*this);
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t bound,
                                                std::size_t count) {
  assert(count <= bound);
  // Floyd's algorithm produces `count` distinct values in O(count) draws.
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t j = bound - count; j < bound; ++j) {
    const std::uint64_t t = below(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace km
