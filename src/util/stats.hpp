// Lightweight descriptive statistics used by the metrics layer and the
// benchmark harness (load balance checks, concentration-bound
// verifications, per-machine maxima).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace km {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// max/mean; 1.0 means perfectly balanced. Used for RVP balance checks.
  double imbalance() const noexcept;

  std::string summary() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample (linear interpolation). q in [0,1].
double quantile(std::vector<double> xs, double q) noexcept;

/// Convenience: accumulate a span at once.
Accumulator summarize(std::span<const double> xs) noexcept;

/// Fixed-width log2 histogram for load distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t x) noexcept;
  std::string render(std::size_t width = 40) const;
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
};

}  // namespace km
