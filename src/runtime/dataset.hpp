// Dataset provider for the runtime: resolves a spec string like
// "gnp:n=1000,p=0.01" into the concrete input a workload consumes.
//
// Grammar:   family[:key=value[,key=value...]]
//
//   gnp:n=..,p=..            Erdős–Rényi G(n,p)
//   rmat:n=..[,m=..,a=..,b=..,c=..]   R-MAT (Graph500 mix defaults)
//   ba:n=..[,attach=..]      Barabási–Albert preferential attachment
//   ws:n=..[,degree=..,beta=..]       Watts–Strogatz small world
//   star:n=..                star graph (PageRank congestion hot spot)
//   path:n=..  cycle:n=..  complete:n=..      structured graphs
//   grid:rows=..,cols=..     2-D grid
//   bipartite:a=..,b=..,p=.. random bipartite (triangle-free control)
//   lbpr:q=..                the paper's PageRank lower-bound gadget H
//                            (directed, n = 4q+1; Figure 1 / Section 2.3)
//   keys:n=..                n uniform 64-bit keys (sorting input)
//   file:PATH                SNAP-style edge list from disk
//
// Every graph family also accepts maxw=.. (max random edge weight, used
// only when the workload needs a weighted graph) and the provider derives
// all randomness from the caller's seed, so a (spec, seed) pair is a
// reproducible dataset identity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace km {

class DatasetError : public std::runtime_error {
 public:
  explicit DatasetError(const std::string& what) : std::runtime_error(what) {}
};

/// What a workload consumes; the provider converts where possible
/// (undirected -> directed via both arc directions, undirected ->
/// weighted via seeded random weights).
enum class DatasetKind {
  kUndirected,
  kDirected,
  kWeighted,
  kKeys,
};

std::string_view to_string(DatasetKind kind) noexcept;

/// A parsed (but not yet materialized) dataset description.
struct DatasetSpec {
  std::string family;
  /// key=value parameters in the order given (insertion order is kept so
  /// str() round-trips).  For file: the single parameter is ("path", ..).
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses "family:k=v,k=v".  Throws DatasetError on syntax errors;
  /// family/parameter *semantics* are validated at load time.
  static DatasetSpec parse(std::string_view text);

  bool has(std::string_view key) const;
  std::string get_string(std::string_view key, std::string_view fallback) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;

  /// Sets or overrides a parameter (used by `km_run sweep` to drive n).
  void set(std::string_view key, std::string value);

  /// Canonical re-serialization: family:k=v,k=v.
  std::string str() const;
};

/// A materialized input.  `kind` selects which member is populated.
struct Dataset {
  std::string spec;  ///< canonical spec string this was built from
  DatasetKind kind = DatasetKind::kUndirected;
  Graph graph;                      ///< kUndirected
  Digraph digraph;                  ///< kDirected
  WeightedGraph weighted;           ///< kWeighted
  std::vector<std::uint64_t> keys;  ///< kKeys
  std::size_t n = 0;  ///< vertices (or number of keys for kKeys)
  std::size_t m = 0;  ///< edges/arcs (0 for kKeys)
};

/// Materializes `spec` as the `required` kind, deriving randomness from
/// `seed`.  Throws DatasetError for unknown families, missing/unknown
/// parameters, or impossible conversions (e.g. a directed family for an
/// undirected-only workload).
Dataset load_dataset(const DatasetSpec& spec, DatasetKind required,
                     std::uint64_t seed);
Dataset load_dataset(std::string_view spec_text, DatasetKind required,
                     std::uint64_t seed);

/// One-line-per-family grammar description for --help output.
std::string dataset_grammar_help();

}  // namespace km
