#include "runtime/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace km {

RunResult Workload::make_result(const Dataset& dataset,
                                const RunParams& params,
                                Metrics metrics) const {
  RunResult result;
  result.workload = std::string(name());
  result.dataset_spec = dataset.spec;
  result.dataset_kind = dataset.kind;
  result.n = dataset.n;
  result.m = dataset.m;
  result.params = params;
  result.metrics = std::move(metrics);
  return result;
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(std::unique_ptr<Workload> workload) {
  const std::string name(workload->name());
  if (name.empty()) {
    throw std::logic_error("WorkloadRegistry: empty workload name");
  }
  if (!by_name_.emplace(name, std::move(workload)).second) {
    throw std::logic_error("WorkloadRegistry: duplicate workload '" + name +
                           "'");
  }
}

const Workload* WorkloadRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

std::vector<const Workload*> WorkloadRegistry::list() const {
  std::vector<const Workload*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, workload] : by_name_) out.push_back(workload.get());
  return out;  // std::map iteration order = sorted by name
}

WorkloadRegistrar::WorkloadRegistrar(std::unique_ptr<Workload> workload) {
  WorkloadRegistry::instance().add(std::move(workload));
}

VertexPartition runtime_partition(std::size_t n, std::size_t k,
                                  std::uint64_t seed) {
  return VertexPartition::by_hash(n, k, mix64(seed, 0x9A27'11F3ULL));
}

CheckResult check_component_labels(const Graph& g,
                                   const std::vector<std::uint32_t>& labels,
                                   std::size_t num_components) {
  const auto ref = connected_components(g);
  // BFS labels are [0, #components), so the count falls out of the
  // labeling itself — no second traversal.
  std::size_t ref_count = 0;
  for (const std::uint32_t l : ref) {
    ref_count = std::max<std::size_t>(ref_count, std::size_t{l} + 1);
  }
  CheckResult check;
  check.performed = true;
  check.ok = num_components == ref_count && same_labeling(labels, ref);
  check.detail = "distributed " + std::to_string(num_components) +
                 " components vs BFS " + std::to_string(ref_count) +
                 (check.ok ? ", labelings agree" : ", labelings DIFFER");
  return check;
}

RunResult run_workload(const Workload& workload, const Dataset& dataset,
                       const RunParams& params) {
  if (dataset.kind != workload.input_kind()) {
    throw std::invalid_argument(
        "run_workload: workload '" + std::string(workload.name()) +
        "' needs a " + std::string(to_string(workload.input_kind())) +
        " dataset, got " + std::string(to_string(dataset.kind)));
  }
  if (params.k < 2) {
    throw std::invalid_argument("run_workload: k must be >= 2");
  }
  RunParams resolved = params;
  if (resolved.bandwidth_bits == 0) {
    resolved.bandwidth_bits =
        EngineConfig::default_bandwidth(std::max<std::size_t>(dataset.n, 2));
  }
  // Framing auto-derives from the *resolved* bandwidth so the serialized
  // parameter cell (and the golden snapshots diffing it) always records
  // the concrete threshold, never the sentinel.
  if (resolved.frame_bytes == kFramedPayloadAuto) {
    resolved.frame_bytes =
        framed_payload_default_bytes(resolved.bandwidth_bits);
  }
  Engine engine(resolved.k,
                {.bandwidth_bits = resolved.bandwidth_bits,
                 .seed = resolved.seed,
                 .record_timeline = resolved.record_timeline,
                 .trace = resolved.trace,
                 .trace_links = resolved.trace_links,
                 .framed_payload_max_bytes = resolved.frame_bytes,
                 .workers = resolved.workers});
  RunResult result = workload.run(engine, dataset, resolved);
  result.trace = engine.trace_session();
  return result;
}

}  // namespace km
