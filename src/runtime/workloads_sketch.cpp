// Workload adapters for the sketch-based algorithms in
// core/connectivity.hpp: sketch connectivity (Õ(n/k²) rounds), the
// centralized Õ(n/k) baseline it is measured against, and exact MST via
// per-component threshold search over linear sketches.  Checks run the
// sequential references: BFS components for the connectivity pair,
// Kruskal for the MST (which must match edge for edge — the sketch key
// order is exactly mst_edge_less).
#include <string>

#include "core/connectivity.hpp"
#include "graph/weighted.hpp"
#include "runtime/workload.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

SketchConnectivityConfig sketch_config_for(const RunParams& params) {
  SketchConnectivityConfig config;
  config.seed = mix64(params.seed, 0x5ce7'c401ULL);
  return config;
}

// ---- Sketch connectivity ----

class ConnectivityWorkload final : public Workload {
 public:
  std::string_view name() const override { return "connectivity"; }
  std::string_view description() const override {
    return "connectivity via l0-sampling linear sketches (AGM/[51]), "
           "O~(n/k^2) rounds independent of m; checked against BFS";
  }
  DatasetKind input_kind() const override { return DatasetKind::kUndirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const auto dist = sketch_connectivity(dataset.graph, partition, engine,
                                          sketch_config_for(params));
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("num_components", std::uint64_t{dist.num_components});
    result.add_output("phases", std::uint64_t{dist.phases});
    if (params.check) {
      result.check = check_component_labels(dataset.graph, dist.labels,
                                            dist.num_components);
    }
    return result;
  }
};

// ---- Centralized baseline ----

class ConnectivityBaselineWorkload final : public Workload {
 public:
  std::string_view name() const override { return "connectivity_baseline"; }
  std::string_view description() const override {
    return "centralize-all-edges connectivity baseline, O~(n/k) rounds; "
           "checked against BFS";
  }
  DatasetKind input_kind() const override { return DatasetKind::kUndirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const auto dist =
        centralized_connectivity_baseline(dataset.graph, partition, engine);
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("num_components", std::uint64_t{dist.num_components});
    result.add_output("phases", std::uint64_t{dist.phases});
    if (params.check) {
      result.check = check_component_labels(dataset.graph, dist.labels,
                                            dist.num_components);
    }
    return result;
  }
};

// ---- Sketch MST ----

class MstSketchWorkload final : public Workload {
 public:
  std::string_view name() const override { return "mst_sketch"; }
  std::string_view description() const override {
    return "exact MST via sketch threshold search over exponentially "
           "refined weight keys; checked against Kruskal";
  }
  DatasetKind input_kind() const override { return DatasetKind::kWeighted; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const auto dist = sketch_mst(dataset.weighted, partition, engine,
                                 sketch_config_for(params));
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("total_weight", dist.total_weight);
    result.add_output("mst_edges", std::uint64_t{dist.edges.size()});
    result.add_output("phases", std::uint64_t{dist.phases});
    if (params.check) {
      const MstResult ref = kruskal_mst(dataset.weighted);
      result.check.performed = true;
      result.check.ok =
          dist.total_weight == ref.total_weight && dist.edges == ref.edges;
      result.check.detail =
          "sketch weight " + std::to_string(dist.total_weight) +
          " vs Kruskal " + std::to_string(ref.total_weight) + ", " +
          std::to_string(dist.edges.size()) + "/" +
          std::to_string(ref.edges.size()) + " edges match";
    }
    return result;
  }
};

const WorkloadRegistrar connectivity_registrar{
    std::make_unique<ConnectivityWorkload>()};
const WorkloadRegistrar connectivity_baseline_registrar{
    std::make_unique<ConnectivityBaselineWorkload>()};
const WorkloadRegistrar mst_sketch_registrar{
    std::make_unique<MstSketchWorkload>()};

}  // namespace
}  // namespace km
