#include "runtime/results.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "util/json.hpp"

namespace km {

std::string run_result_to_json(const RunResult& result, int indent) {
  JsonWriter w(indent);
  w.begin_object();
  w.field("schema", "km.run_result/v1");
  w.field("workload", result.workload);

  w.key("dataset").begin_object();
  w.field("spec", result.dataset_spec);
  w.field("kind", to_string(result.dataset_kind));
  w.field("n", std::uint64_t{result.n});
  w.field("m", std::uint64_t{result.m});
  w.end_object();

  // Only knobs that shape the result belong in `params` (it is the
  // golden snapshots' parameter cell): trace/trace_links and workers are
  // deliberately absent — tracing never perturbs rounds/bits, and the
  // executor's worker count is pure scheduling (byte-identical documents
  // at every setting; the Determinism suite sweeps it).
  w.key("params").begin_object();
  w.field("k", std::uint64_t{result.params.k});
  w.field("bandwidth_bits", result.params.bandwidth_bits);
  w.field("seed", result.params.seed);
  w.field("frame_bytes", std::uint64_t{result.params.frame_bytes});
  w.field("timeline", result.params.record_timeline);
  w.end_object();

  w.key("check").begin_object();
  w.field("performed", result.check.performed);
  w.field("ok", result.check.ok);
  w.field("detail", result.check.detail);
  w.end_object();

  w.key("outputs").begin_object();
  for (const auto& [name, value] : result.outputs) {
    w.key(name);
    std::visit([&w](const auto& v) { w.value(v); }, value);
  }
  w.end_object();

  const Metrics& metrics = result.metrics;
  w.key("metrics").begin_object();
  w.field("rounds", metrics.rounds);
  w.field("supersteps", metrics.supersteps);
  w.field("messages", metrics.messages);
  w.field("bits", metrics.bits);
  w.field("max_link_bits_superstep", metrics.max_link_bits_superstep);
  w.field("dropped_messages", metrics.dropped_messages);
  w.field("max_send_bits", metrics.max_send_bits());
  w.field("max_recv_bits", metrics.max_recv_bits());
  w.field("wall_ms", metrics.wall_ms);
  // Wall-time block, present only on traced runs.  Like wall_ms it is
  // not part of the deterministic run identity: golden diffing strips
  // the whole `timing` object (tests/test_golden_metrics.cpp documents
  // the exempt-key set).
  if (metrics.timing.enabled) {
    w.key("timing").begin_object();
    w.field("barrier_wait_max_ms", metrics.timing.barrier_wait_max_ms);
    w.field("barrier_wait_mean_ms", metrics.timing.barrier_wait_mean_ms);
    w.field("barrier_wait_skew", metrics.timing.barrier_wait_skew);
    w.key("per_machine").begin_array();
    for (const MachinePhaseMs& pm : metrics.timing.per_machine) {
      w.begin_object();
      w.field("machine", pm.machine);
      w.field("compute_ms", pm.compute_ms);
      w.field("send_ms", pm.send_ms);
      w.field("barrier_wait_ms", pm.barrier_wait_ms);
      w.field("deliver_ms", pm.deliver_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.key("timeline").begin_array();
  for (const SuperstepStats& s : metrics.timeline) {
    w.begin_object();
    w.field("superstep", s.superstep);
    w.field("rounds", s.rounds);
    w.field("messages", s.messages);
    w.field("bits", s.bits);
    w.field("max_link_bits", s.max_link_bits);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

void write_run_result_json(const std::string& path, const RunResult& result,
                           int indent) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << run_result_to_json(result, indent) << '\n';
  if (!out) throw std::runtime_error("write to '" + path + "' failed");
}

std::string run_result_summary(const RunResult& result) {
  std::ostringstream os;
  os << result.workload << " on " << result.dataset_spec
     << " (n=" << result.n << ", m=" << result.m
     << ", k=" << result.params.k << ", B=" << result.params.bandwidth_bits
     << ", seed=" << result.params.seed << "): rounds=" << result.metrics.rounds
     << " messages=" << result.metrics.messages
     << " bits=" << result.metrics.bits;
  if (result.check.performed) {
    os << " check=" << (result.check.ok ? "OK" : "FAILED") << " ("
       << result.check.detail << ")";
  }
  return os.str();
}

}  // namespace km
