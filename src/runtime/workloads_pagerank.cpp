// Workload adapters for distributed PageRank: Algorithm 1 (the paper's
// O~(n/k^2) light/heavy-vertex algorithm) and the Conversion-Theorem
// baseline.  Both are Monte Carlo, so the check compares the estimate's
// L1 distance to the exact expected-visit fixpoint against a tolerance
// (the estimator concentrates as c*log(n) tokens per vertex).
#include <string>

#include "core/pagerank.hpp"
#include "graph/pagerank_ref.hpp"
#include "runtime/workload.hpp"

namespace km {
namespace {

constexpr double kEps = 0.2;   ///< reset probability
constexpr double kC = 16.0;    ///< token multiplier (c * ln n per vertex)
constexpr double kL1Tolerance = 0.15;

template <bool kBaseline>
class PageRankWorkload final : public Workload {
 public:
  std::string_view name() const override {
    return kBaseline ? "pagerank_baseline" : "pagerank";
  }
  std::string_view description() const override {
    return kBaseline
               ? "naive token-forwarding PageRank baseline, O~(n/k) rounds; "
                 "checked against the expected-visit fixpoint"
               : "Algorithm 1 PageRank (light/heavy vertex split), "
                 "O~(n/k^2) rounds; checked against the expected-visit "
                 "fixpoint";
  }
  DatasetKind input_kind() const override { return DatasetKind::kDirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const PageRankConfig config{.eps = kEps, .c = kC};
    const PageRankResult dist =
        kBaseline ? distributed_pagerank_baseline(dataset.digraph, partition,
                                                  engine, config)
                  : distributed_pagerank(dataset.digraph, partition, engine,
                                         config);
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("iterations", std::uint64_t{dist.iterations});
    result.add_output("tokens_per_vertex", dist.initial_tokens_per_vertex);
    if (params.check) {
      const auto ref =
          expected_visit_pagerank(dataset.digraph, {.eps = kEps});
      const double err = l1_distance(dist.estimates, ref);
      result.add_output("l1_error", err);
      result.check.performed = true;
      result.check.ok = err <= kL1Tolerance;
      result.check.detail =
          "L1 distance to expected-visit fixpoint " + std::to_string(err) +
          " (tolerance " + std::to_string(kL1Tolerance) + ")";
    }
    return result;
  }
};

const WorkloadRegistrar pagerank_registrar{
    std::make_unique<PageRankWorkload<false>>()};
const WorkloadRegistrar pagerank_baseline_registrar{
    std::make_unique<PageRankWorkload<true>>()};

}  // namespace
}  // namespace km
