// Process-wide dataset/partition cache: materialize each (spec, kind,
// seed) cell once, serve every later request from memory.
//
// Kills the cold-start-per-run bug class: `km_run sweep` used to rebuild
// the same generated graph for every grid cell, and every km_serve
// scenario request would have paid the same tax.  The cache key is the
// *canonicalized* spec (family + parameters sorted by key) so spelling
// variants like "gnp:p=0.08,n=64" and "gnp:n=64,p=0.08" share one entry
// — but the cached Dataset keeps the spec string of the first
// materializer, so emitted documents and sweep filenames are
// byte-identical to the uncached path.
//
// Concurrency: one km::Mutex guards the whole cache (annotated for the
// `analyze` preset's -Werror=thread-safety).  Hits are O(log entries)
// under the lock; misses materialize *while holding it*, deliberately —
// generation is milliseconds at simulator scale, and serializing builds
// means concurrent requests for the same cell never build twice.
// Entries are handed out as shared_ptr<const Dataset>, so eviction never
// invalidates a dataset a run is still using.
//
// The cache assumes dataset inputs are immutable for the process
// lifetime; a `file:` dataset re-written on disk is served from the
// cached copy until clear().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "runtime/dataset.hpp"
#include "util/annotations.hpp"

namespace km {

/// Monotonic counters plus current-occupancy gauges, Metrics::summary
/// style.  Snapshot with counters(), diff with since().
struct DatasetCacheCounters {
  std::uint64_t hits = 0;       ///< served from memory
  std::uint64_t misses = 0;     ///< materialized via load_dataset
  std::uint64_t evictions = 0;  ///< entries dropped to fit the budget
  std::uint64_t entries = 0;    ///< gauge: live entries
  std::uint64_t bytes = 0;      ///< gauge: estimated resident bytes

  /// Delta of the monotonic counters against `base`; the gauges carry
  /// this snapshot's values (a delta of occupancy is meaningless).
  DatasetCacheCounters since(const DatasetCacheCounters& base) const noexcept;

  /// One key=value line, e.g.
  /// "dataset_cache: hits=5 misses=1 evictions=0 entries=1 bytes=12640".
  std::string summary() const;
};

class DatasetCache {
 public:
  /// Default byte budget: generous for simulator-scale graphs, small
  /// enough that a sweep over huge inputs still turns over.
  static constexpr std::size_t kDefaultByteBudget = 256u << 20;

  explicit DatasetCache(std::size_t byte_budget = kDefaultByteBudget);

  /// The process-wide cache shared by km_run and km_serve.
  static DatasetCache& instance();

  /// Cache key: canonical spec (params sorted by key) + required kind +
  /// seed.  Exposed for tests and the result store, which keys scenario
  /// cells by the same canonical dataset identity.
  static std::string canonical_key(const DatasetSpec& spec, DatasetKind kind,
                                   std::uint64_t seed);

  /// The cached dataset for the cell, materializing on first use.
  /// Throws DatasetError exactly like load_dataset on bad specs.
  std::shared_ptr<const Dataset> get(const DatasetSpec& spec,
                                     DatasetKind required, std::uint64_t seed)
      KM_EXCLUDES(mu_);
  std::shared_ptr<const Dataset> get(std::string_view spec_text,
                                     DatasetKind required, std::uint64_t seed)
      KM_EXCLUDES(mu_);

  DatasetCacheCounters counters() const KM_EXCLUDES(mu_);

  /// Drops every entry (handed-out shared_ptrs stay valid).  Counters
  /// keep their monotonic values; gauges reset.
  void clear() KM_EXCLUDES(mu_);

  /// Shrinks (or grows) the budget, evicting immediately if needed.
  void set_byte_budget(std::size_t bytes) KM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const Dataset> dataset;
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  void evict_to_fit(std::string_view keep_key) KM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ KM_GUARDED_BY(mu_);
  std::size_t byte_budget_ KM_GUARDED_BY(mu_);
  std::uint64_t bytes_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ KM_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ KM_GUARDED_BY(mu_) = 0;
};

/// Estimated resident bytes of a materialized dataset (CSR arrays, weights,
/// keys).  An estimate is all eviction needs; it must only be monotone in
/// dataset size.
std::uint64_t estimate_dataset_bytes(const Dataset& ds) noexcept;

/// Drop-in for load_dataset() that routes through DatasetCache::instance().
std::shared_ptr<const Dataset> load_dataset_cached(std::string_view spec_text,
                                                   DatasetKind required,
                                                   std::uint64_t seed);

}  // namespace km
