#include "runtime/dataset_cache.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace km {

DatasetCacheCounters DatasetCacheCounters::since(
    const DatasetCacheCounters& base) const noexcept {
  DatasetCacheCounters delta;
  delta.hits = hits - base.hits;
  delta.misses = misses - base.misses;
  delta.evictions = evictions - base.evictions;
  delta.entries = entries;
  delta.bytes = bytes;
  return delta;
}

std::string DatasetCacheCounters::summary() const {
  return "dataset_cache: hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions) +
         " entries=" + std::to_string(entries) +
         " bytes=" + std::to_string(bytes);
}

DatasetCache::DatasetCache(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

DatasetCache& DatasetCache::instance() {
  static DatasetCache cache;
  return cache;
}

std::string DatasetCache::canonical_key(const DatasetSpec& spec,
                                        DatasetKind kind, std::uint64_t seed) {
  // Sort parameters by key so spelling variants of the same cell
  // collide; DatasetSpec::set keeps keys unique, so ties cannot happen.
  std::vector<std::pair<std::string, std::string>> params = spec.params;
  std::sort(params.begin(), params.end());
  std::string key = spec.family;
  for (const auto& [k, v] : params) {
    key += '\x1f';  // unit separator: cannot appear in spec text
    key += k;
    key += '=';
    key += v;
  }
  key += '\x1f';
  key += to_string(kind);
  key += "\x1f" "seed=" + std::to_string(seed);
  return key;
}

std::shared_ptr<const Dataset> DatasetCache::get(const DatasetSpec& spec,
                                                 DatasetKind required,
                                                 std::uint64_t seed) {
  const std::string key = canonical_key(spec, required, seed);
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    it->second.last_use = ++tick_;
    return it->second.dataset;
  }
  ++misses_;
  // Materialize under the lock: builds are milliseconds at simulator
  // scale, and this guarantees a cell is never generated twice even
  // under concurrent km_serve requests.
  auto dataset =
      std::make_shared<const Dataset>(load_dataset(spec, required, seed));
  Entry entry;
  entry.dataset = dataset;
  entry.bytes = estimate_dataset_bytes(*dataset);
  entry.last_use = ++tick_;
  bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  evict_to_fit(key);
  return dataset;
}

std::shared_ptr<const Dataset> DatasetCache::get(std::string_view spec_text,
                                                 DatasetKind required,
                                                 std::uint64_t seed) {
  return get(DatasetSpec::parse(spec_text), required, seed);
}

DatasetCacheCounters DatasetCache::counters() const {
  MutexLock lock(mu_);
  DatasetCacheCounters out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

void DatasetCache::clear() {
  MutexLock lock(mu_);
  entries_.clear();
  bytes_ = 0;
}

void DatasetCache::set_byte_budget(std::size_t bytes) {
  MutexLock lock(mu_);
  byte_budget_ = bytes;
  evict_to_fit({});
}

void DatasetCache::evict_to_fit(std::string_view keep_key) {
  // LRU by last_use; linear scan is fine at cache cardinality (one entry
  // per distinct dataset cell).  The just-inserted entry is never
  // evicted, so a single over-budget dataset is kept rather than
  // thrashed.
  while (bytes_ > byte_budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

std::uint64_t estimate_dataset_bytes(const Dataset& ds) noexcept {
  // CSR-shaped upper bound; eviction only needs a monotone estimate.
  const std::uint64_t n = ds.n;
  const std::uint64_t m = ds.m;
  std::uint64_t bytes = sizeof(Dataset) + ds.spec.size();
  switch (ds.kind) {
    case DatasetKind::kUndirected: bytes += (n + 1) * 8 + 2 * m * 8; break;
    case DatasetKind::kDirected: bytes += (n + 1) * 8 + m * 8; break;
    case DatasetKind::kWeighted: bytes += (n + 1) * 8 + 2 * m * 16; break;
    case DatasetKind::kKeys: bytes += n * 8; break;
  }
  return bytes;
}

std::shared_ptr<const Dataset> load_dataset_cached(std::string_view spec_text,
                                                   DatasetKind required,
                                                   std::uint64_t seed) {
  return DatasetCache::instance().get(spec_text, required, seed);
}

}  // namespace km
