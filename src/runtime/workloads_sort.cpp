// Workload adapter for distributed sample sort (Section 1.3's O~(n/k^2)
// sorting application of the General Lower Bound Theorem), checked
// against std::sort: the concatenated per-machine blocks must equal the
// globally sorted key sequence with exact order-statistic boundaries.
#include <algorithm>
#include <string>
#include <vector>

#include "core/sorting.hpp"
#include "runtime/workload.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

class SortWorkload final : public Workload {
 public:
  std::string_view name() const override { return "sort"; }
  std::string_view description() const override {
    return "distributed sample sort into exact per-machine order-statistic "
           "blocks, O~(n/k^2) rounds; checked against std::sort";
  }
  DatasetKind input_kind() const override { return DatasetKind::kKeys; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    SortConfig config;
    config.placement_seed = mix64(params.seed, 0xBEEF'0001ULL);
    const SortResult dist =
        distributed_sample_sort(dataset.keys, engine, config);
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("keys", std::uint64_t{dataset.keys.size()});
    std::size_t max_block = 0;
    for (const auto& block : dist.blocks) {
      max_block = std::max(max_block, block.size());
    }
    result.add_output("max_block", std::uint64_t{max_block});
    if (params.check) {
      std::vector<std::uint64_t> ref = dataset.keys;
      std::sort(ref.begin(), ref.end());
      std::vector<std::uint64_t> merged;
      merged.reserve(ref.size());
      for (const auto& block : dist.blocks) {
        merged.insert(merged.end(), block.begin(), block.end());
      }
      bool boundaries_ok = dist.offsets.size() == dist.blocks.size() + 1;
      if (boundaries_ok) {
        for (std::size_t i = 0; i < dist.blocks.size(); ++i) {
          boundaries_ok &= dist.offsets[i + 1] - dist.offsets[i] ==
                           dist.blocks[i].size();
        }
      }
      result.check.performed = true;
      result.check.ok = merged == ref && boundaries_ok;
      result.check.detail =
          "concatenated blocks " +
          std::string(merged == ref ? "equal" : "DIFFER from") +
          " std::sort order; block boundaries " +
          (boundaries_ok ? "exact" : "WRONG");
    }
    return result;
  }
};

const WorkloadRegistrar sort_registrar{std::make_unique<SortWorkload>()};

}  // namespace
}  // namespace km
