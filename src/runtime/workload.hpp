// The runtime's workload registry: one named, uniformly-invokable entry
// point per k-machine algorithm.
//
// A Workload adapter binds an algorithm from src/core/ to (a) the input
// kind it consumes, (b) the sequential reference checker from src/graph/
// that validates its output, and (c) the scalar outputs worth reporting.
// Adapters self-register into the process-wide WorkloadRegistry via
// static WorkloadRegistrar objects (km_runtime is an OBJECT library so
// the linker cannot drop them), which makes `km_run list` and tests see
// every workload without a central enumeration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "runtime/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"

namespace km {

/// Knobs shared by every workload run.
struct RunParams {
  std::size_t k = 8;  ///< number of machines
  /// Per-link bandwidth B in bits per round; 0 = the paper's default
  /// B = Theta(log^2 n), resolved against the dataset's n at run time.
  std::uint64_t bandwidth_bits = 0;
  std::uint64_t seed = 1;  ///< drives dataset, partition, and engine RNGs
  /// Message-plane framing threshold (EngineConfig::framed_payload_max_bytes);
  /// 0 disables framing, kFramedPayloadAuto (the default) derives the
  /// threshold from the resolved bandwidth — run_workload() replaces the
  /// sentinel with framed_payload_default_bytes(B) so serialized params
  /// always carry the concrete value.  Transport policy only — never
  /// changes metrics.
  std::size_t frame_bytes = kFramedPayloadAuto;
  bool record_timeline = true;  ///< per-superstep breakdown in the result
  bool check = true;  ///< verify against the sequential reference
  /// Wall-time tracing (EngineConfig::trace): phase spans + counter
  /// events, surfaced as RunResult::trace and the result's `timing`
  /// block.  NOT part of the run's parameter cell — rounds/bits are
  /// byte-identical either way (tests/test_trace.cpp), so these two are
  /// deliberately absent from the serialized `params` object and golden
  /// snapshots never see them.
  bool trace = false;
  bool trace_links = false;  ///< with trace: per-superstep k x k bit matrix
  /// Worker threads the executor multiplexes the k machine fibers over
  /// (EngineConfig::workers); 0 = hardware concurrency.  Execution
  /// policy, not a simulation parameter: results are byte-identical at
  /// every setting (the Determinism suite proves it), so like `trace` it
  /// is deliberately absent from the serialized `params` object and
  /// golden snapshots never see it.
  std::size_t workers = 0;
};

/// Outcome of the sequential-reference verification.
struct CheckResult {
  bool performed = false;
  bool ok = true;
  std::string detail;  ///< human-readable what/why (also on success)
};

/// Workload-specific scalar outputs, serialized in insertion order.
using OutputValue =
    std::variant<std::uint64_t, std::int64_t, double, bool, std::string>;

struct RunResult {
  std::string workload;
  std::string dataset_spec;
  DatasetKind dataset_kind = DatasetKind::kUndirected;
  std::size_t n = 0;  ///< dataset vertices (or keys)
  std::size_t m = 0;  ///< dataset edges/arcs
  RunParams params;   ///< as executed, bandwidth_bits resolved (never 0)
  Metrics metrics;
  CheckResult check;
  std::vector<std::pair<std::string, OutputValue>> outputs;
  /// The run's trace when RunParams::trace was set (null otherwise);
  /// shared with the engine's session so it outlives it.  Export via
  /// TraceSession::write_chrome_trace / write_link_matrix_json.
  std::shared_ptr<const TraceSession> trace;

  void add_output(std::string name, OutputValue value) {
    outputs.emplace_back(std::move(name), std::move(value));
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual DatasetKind input_kind() const = 0;

  /// Runs the algorithm on `engine` (already sized to params.k).  The
  /// dataset's kind matches input_kind() — run_workload() enforces it.
  virtual RunResult run(Engine& engine, const Dataset& dataset,
                        const RunParams& params) const = 0;

 protected:
  /// Fills the bookkeeping fields every adapter shares.
  RunResult make_result(const Dataset& dataset, const RunParams& params,
                        Metrics metrics) const;
};

class WorkloadRegistry {
 public:
  /// The process-wide registry (function-local static: safe to use from
  /// static initializers in any translation unit).
  static WorkloadRegistry& instance();

  /// Throws std::logic_error if the name is already taken.
  void add(std::unique_ptr<Workload> workload);

  /// nullptr when absent.
  const Workload* find(std::string_view name) const;

  /// All workloads, sorted by name.
  std::vector<const Workload*> list() const;

 private:
  std::map<std::string, std::unique_ptr<Workload>, std::less<>> by_name_;
};

/// Self-registration hook: `static WorkloadRegistrar r{std::make_unique<X>()};`
struct WorkloadRegistrar {
  explicit WorkloadRegistrar(std::unique_ptr<Workload> workload);
};

/// Convenience driver: loads nothing — the dataset is the caller's — but
/// verifies the kind matches, resolves the default bandwidth, builds the
/// Engine, and delegates to workload.run().
RunResult run_workload(const Workload& workload, const Dataset& dataset,
                       const RunParams& params);

/// Partition used by every graph workload: the paper's random vertex
/// partition realized by hashing, derived from the run seed.
VertexPartition runtime_partition(std::size_t n, std::size_t k,
                                  std::uint64_t seed);

/// Shared reference check for the component-labeling workload family
/// (components, connectivity, connectivity_baseline): compares a
/// distributed labeling against the sequential BFS reference.
CheckResult check_component_labels(const Graph& g,
                                   const std::vector<std::uint32_t>& labels,
                                   std::size_t num_components);

}  // namespace km
