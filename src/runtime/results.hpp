// Machine-readable results: serializes a RunResult to schema-stable JSON
// (schema id "km.run_result/v1").  Key order is fixed, numbers are exact
// (std::to_chars round-trip for doubles), and the only fields that vary
// between identical-seed runs are metrics.wall_ms and the optional
// metrics.timing block (both wall-time, both exempt from golden diffs —
// see tests/test_golden_metrics.cpp for the documented exempt-key set).
//
// Document shape:
//   {
//     "schema": "km.run_result/v1",
//     "workload": "mst",
//     "dataset": {"spec": "gnp:n=1000,p=0.01", "kind": "weighted_graph",
//                 "n": 1000, "m": 5034},
//     "params": {"k": 8, "bandwidth_bits": 1600, "seed": 42,
//                "frame_bytes": 256, "timeline": true},
//     "check": {"performed": true, "ok": true, "detail": "..."},
//     "outputs": {"total_weight": 123456, ...},
//     "metrics": {"rounds": ..., "supersteps": ..., "messages": ...,
//                 "bits": ..., "max_link_bits_superstep": ...,
//                 "dropped_messages": ..., "max_send_bits": ...,
//                 "max_recv_bits": ..., "wall_ms": ...,
//                 "timing": {            // traced runs only
//                   "barrier_wait_max_ms": ...,
//                   "barrier_wait_mean_ms": ...,
//                   "barrier_wait_skew": ...,
//                   "per_machine": [{"machine": 0, "compute_ms": ...,
//                                    "send_ms": ..., "barrier_wait_ms": ...,
//                                    "deliver_ms": ...}, ...]},
//                 "timeline": [{"superstep": 0, "rounds": ...,
//                               "messages": ..., "bits": ...,
//                               "max_link_bits": ...}, ...]}
//   }
//
// RunParams::trace / trace_links deliberately do NOT appear under
// "params": they are observation knobs, not part of the parameter cell
// that identifies a deterministic run.
#pragma once

#include <string>

#include "runtime/workload.hpp"

namespace km {

/// JSON document for `result`; indent=0 gives compact one-line output.
std::string run_result_to_json(const RunResult& result, int indent = 2);

/// Writes run_result_to_json() to `path` (plus a trailing newline).
/// Throws std::runtime_error when the file cannot be written.
void write_run_result_json(const std::string& path, const RunResult& result,
                           int indent = 2);

/// One-line human summary for terminal output.
std::string run_result_summary(const RunResult& result);

}  // namespace km
