#include "runtime/dataset.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/lb_graphs.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace km {

namespace {

constexpr std::uint64_t kDatasetSeedStream = 0xDA7A5EEDULL;

std::uint64_t parse_uint_param(const std::string& key,
                               const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_strict_uint(value, parsed)) {
    throw DatasetError("dataset parameter " + key +
                       " expects a non-negative integer, got '" + value + "'");
  }
  return parsed;
}

double parse_double_param(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  if (!parse_strict_double(value, parsed)) {
    throw DatasetError("dataset parameter " + key +
                       " expects a number, got '" + value + "'");
  }
  return parsed;
}

std::uint64_t require_uint(const DatasetSpec& spec, std::string_view key) {
  if (!spec.has(key)) {
    throw DatasetError("dataset family '" + spec.family +
                       "' requires parameter " + std::string(key) +
                       "= (spec: " + spec.str() + ")");
  }
  return spec.get_uint(key, 0);
}

double require_double(const DatasetSpec& spec, std::string_view key) {
  if (!spec.has(key)) {
    throw DatasetError("dataset family '" + spec.family +
                       "' requires parameter " + std::string(key) +
                       "= (spec: " + spec.str() + ")");
  }
  return spec.get_double(key, 0.0);
}

/// Every graph family accepts maxw= for the weighted conversion.
void check_known_keys(const DatasetSpec& spec,
                      std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : spec.params) {
    if (key == "maxw") continue;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      std::string msg = "dataset family '" + spec.family +
                        "' does not accept parameter '" + key + "' (accepted:";
      for (const auto k : known) msg += " " + std::string(k);
      msg += " maxw)";
      throw DatasetError(msg);
    }
  }
}

}  // namespace

std::string_view to_string(DatasetKind kind) noexcept {
  switch (kind) {
    case DatasetKind::kUndirected: return "undirected_graph";
    case DatasetKind::kDirected: return "directed_graph";
    case DatasetKind::kWeighted: return "weighted_graph";
    case DatasetKind::kKeys: return "keys";
  }
  return "unknown";
}

DatasetSpec DatasetSpec::parse(std::string_view text) {
  DatasetSpec spec;
  const auto colon = text.find(':');
  spec.family = std::string(text.substr(0, colon));
  if (spec.family.empty()) {
    throw DatasetError("dataset spec has no family name: '" +
                       std::string(text) + "'");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  // file: takes the raw remainder as the path (paths may contain ',' '=').
  if (spec.family == "file") {
    if (rest.empty()) throw DatasetError("file: spec is missing the path");
    spec.params.emplace_back("path", std::string(rest));
    return spec;
  }
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      throw DatasetError("dataset spec parameter '" + std::string(item) +
                         "' is not key=value (in '" + std::string(text) + "')");
    }
    spec.set(item.substr(0, eq), std::string(item.substr(eq + 1)));
  }
  return spec;
}

bool DatasetSpec::has(std::string_view key) const {
  return std::any_of(params.begin(), params.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

std::string DatasetSpec::get_string(std::string_view key,
                                    std::string_view fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

std::uint64_t DatasetSpec::get_uint(std::string_view key,
                                    std::uint64_t fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return parse_uint_param(k, v);
  }
  return fallback;
}

double DatasetSpec::get_double(std::string_view key, double fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return parse_double_param(k, v);
  }
  return fallback;
}

void DatasetSpec::set(std::string_view key, std::string value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  params.emplace_back(std::string(key), std::move(value));
}

std::string DatasetSpec::str() const {
  std::string out = family;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

Dataset load_dataset(const DatasetSpec& spec, DatasetKind required,
                     std::uint64_t seed) {
  Rng rng(mix64(seed, kDatasetSeedStream));
  Dataset ds;
  ds.spec = spec.str();

  // ---- Keys (sorting input) ----
  if (spec.family == "keys") {
    if (required != DatasetKind::kKeys) {
      throw DatasetError("dataset 'keys' provides sorting keys, but the "
                         "workload needs a " +
                         std::string(to_string(required)));
    }
    check_known_keys(spec, {"n"});
    const std::uint64_t n = require_uint(spec, "n");
    ds.kind = DatasetKind::kKeys;
    ds.keys.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) ds.keys.push_back(rng.next());
    ds.n = ds.keys.size();
    return ds;
  }
  if (required == DatasetKind::kKeys) {
    throw DatasetError("workload needs sorting keys; use keys:n=.. (got '" +
                       spec.str() + "')");
  }

  // ---- Natively directed families ----
  if (spec.family == "lbpr") {
    if (required != DatasetKind::kDirected) {
      throw DatasetError(
          "lbpr (PageRank lower-bound gadget) is directed, but the workload "
          "needs a " +
          std::string(to_string(required)));
    }
    check_known_keys(spec, {"q"});
    const std::uint64_t q = require_uint(spec, "q");
    if (q == 0) throw DatasetError("lbpr: q must be >= 1");
    PageRankLowerBoundGraph gadget(static_cast<std::size_t>(q), rng);
    ds.kind = DatasetKind::kDirected;
    ds.digraph = gadget.graph();
    ds.n = ds.digraph.num_vertices();
    ds.m = ds.digraph.num_arcs();
    return ds;
  }

  // ---- Undirected families (convertible to directed and weighted) ----
  Graph g;
  if (spec.family == "gnp") {
    check_known_keys(spec, {"n", "p"});
    g = gnp(require_uint(spec, "n"), require_double(spec, "p"), rng);
  } else if (spec.family == "rmat") {
    check_known_keys(spec, {"n", "m", "a", "b", "c"});
    const std::uint64_t n = require_uint(spec, "n");
    g = rmat(n, spec.get_uint("m", 8 * n), rng, spec.get_double("a", 0.57),
             spec.get_double("b", 0.19), spec.get_double("c", 0.19));
  } else if (spec.family == "ba") {
    check_known_keys(spec, {"n", "attach"});
    g = barabasi_albert(require_uint(spec, "n"), spec.get_uint("attach", 3),
                        rng);
  } else if (spec.family == "ws") {
    check_known_keys(spec, {"n", "degree", "beta"});
    g = watts_strogatz(require_uint(spec, "n"), spec.get_uint("degree", 8),
                       spec.get_double("beta", 0.2), rng);
  } else if (spec.family == "star") {
    check_known_keys(spec, {"n"});
    g = star_graph(require_uint(spec, "n"));
  } else if (spec.family == "path") {
    check_known_keys(spec, {"n"});
    g = path_graph(require_uint(spec, "n"));
  } else if (spec.family == "cycle") {
    check_known_keys(spec, {"n"});
    g = cycle_graph(require_uint(spec, "n"));
  } else if (spec.family == "complete") {
    check_known_keys(spec, {"n"});
    g = complete_graph(require_uint(spec, "n"));
  } else if (spec.family == "grid") {
    check_known_keys(spec, {"rows", "cols"});
    g = grid_graph(require_uint(spec, "rows"), require_uint(spec, "cols"));
  } else if (spec.family == "bipartite") {
    check_known_keys(spec, {"a", "b", "p"});
    g = random_bipartite(require_uint(spec, "a"), require_uint(spec, "b"),
                         require_double(spec, "p"), rng);
  } else if (spec.family == "file") {
    const std::string path = spec.get_string("path", "");
    if (path.empty()) throw DatasetError("file: spec is missing the path");
    try {
      g = read_edge_list_file(path);
    } catch (const DatasetError&) {
      throw;
    } catch (const std::exception& e) {
      // The IO layer's message already carries path:line: token context;
      // re-type it so callers see every loader failure as a DatasetError.
      throw DatasetError(std::string("file: dataset failed to load: ") +
                         e.what());
    }
  } else {
    throw DatasetError(
        "unknown dataset family '" + spec.family + "'\n" +
        dataset_grammar_help());
  }

  switch (required) {
    case DatasetKind::kUndirected:
      ds.kind = DatasetKind::kUndirected;
      ds.n = g.num_vertices();
      ds.m = g.num_edges();
      ds.graph = std::move(g);
      return ds;
    case DatasetKind::kDirected:
      ds.kind = DatasetKind::kDirected;
      ds.digraph = Digraph::from_undirected(g);
      ds.n = ds.digraph.num_vertices();
      ds.m = ds.digraph.num_arcs();
      return ds;
    case DatasetKind::kWeighted: {
      const std::uint64_t maxw = spec.get_uint("maxw", 1'000'000);
      if (maxw == 0) throw DatasetError("maxw must be >= 1");
      ds.kind = DatasetKind::kWeighted;
      ds.weighted = WeightedGraph::randomize_weights(g, maxw, rng);
      ds.n = ds.weighted.num_vertices();
      ds.m = ds.weighted.num_edges();
      return ds;
    }
    case DatasetKind::kKeys: break;  // handled above
  }
  throw DatasetError("unsupported dataset kind");
}

Dataset load_dataset(std::string_view spec_text, DatasetKind required,
                     std::uint64_t seed) {
  return load_dataset(DatasetSpec::parse(spec_text), required, seed);
}

std::string dataset_grammar_help() {
  return
      "dataset spec grammar: family[:key=value[,key=value...]]\n"
      "  gnp:n=..,p=..                Erdos-Renyi G(n,p)\n"
      "  rmat:n=..[,m=..,a=..,b=..,c=..]  R-MAT, Graph500 mix defaults\n"
      "  ba:n=..[,attach=..]          Barabasi-Albert preferential attachment\n"
      "  ws:n=..[,degree=..,beta=..]  Watts-Strogatz small world\n"
      "  star:n=..                    star (congestion hot spot)\n"
      "  path:n=.. | cycle:n=.. | complete:n=..   structured graphs\n"
      "  grid:rows=..,cols=..         2-D grid\n"
      "  bipartite:a=..,b=..,p=..     random bipartite (triangle-free)\n"
      "  lbpr:q=..                    PageRank lower-bound gadget (directed)\n"
      "  keys:n=..                    uniform 64-bit sorting keys\n"
      "  file:PATH                    SNAP-style edge list from disk\n"
      "graph families also accept maxw=.. (random edge weights, weighted "
      "workloads only)";
}

}  // namespace km
