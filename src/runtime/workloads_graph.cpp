// Workload adapters for the graph algorithms in src/core/: MST, connected
// components, triangle enumeration (paper + baseline), and 4-cliques.
// Each adapter runs the distributed algorithm and, unless params.check is
// off, validates the output against the sequential reference from
// src/graph/ (Kruskal, BFS components, the forward triangle kernel, the
// 4-clique reference).
#include <algorithm>
#include <string>

#include "core/cliques.hpp"
#include "core/mst.hpp"
#include "core/triangles.hpp"
#include "graph/triangle_ref.hpp"
#include "graph/weighted.hpp"
#include "runtime/workload.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

std::uint64_t proxy_seed_for(const RunParams& params) {
  return mix64(params.seed, 0xF7A6'0001ULL);
}

// ---- MST ----

class MstWorkload final : public Workload {
 public:
  std::string_view name() const override { return "mst"; }
  std::string_view description() const override {
    return "Boruvka MST with randomized fragment proxies, O~(n/k^2) rounds; "
           "checked against Kruskal";
  }
  DatasetKind input_kind() const override { return DatasetKind::kWeighted; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const auto dist = distributed_mst(dataset.weighted, partition, engine,
                                      proxy_seed_for(params));
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("total_weight", dist.total_weight);
    result.add_output("mst_edges", std::uint64_t{dist.edges.size()});
    result.add_output("phases", std::uint64_t{dist.phases});
    if (params.check) {
      const MstResult ref = kruskal_mst(dataset.weighted);
      result.check.performed = true;
      result.check.ok =
          dist.total_weight == ref.total_weight && dist.edges == ref.edges;
      result.check.detail =
          "distributed weight " + std::to_string(dist.total_weight) +
          " vs Kruskal " + std::to_string(ref.total_weight) + ", " +
          std::to_string(dist.edges.size()) + "/" +
          std::to_string(ref.edges.size()) + " edges match";
    }
    return result;
  }
};

// ---- Connected components ----

class ComponentsWorkload final : public Workload {
 public:
  std::string_view name() const override { return "components"; }
  std::string_view description() const override {
    return "connected components via Boruvka with hash-derived weights; "
           "checked against sequential BFS";
  }
  DatasetKind input_kind() const override { return DatasetKind::kUndirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    const auto dist = distributed_components(dataset.graph, partition, engine,
                                             proxy_seed_for(params));
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("num_components", std::uint64_t{dist.num_components});
    result.add_output("phases", std::uint64_t{dist.phases});
    if (params.check) {
      result.check = check_component_labels(dataset.graph, dist.labels,
                                            dist.num_components);
    }
    return result;
  }
};

// ---- Triangles (paper algorithm and baseline) ----

template <bool kBaseline>
class TrianglesWorkload final : public Workload {
 public:
  std::string_view name() const override {
    return kBaseline ? "triangles_baseline" : "triangles";
  }
  std::string_view description() const override {
    return kBaseline
               ? "broadcast-everything triangle baseline, O~(m/k) rounds; "
                 "checked against the forward kernel"
               : "TriPartition-style triangle enumeration, O~(m/k^{5/3} + "
                 "n/k^{4/3}) rounds; checked against the forward kernel";
  }
  DatasetKind input_kind() const override { return DatasetKind::kUndirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    TriangleConfig config;
    config.color_seed = mix64(params.seed, 0xC010'6A01ULL);
    config.record_triples = false;  // counting is enough for the check
    const TriangleResult dist =
        kBaseline
            ? distributed_triangles_baseline(dataset.graph, partition, engine,
                                             config)
            : distributed_triangles(dataset.graph, partition, engine, config);
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("triangles", dist.total);
    if (params.check) {
      const std::uint64_t ref = count_triangles(dataset.graph);
      result.check.performed = true;
      result.check.ok = dist.total == ref;
      result.check.detail = "distributed count " + std::to_string(dist.total) +
                            " vs reference " + std::to_string(ref);
    }
    return result;
  }
};

// ---- 4-cliques ----

class CliquesWorkload final : public Workload {
 public:
  std::string_view name() const override { return "cliques4"; }
  std::string_view description() const override {
    return "4-clique enumeration (TriPartition generalized to s=4), "
           "O~(m/k^{3/2}) rounds; checked against the sequential reference";
  }
  DatasetKind input_kind() const override { return DatasetKind::kUndirected; }

  RunResult run(Engine& engine, const Dataset& dataset,
                const RunParams& params) const override {
    const auto partition =
        runtime_partition(dataset.n, params.k, params.seed);
    CliqueConfig config;
    config.color_seed = mix64(params.seed, 0xC11C'0E01ULL);
    config.record_cliques = false;
    const auto dist =
        distributed_four_cliques(dataset.graph, partition, engine, config);
    RunResult result = make_result(dataset, params, dist.metrics);
    result.add_output("cliques4", dist.total);
    if (params.check) {
      const std::uint64_t ref = count_four_cliques(dataset.graph);
      result.check.performed = true;
      result.check.ok = dist.total == ref;
      result.check.detail = "distributed count " + std::to_string(dist.total) +
                            " vs reference " + std::to_string(ref);
    }
    return result;
  }
};

const WorkloadRegistrar mst_registrar{std::make_unique<MstWorkload>()};
const WorkloadRegistrar components_registrar{
    std::make_unique<ComponentsWorkload>()};
const WorkloadRegistrar triangles_registrar{
    std::make_unique<TrianglesWorkload<false>>()};
const WorkloadRegistrar triangles_baseline_registrar{
    std::make_unique<TrianglesWorkload<true>>()};
const WorkloadRegistrar cliques_registrar{std::make_unique<CliquesWorkload>()};

}  // namespace
}  // namespace km
