#include "graph/properties.hpp"

#include <queue>
#include <unordered_map>

namespace km {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const std::size_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
    s.sum_squares += static_cast<std::uint64_t>(d) * d;
  }
  s.mean /= static_cast<double>(n);
  return s;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::uint32_t next = 0;
  std::queue<Vertex> frontier;
  for (Vertex s = 0; s < n; ++s) {
    if (label[s] != UINT32_MAX) continue;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      const Vertex u = frontier.front();
      frontier.pop();
      for (Vertex v : g.neighbors(u)) {
        if (label[v] == UINT32_MAX) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool same_labeling(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<std::uint32_t, std::uint32_t> a_to_b, b_to_a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [it1, fresh1] = a_to_b.emplace(a[i], b[i]);
    if (!fresh1 && it1->second != b[i]) return false;
    const auto [it2, fresh2] = b_to_a.emplace(b[i], a[i]);
    if (!fresh2 && it2->second != a[i]) return false;
  }
  return true;
}

std::size_t num_connected_components(const Graph& g) {
  const auto labels = connected_components(g);
  std::uint32_t best = 0;
  for (auto l : labels) best = std::max(best, l + 1);
  return g.num_vertices() == 0 ? 0 : best;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || num_connected_components(g) == 1;
}

bool is_weakly_connected(const Digraph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_arcs());
  for (const auto& [u, v] : g.arc_list()) edges.emplace_back(u, v);
  return is_connected(Graph::from_edges(g.num_vertices(), std::move(edges)));
}

std::size_t num_dangling(const Digraph& g) {
  std::size_t count = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) == 0) ++count;
  }
  return count;
}

}  // namespace km
