#include "graph/properties.hpp"

#include <queue>

namespace km {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const std::size_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
    s.sum_squares += static_cast<std::uint64_t>(d) * d;
  }
  s.mean /= static_cast<double>(n);
  return s;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::uint32_t next = 0;
  std::queue<Vertex> frontier;
  for (Vertex s = 0; s < n; ++s) {
    if (label[s] != UINT32_MAX) continue;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      const Vertex u = frontier.front();
      frontier.pop();
      for (Vertex v : g.neighbors(u)) {
        if (label[v] == UINT32_MAX) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t num_connected_components(const Graph& g) {
  const auto labels = connected_components(g);
  std::uint32_t best = 0;
  for (auto l : labels) best = std::max(best, l + 1);
  return g.num_vertices() == 0 ? 0 : best;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || num_connected_components(g) == 1;
}

bool is_weakly_connected(const Digraph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_arcs());
  for (const auto& [u, v] : g.arc_list()) edges.emplace_back(u, v);
  return is_connected(Graph::from_edges(g.num_vertices(), std::move(edges)));
}

std::size_t num_dangling(const Digraph& g) {
  std::size_t count = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) == 0) ++count;
  }
  return count;
}

}  // namespace km
