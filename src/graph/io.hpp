// Plain-text edge-list IO: one "u v" pair per line, '#' comments allowed.
// Compatible with the SNAP dataset format so real social-network /
// web-graph snapshots can be dropped into the examples.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace km {

/// Reads an undirected graph. Vertex IDs are compacted to [0, n).
///
/// After '#'-comment stripping, every non-blank line must be exactly two
/// unsigned integers; anything else throws std::runtime_error whose
/// message carries `source` (the path for the *_file variants), the
/// 1-based line number, and the offending token.
Graph read_edge_list(std::istream& in, const std::string& source = "<stream>");
Graph read_edge_list_file(const std::string& path);

/// Reads a directed graph (each line is an arc u -> v). Same line
/// grammar and error reporting as read_edge_list.
Digraph read_arc_list(std::istream& in, const std::string& source = "<stream>");
Digraph read_arc_list_file(const std::string& path);

void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

void write_arc_list(std::ostream& out, const Digraph& g);

}  // namespace km
