// Undirected graph in compressed sparse row (CSR) form.
//
// Vertices are dense integer IDs [0, n) as in the paper (Section 1.1:
// "each associated with a unique integer ID from [n]").  Adjacency lists
// are sorted, which the triangle kernels rely on for O(deg) merges.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace km {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;

/// Immutable undirected simple graph (no self loops, no parallel edges).
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list. Duplicates and self-loops are dropped;
  /// (u,v) and (v,u) are identified.
  static Graph from_edges(std::size_t n, std::vector<Edge> edges);

  std::size_t num_vertices() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::size_t max_degree() const noexcept;

  /// O(log deg) membership test on the sorted adjacency list.
  bool has_edge(Vertex u, Vertex v) const noexcept;

  /// All edges as (min,max) pairs, each listed once, lexicographically.
  std::vector<Edge> edge_list() const;

  /// Subgraph induced by `keep` (IDs preserved; vertices outside keep get
  /// empty adjacency). `keep[v]` must be valid for all v.
  Graph induced(const std::vector<bool>& keep) const;

 private:
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<Vertex> adjacency_;     // 2m entries, sorted per vertex
};

}  // namespace km
