#include "graph/pagerank_ref.hpp"

#include <cmath>
#include <stdexcept>

namespace km {

std::vector<double> expected_visit_pagerank(const Digraph& g,
                                            const PageRankRefOptions& opt) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  std::vector<double> phi(n, 1.0), next(n);
  for (std::size_t iter = 0; iter < opt.max_iters; ++iter) {
    // next_v = 1 + (1-eps) * sum_{u -> v} phi_u / outdeg(u)
    std::fill(next.begin(), next.end(), 1.0);
    for (Vertex u = 0; u < n; ++u) {
      const auto outs = g.out_neighbors(u);
      if (outs.empty()) continue;  // dangling: tokens terminate
      const double share = (1.0 - opt.eps) * phi[u] /
                           static_cast<double>(outs.size());
      for (Vertex v : outs) next[v] += share;
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) delta += std::abs(next[v] - phi[v]);
    phi.swap(next);
    if (delta < opt.tolerance) break;
  }
  std::vector<double> pi(n);
  for (std::size_t v = 0; v < n; ++v) {
    pi[v] = opt.eps * phi[v] / static_cast<double>(n);
  }
  return pi;
}

std::vector<double> power_iteration_pagerank(const Digraph& g,
                                             const PageRankRefOptions& opt) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> pi(n, uniform), next(n);
  for (std::size_t iter = 0; iter < opt.max_iters; ++iter) {
    double dangling = 0.0;
    for (Vertex u = 0; u < n; ++u) {
      if (g.out_degree(u) == 0) dangling += pi[u];
    }
    const double base =
        opt.eps * uniform + (1.0 - opt.eps) * dangling * uniform;
    std::fill(next.begin(), next.end(), base);
    for (Vertex u = 0; u < n; ++u) {
      const auto outs = g.out_neighbors(u);
      if (outs.empty()) continue;
      const double share =
          (1.0 - opt.eps) * pi[u] / static_cast<double>(outs.size());
      for (Vertex v : outs) next[v] += share;
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) delta += std::abs(next[v] - pi[v]);
    pi.swap(next);
    if (delta < opt.tolerance) break;
  }
  return pi;
}

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("l1_distance: size mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace km
