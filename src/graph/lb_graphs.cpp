#include "graph/lb_graphs.hpp"

#include <stdexcept>

namespace km {

PageRankLowerBoundGraph::PageRankLowerBoundGraph(std::size_t q, Rng& rng) {
  bits_.resize(q);
  for (auto& b : bits_) b = rng.bernoulli(0.5) ? 1 : 0;
  build();
}

PageRankLowerBoundGraph::PageRankLowerBoundGraph(
    std::vector<std::uint8_t> bits)
    : bits_(std::move(bits)) {
  build();
}

void PageRankLowerBoundGraph::build() {
  if (bits_.empty()) {
    throw std::invalid_argument("PageRankLowerBoundGraph: q must be >= 1");
  }
  std::vector<Edge> arcs;
  arcs.reserve(4 * q());
  for (std::size_t i = 0; i < q(); ++i) {
    arcs.emplace_back(u(i), t(i));
    arcs.emplace_back(t(i), v(i));
    arcs.emplace_back(v(i), w());
    if (bits_[i] == 0) {
      arcs.emplace_back(u(i), x(i));
    } else {
      arcs.emplace_back(x(i), u(i));
    }
  }
  graph_ = Digraph::from_arcs(n(), std::move(arcs));
}

double PageRankLowerBoundGraph::expected_pagerank_v(
    double eps, std::uint8_t bit) const noexcept {
  const double r = 1.0 - eps;
  const double phi =
      (bit == 0) ? 1.0 + r + r * r / 2.0 : 1.0 + r + r * r + r * r * r;
  return eps * phi / static_cast<double>(n());
}

double PageRankLowerBoundGraph::decision_threshold(double eps) const noexcept {
  return 0.5 * (expected_pagerank_v(eps, 0) + expected_pagerank_v(eps, 1));
}

std::uint8_t PageRankLowerBoundGraph::decode_bit(
    double eps, double pagerank_of_v) const noexcept {
  return pagerank_of_v > decision_threshold(eps) ? 1 : 0;
}

}  // namespace km
