#include "graph/weighted.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace km {

bool mst_edge_less(const WeightedEdge& a, const WeightedEdge& b) noexcept {
  const auto key = [](const WeightedEdge& e) {
    return std::tuple(e.weight, std::min(e.u, e.v), std::max(e.u, e.v));
  };
  return key(a) < key(b);
}

WeightedGraph WeightedGraph::from_edges(std::size_t n,
                                        std::vector<WeightedEdge> edges) {
  for (auto& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::out_of_range("WeightedGraph::from_edges: vertex id range");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges, [](const WeightedEdge& e) { return e.u == e.v; });
  // Sort by endpoints then weight; keep the lightest parallel edge.
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    return std::tuple(a.u, a.v, a.weight) < std::tuple(b.u, b.v, b.weight);
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const auto& a, const auto& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());

  WeightedGraph g;
  g.offsets_.assign(n + 1, 0);
  for (const auto& e : edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.resize(g.offsets_[n]);
  g.weight_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges) {
    g.adjacency_[cursor[e.u]] = e.v;
    g.weight_[cursor[e.u]++] = e.weight;
    g.adjacency_[cursor[e.v]] = e.u;
    g.weight_[cursor[e.v]++] = e.weight;
  }
  return g;
}

WeightedGraph WeightedGraph::complete_random(std::size_t n,
                                             std::uint64_t max_weight,
                                             Rng& rng) {
  std::vector<WeightedEdge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      edges.push_back({u, v, 1 + rng.below(max_weight)});
    }
  }
  return from_edges(n, std::move(edges));
}

WeightedGraph WeightedGraph::randomize_weights(const Graph& g,
                                               std::uint64_t max_weight,
                                               Rng& rng) {
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  for (const auto& [u, v] : g.edge_list()) {
    edges.push_back({u, v, 1 + rng.below(max_weight)});
  }
  return from_edges(g.num_vertices(), std::move(edges));
}

Graph WeightedGraph::topology() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    const auto ns = neighbors(u);
    for (Vertex v : ns) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(num_vertices(), std::move(edges));
}

std::vector<WeightedEdge> WeightedGraph::edge_list() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    const auto ns = neighbors(u);
    const auto ws = weights(u);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      if (u < ns[i]) edges.push_back({u, ns[i], ws[i]});
    }
  }
  return edges;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::size_t i = 0; i < n; ++i) {
    parent_[i] = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t UnionFind::find(std::uint32_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t x, std::uint32_t y) noexcept {
  x = find(x);
  y = find(y);
  if (x == y) return false;
  if (size_[x] < size_[y]) std::swap(x, y);
  parent_[y] = x;
  size_[x] += size_[y];
  --sets_;
  return true;
}

MstResult kruskal_mst(const WeightedGraph& g) {
  auto edges = g.edge_list();
  std::sort(edges.begin(), edges.end(), mst_edge_less);
  UnionFind uf(g.num_vertices());
  MstResult result;
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.weight;
    }
  }
  std::sort(result.edges.begin(), result.edges.end(), mst_edge_less);
  return result;
}

}  // namespace km
