#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace km {

Graph Graph::from_edges(std::size_t n, std::vector<Edge> edges) {
  for (auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::out_of_range("Graph::from_edges: vertex id out of range");
    }
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::erase_if(edges, [](const Edge& e) { return e.first == e.second; });

  Graph g;
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    best = std::max(best, offsets_[v + 1] - offsets_[v]);
  }
  return best;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::induced(const std::vector<bool>& keep) const {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < num_vertices(); ++u) {
    if (!keep[u]) continue;
    for (Vertex v : neighbors(u)) {
      if (u < v && keep[v]) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(num_vertices(), std::move(edges));
}

}  // namespace km
