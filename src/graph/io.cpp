#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace km {

namespace {
std::vector<Edge> parse_pairs(std::istream& in) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::uint64_t u, v;
    if (ls >> u >> v) raw.emplace_back(u, v);
  }
  // Compact arbitrary IDs to [0, n) preserving numeric order, so files
  // that already use contiguous IDs round-trip unchanged.
  std::vector<std::uint64_t> ids;
  ids.reserve(raw.size() * 2);
  for (const auto& [u, v] : raw) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  auto id_of = [&](std::uint64_t x) {
    return static_cast<Vertex>(
        std::lower_bound(ids.begin(), ids.end(), x) - ids.begin());
  };
  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [u, v] : raw) edges.emplace_back(id_of(u), id_of(v));
  return edges;
}

std::size_t max_vertex(const std::vector<Edge>& edges) {
  std::size_t n = 0;
  for (const auto& [u, v] : edges) {
    n = std::max<std::size_t>(n, std::max(u, v) + 1);
  }
  return n;
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  auto edges = parse_pairs(in);
  const std::size_t n = max_vertex(edges);
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in);
}

Digraph read_arc_list(std::istream& in) {
  auto arcs = parse_pairs(in);
  const std::size_t n = max_vertex(arcs);
  return Digraph::from_arcs(n, std::move(arcs));
}

Digraph read_arc_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_arc_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# undirected, n=" << g.num_vertices() << " m=" << g.num_edges()
      << "\n";
  for (const auto& [u, v] : g.edge_list()) out << u << " " << v << "\n";
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_edge_list(out, g);
}

void write_arc_list(std::ostream& out, const Digraph& g) {
  out << "# directed, n=" << g.num_vertices() << " arcs=" << g.num_arcs()
      << "\n";
  for (const auto& [u, v] : g.arc_list()) out << u << " " << v << "\n";
}

}  // namespace km
