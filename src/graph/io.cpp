#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace km {

namespace {
std::vector<Edge> parse_pairs(std::istream& in, const std::string& source) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok_u;
    if (!(ls >> tok_u)) continue;  // blank or comment-only line
    const auto fail = [&](const char* what, const std::string& token) {
      throw std::runtime_error(source + ":" + std::to_string(lineno) + ": " +
                               what + " '" + token +
                               "' (each line must be two vertex ids: \"u v\")");
    };
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!parse_strict_uint(tok_u, u)) fail("bad vertex id", tok_u);
    std::string tok_v;
    if (!(ls >> tok_v)) fail("missing second vertex id after", tok_u);
    if (!parse_strict_uint(tok_v, v)) fail("bad vertex id", tok_v);
    std::string extra;
    if (ls >> extra) fail("unexpected trailing token", extra);
    raw.emplace_back(u, v);
  }
  // Compact arbitrary IDs to [0, n) preserving numeric order, so files
  // that already use contiguous IDs round-trip unchanged.
  std::vector<std::uint64_t> ids;
  ids.reserve(raw.size() * 2);
  for (const auto& [u, v] : raw) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  auto id_of = [&](std::uint64_t x) {
    return static_cast<Vertex>(
        std::lower_bound(ids.begin(), ids.end(), x) - ids.begin());
  };
  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [u, v] : raw) edges.emplace_back(id_of(u), id_of(v));
  return edges;
}

std::size_t max_vertex(const std::vector<Edge>& edges) {
  std::size_t n = 0;
  for (const auto& [u, v] : edges) {
    n = std::max<std::size_t>(n, std::max(u, v) + 1);
  }
  return n;
}
}  // namespace

Graph read_edge_list(std::istream& in, const std::string& source) {
  auto edges = parse_pairs(in, source);
  const std::size_t n = max_vertex(edges);
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in, path);
}

Digraph read_arc_list(std::istream& in, const std::string& source) {
  auto arcs = parse_pairs(in, source);
  const std::size_t n = max_vertex(arcs);
  return Digraph::from_arcs(n, std::move(arcs));
}

Digraph read_arc_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_arc_list(in, path);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# undirected, n=" << g.num_vertices() << " m=" << g.num_edges()
      << "\n";
  for (const auto& [u, v] : g.edge_list()) out << u << " " << v << "\n";
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_edge_list(out, g);
}

void write_arc_list(std::ostream& out, const Digraph& g) {
  out << "# directed, n=" << g.num_vertices() << " arcs=" << g.num_arcs()
      << "\n";
  for (const auto& [u, v] : g.arc_list()) out << u << " " << v << "\n";
}

}  // namespace km
