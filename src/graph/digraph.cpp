#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace km {

Digraph Digraph::from_arcs(std::size_t n, std::vector<Edge> arcs) {
  for (const auto& [u, v] : arcs) {
    if (u >= n || v >= n) {
      throw std::out_of_range("Digraph::from_arcs: vertex id out of range");
    }
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  std::erase_if(arcs, [](const Edge& e) { return e.first == e.second; });

  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : arcs) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_adj_.resize(g.out_offsets_[n]);
  g.in_adj_.resize(g.in_offsets_[n]);
  std::vector<std::size_t> out_cur(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<std::size_t> in_cur(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const auto& [u, v] : arcs) {
    g.out_adj_[out_cur[u]++] = v;
    g.in_adj_[in_cur[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v]),
              g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v + 1]));
    std::sort(g.in_adj_.begin() + static_cast<std::ptrdiff_t>(g.in_offsets_[v]),
              g.in_adj_.begin() + static_cast<std::ptrdiff_t>(g.in_offsets_[v + 1]));
  }
  return g;
}

Digraph Digraph::from_undirected(const Graph& g) {
  std::vector<Edge> arcs;
  arcs.reserve(2 * g.num_edges());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) arcs.emplace_back(u, v);
  }
  return from_arcs(g.num_vertices(), std::move(arcs));
}

bool Digraph::has_arc(Vertex u, Vertex v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto ns = out_neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

std::vector<Edge> Digraph::arc_list() const {
  std::vector<Edge> arcs;
  arcs.reserve(num_arcs());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Vertex v : out_neighbors(u)) arcs.emplace_back(u, v);
  }
  return arcs;
}

}  // namespace km
