// Sequential reference kernels for triangle enumeration (Section 1.5) and
// open triads ("three vertices with exactly two edges", Section 1.2).
//
// The enumeration kernel is the "forward" algorithm: vertices are ranked
// by (degree, id); each edge is oriented toward the higher rank, and
// triangles are found by intersecting forward-adjacency lists.  Every
// triangle (a < b < c by rank) is reported exactly once.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace km {

/// A triangle as its three vertex IDs in increasing order.
using Triangle = std::array<Vertex, 3>;

/// Number of triangles in g (forward algorithm, O(m^{3/2})).
std::uint64_t count_triangles(const Graph& g);

/// Calls `out` once per triangle, vertices in increasing ID order.
void for_each_triangle(const Graph& g,
                       const std::function<void(const Triangle&)>& out);

/// All triangles, sorted lexicographically.
std::vector<Triangle> enumerate_triangles(const Graph& g);

/// Number of open triads: paths u-v-w (u<w) with edge (u,w) absent.
/// Equals sum_v C(deg v, 2) - 3 * #triangles.
std::uint64_t count_open_triads(const Graph& g);

/// All open triads as sorted vertex triples (the center is the unique
/// vertex adjacent to the other two), sorted lexicographically.
/// Intended for small graphs (output may be Theta(n * max_deg^2)).
std::vector<Triangle> enumerate_open_triads(const Graph& g);

/// Global clustering coefficient: 3*triangles / (#length-2 paths).
double global_clustering_coefficient(const Graph& g);

/// Per-vertex triangle counts (each triangle adds 1 to each corner).
std::vector<std::uint64_t> per_vertex_triangle_counts(const Graph& g);

}  // namespace km
