// Weighted undirected graphs, union-find, and sequential MST reference.
//
// Section 1.3 of the paper derives the Omega~(n/Bk^2) MST lower bound
// from the General Lower Bound Theorem ("the lower bound graph can be a
// complete graph with random edge weights") and cites the matching
// O~(n/k^2) algorithm of [51].  This header provides the weighted
// substrate: a CSR weighted graph, a deterministic Kruskal reference,
// and the disjoint-set forest both sides use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace km {

struct WeightedEdge {
  Vertex u = 0;
  Vertex v = 0;
  std::uint64_t weight = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
  friend auto operator<=>(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Total order on edges used for MST tie-breaking: (weight, min, max).
/// Distinct under this order even with equal weights, which makes the
/// minimum spanning forest unique — required for Boruvka correctness.
bool mst_edge_less(const WeightedEdge& a, const WeightedEdge& b) noexcept;

/// Immutable weighted undirected simple graph (CSR + parallel weights).
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Duplicates (by endpoint pair) and self loops are dropped; of two
  /// parallel edges the lighter survives.
  static WeightedGraph from_edges(std::size_t n,
                                  std::vector<WeightedEdge> edges);

  /// Complete graph with weights drawn uniformly from [1, max_weight]:
  /// the paper's MST lower-bound input family.
  static WeightedGraph complete_random(std::size_t n,
                                       std::uint64_t max_weight, Rng& rng);

  /// Random weights on an existing topology.
  static WeightedGraph randomize_weights(const Graph& g,
                                         std::uint64_t max_weight, Rng& rng);

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  std::span<const std::uint64_t> weights(Vertex v) const noexcept {
    return {weight_.data() + offsets_[v], weight_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Underlying unweighted topology (copies).
  Graph topology() const;

  std::vector<WeightedEdge> edge_list() const;

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Vertex> adjacency_;
  std::vector<std::uint64_t> weight_;
};

/// Disjoint-set forest with union by size and path compression.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::uint32_t find(std::uint32_t x) noexcept;
  /// Returns false if x and y were already in the same set.
  bool unite(std::uint32_t x, std::uint32_t y) noexcept;
  std::size_t num_sets() const noexcept { return sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_;
};

struct MstResult {
  std::vector<WeightedEdge> edges;  ///< sorted by mst_edge_less
  std::uint64_t total_weight = 0;
};

/// Kruskal's algorithm; returns the unique minimum spanning forest
/// under the mst_edge_less tie-break order.
MstResult kruskal_mst(const WeightedGraph& g);

}  // namespace km
