// The lower-bound gadget graph H of Figure 1 (Section 2.3).
//
// H has n = 4q + 1 vertices arranged in four columns X, U, T, V of size
// q = m/4 each plus a sink w.  For every index i there are directed edges
// u_i -> t_i -> v_i -> w, and one "important" edge between x_i and u_i
// whose direction is a fair coin flip b_i:
//     b_i = 0:  u_i -> x_i        b_i = 1:  x_i -> u_i
// Lemma 4: the PageRank of v_i differs by a constant factor between the
// two cases, so a correct PageRank output for v_i reveals b_i.  The
// General Lower Bound Theorem then gives the Omega~(n/k^2) round bound.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace km {

class PageRankLowerBoundGraph {
 public:
  /// q important indices; n = 4q+1 vertices; bits drawn from rng.
  PageRankLowerBoundGraph(std::size_t q, Rng& rng);

  /// Deterministic construction from a given bit vector.
  explicit PageRankLowerBoundGraph(std::vector<std::uint8_t> bits);

  const Digraph& graph() const noexcept { return graph_; }
  const std::vector<std::uint8_t>& bits() const noexcept { return bits_; }
  std::size_t q() const noexcept { return bits_.size(); }
  std::size_t n() const noexcept { return 4 * q() + 1; }

  // Vertex IDs of the four columns and the sink.
  Vertex x(std::size_t i) const noexcept { return static_cast<Vertex>(i); }
  Vertex u(std::size_t i) const noexcept { return static_cast<Vertex>(q() + i); }
  Vertex t(std::size_t i) const noexcept { return static_cast<Vertex>(2 * q() + i); }
  Vertex v(std::size_t i) const noexcept { return static_cast<Vertex>(3 * q() + i); }
  Vertex w() const noexcept { return static_cast<Vertex>(4 * q()); }

  /// Analytic PageRank of v_i (expected-visit semantics) given its bit:
  /// b=0 -> eps*(2.5 - 2 eps + eps^2/2)/n,
  /// b=1 -> eps*(1 + (1-eps) + (1-eps)^2 + (1-eps)^3)/n.    (Lemma 4)
  double expected_pagerank_v(double eps, std::uint8_t bit) const noexcept;

  /// Decision threshold halfway between the two analytic values; a
  /// delta-approximate PageRank of v_i decodes b_i by comparing to this.
  double decision_threshold(double eps) const noexcept;

  /// Decodes b_i from an estimated PageRank value of v_i.
  std::uint8_t decode_bit(double eps, double pagerank_of_v) const noexcept;

 private:
  void build();

  std::vector<std::uint8_t> bits_;
  Digraph graph_;
};

}  // namespace km
