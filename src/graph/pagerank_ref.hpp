// Sequential reference PageRank solvers.
//
// The paper (Section 1.5) defines PageRank as the stationary distribution
// of the reset random walk: with probability eps restart at a uniform
// vertex, otherwise follow a uniform out-edge.  The distributed algorithm
// (Section 3.1, after [20]) estimates it by simulating c*log(n) walk tokens
// per vertex; the estimator is pi_v = eps * psi_v / (n * c * log n) where
// psi_v counts walk visits to v.
//
// expected_visit_pagerank() solves the *exact* expectation of that token
// process:  phi = 1 + (1-eps) P^T phi  (phi_v = expected visits per
// starting token), then pi_v = eps*phi_v / n.  This is the correct ground
// truth for the Monte Carlo algorithms in core/ — including on graphs with
// dangling vertices such as the lower-bound gadget H, where walks at a
// sink simply terminate (no teleport of the residual mass).
//
// power_iteration_pagerank() is the classical normalized PageRank with
// uniform dangling redistribution, provided for library completeness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace km {

struct PageRankRefOptions {
  double eps = 0.15;        ///< reset probability
  double tolerance = 1e-12; ///< L1 convergence threshold
  std::size_t max_iters = 10000;
};

/// Expected-visits fixpoint phi = 1 + (1-eps) P^T phi; returns
/// pi_v = eps * phi_v / n (matches the Monte Carlo estimator of [20]).
std::vector<double> expected_visit_pagerank(const Digraph& g,
                                            const PageRankRefOptions& opt = {});

/// Classical power iteration with uniform dangling-mass redistribution;
/// returns a probability vector (sums to 1).
std::vector<double> power_iteration_pagerank(const Digraph& g,
                                             const PageRankRefOptions& opt = {});

/// L1 distance between two vectors of equal length.
double l1_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace km
