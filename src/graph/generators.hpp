// Graph generators for the workloads the paper evaluates on:
//  - Erdős–Rényi G(n,p), in particular G(n,1/2) for the triangle lower
//    bound (Section 2.4);
//  - skewed-degree graphs (star, Barabási–Albert) that realize the
//    congestion worst cases motivating Algorithm 1's heavy-vertex path;
//  - small-world (Watts–Strogatz) graphs for the social-network examples;
//  - structured graphs (path, cycle, complete, grid) for tests.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace km {

/// G(n,p): every unordered pair is an edge independently with prob p.
/// Uses geometric skipping, O(n + m) expected time.
Graph gnp(std::size_t n, double p, Rng& rng);

/// Directed G(n,p): every ordered pair (u != v) independently with prob p.
Digraph gnp_directed(std::size_t n, double p, Rng& rng);

/// Path 0-1-...-(n-1).
Graph path_graph(std::size_t n);

/// Cycle on n vertices.
Graph cycle_graph(std::size_t n);

/// Star: vertex 0 adjacent to all others. The canonical congestion
/// hot-spot for naive PageRank token forwarding (Section 3.1).
Graph star_graph(std::size_t n);

/// Complete graph K_n.
Graph complete_graph(std::size_t n);

/// 2-D grid graph with `rows` x `cols` vertices.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree.
/// Produces the power-law degree skew typical of web graphs.
Graph barabasi_albert(std::size_t n, std::size_t attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `degree` neighbors per
/// side rewired with probability beta. High clustering = many triangles.
Graph watts_strogatz(std::size_t n, std::size_t degree, double beta,
                     Rng& rng);

/// Random bipartite graph between parts of size a and b with edge prob p
/// (triangle-free by construction; used as a negative control).
Graph random_bipartite(std::size_t a, std::size_t b, double p, Rng& rng);

/// R-MAT (Chakrabarti-Zhan-Faloutsos) recursive-matrix graph: `edges`
/// undirected edges dropped into an n x n adjacency matrix (n rounded up
/// to a power of two) by recursively descending into quadrants with
/// probabilities (a, b, c, 1-a-b-c).  Defaults are the Graph500 mix;
/// produces the skewed degree distributions of real web/social graphs.
/// Self loops and duplicates are dropped, so the realized edge count can
/// be slightly below `edges`.
Graph rmat(std::size_t n, std::size_t edges, Rng& rng, double a = 0.57,
           double b = 0.19, double c = 0.19);

}  // namespace km
