// Structural graph properties used by tests and the info-cost module.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace km {

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  std::uint64_t sum_squares = 0;  ///< sum of deg^2 (baseline traffic bound)
};

DegreeStats degree_stats(const Graph& g);

/// Connected component label per vertex (BFS), labels in [0, #components).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// True when `a` and `b` induce the same partition of [0, n): every pair
/// of elements is together in one iff together in the other.  Label
/// values themselves are irrelevant, so a distributed labeling can be
/// compared against the BFS reference directly.
bool same_labeling(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b);

std::size_t num_connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Weak connectivity of a digraph (ignoring directions).
bool is_weakly_connected(const Digraph& g);

/// Number of vertices with out-degree 0 (dangling; walks terminate there).
std::size_t num_dangling(const Digraph& g);

}  // namespace km
