#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace km {

namespace {
/// Geometric skip sampling over a linearized index space [0, total):
/// calls visit(i) for each index selected with probability p.
template <typename Visit>
void skip_sample(std::uint64_t total, double p, Rng& rng, Visit visit) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) visit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double i = -1.0;
  while (true) {
    const double r = std::max(rng.real01(), 1e-300);
    i += 1.0 + std::floor(std::log(r) / log1mp);
    if (i >= static_cast<double>(total)) break;
    visit(static_cast<std::uint64_t>(i));
  }
}
}  // namespace

Graph gnp(std::size_t n, double p, Rng& rng) {
  std::vector<Edge> edges;
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;  // pairs u<v
  skip_sample(total, p, rng, [&](std::uint64_t idx) {
    // Invert the row-major enumeration of pairs (u,v), u<v.
    // Row u (0-based) starts at offset u*n - u*(u+1)/2 - u ... use direct
    // solve: find u = largest with f(u) <= idx where
    // f(u) = u*(2n-u-1)/2 counts pairs before row u.
    const double nd = static_cast<double>(n);
    double ud = std::floor(
        ((2.0 * nd - 1.0) -
         std::sqrt((2.0 * nd - 1.0) * (2.0 * nd - 1.0) -
                   8.0 * static_cast<double>(idx))) /
        2.0);
    auto u = static_cast<std::uint64_t>(std::max(ud, 0.0));
    auto row_start = [&](std::uint64_t uu) {
      return uu * (2 * n - uu - 1) / 2;
    };
    while (u > 0 && row_start(u) > idx) --u;
    while (row_start(u + 1) <= idx) ++u;
    const std::uint64_t v = u + 1 + (idx - row_start(u));
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  });
  return Graph::from_edges(n, std::move(edges));
}

Digraph gnp_directed(std::size_t n, double p, Rng& rng) {
  std::vector<Edge> arcs;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n;
  skip_sample(total, p, rng, [&](std::uint64_t idx) {
    const auto u = static_cast<Vertex>(idx / n);
    const auto v = static_cast<Vertex>(idx % n);
    if (u != v) arcs.emplace_back(u, v);
  });
  return Digraph::from_arcs(n, std::move(arcs));
}

Graph path_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(static_cast<Vertex>(i), static_cast<Vertex>(i + 1));
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(static_cast<Vertex>(i), static_cast<Vertex>(i + 1));
  }
  if (n > 2) edges.emplace_back(static_cast<Vertex>(n - 1), 0);
  return Graph::from_edges(n, std::move(edges));
}

Graph star_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(0, static_cast<Vertex>(i));
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  std::vector<Edge> edges;
  auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph barabasi_albert(std::size_t n, std::size_t attach, Rng& rng) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach==0");
  if (n <= attach) return complete_graph(n);
  std::vector<Edge> edges;
  // repeated-endpoints list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<Vertex> endpoints;
  for (std::size_t u = 0; u < attach; ++u) {
    for (std::size_t v = u + 1; v < attach; ++v) {
      edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
      endpoints.push_back(static_cast<Vertex>(u));
      endpoints.push_back(static_cast<Vertex>(v));
    }
  }
  std::vector<Vertex> chosen;
  for (std::size_t w = attach; w < n; ++w) {
    chosen.clear();
    while (chosen.size() < attach) {
      const Vertex c = endpoints[rng.below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
        chosen.push_back(c);
      }
    }
    for (Vertex c : chosen) {
      edges.emplace_back(static_cast<Vertex>(w), c);
      endpoints.push_back(static_cast<Vertex>(w));
      endpoints.push_back(c);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph watts_strogatz(std::size_t n, std::size_t degree, double beta,
                     Rng& rng) {
  if (n < 3) return path_graph(n);
  const std::size_t half = std::max<std::size_t>(1, degree / 2);
  std::vector<Edge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= half; ++d) {
      Vertex v = static_cast<Vertex>((u + d) % n);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniformly random non-self endpoint.
        Vertex w = static_cast<Vertex>(rng.below(n));
        while (w == u) w = static_cast<Vertex>(rng.below(n));
        v = w;
      }
      edges.emplace_back(static_cast<Vertex>(u), v);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_bipartite(std::size_t a, std::size_t b, double p, Rng& rng) {
  std::vector<Edge> edges;
  skip_sample(static_cast<std::uint64_t>(a) * b, p, rng,
              [&](std::uint64_t idx) {
                const auto u = static_cast<Vertex>(idx / b);
                const auto v = static_cast<Vertex>(a + idx % b);
                edges.emplace_back(u, v);
              });
  return Graph::from_edges(a + b, std::move(edges));
}

Graph rmat(std::size_t n, std::size_t edges, Rng& rng, double a, double b,
           double c) {
  if (a < 0 || b < 0 || c < 0 || a + b + c > 1.0) {
    throw std::invalid_argument("rmat: need a,b,c >= 0 and a+b+c <= 1");
  }
  if (n == 0) return Graph{};
  std::size_t levels = 0;
  while ((std::size_t{1} << levels) < n) ++levels;
  std::vector<Edge> list;
  list.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    std::uint64_t u = 0, v = 0;
    for (std::size_t level = 0; level < levels; ++level) {
      const double r = rng.real01();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: both bits 0
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    // The matrix is 2^levels wide; rejection keeps IDs inside [0, n).
    if (u >= n || v >= n || u == v) continue;
    list.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph::from_edges(n, std::move(list));
}

}  // namespace km
