// Directed graph in CSR form with both out- and in-adjacency.
//
// The PageRank machinery needs directed graphs (the lower-bound gadget H of
// Figure 1 is directed).  Per Section 1.1, under the random vertex
// partition the home machine of a vertex knows its incident edges; for the
// PageRank algorithm (Algorithm 1, lines 33-35) the receiving machine must
// recognize which of its hosted vertices are out-neighbors of a remote
// vertex, so in-adjacency is materialized as well.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace km {

/// Immutable directed simple graph (no self loops, no parallel arcs).
class Digraph {
 public:
  Digraph() = default;

  /// Builds from an arc list (u -> v). Duplicate arcs and self loops drop.
  static Digraph from_arcs(std::size_t n, std::vector<Edge> arcs);

  /// Interprets an undirected graph as a digraph with both arc directions
  /// (the random-walk view of an undirected graph).
  static Digraph from_undirected(const Graph& g);

  std::size_t num_vertices() const noexcept { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  std::size_t num_arcs() const noexcept { return out_adj_.size(); }

  std::span<const Vertex> out_neighbors(Vertex v) const noexcept {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }
  std::span<const Vertex> in_neighbors(Vertex v) const noexcept {
    return {in_adj_.data() + in_offsets_[v],
            in_adj_.data() + in_offsets_[v + 1]};
  }

  std::size_t out_degree(Vertex v) const noexcept {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  std::size_t in_degree(Vertex v) const noexcept {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  bool has_arc(Vertex u, Vertex v) const noexcept;

  std::vector<Edge> arc_list() const;

 private:
  std::vector<std::size_t> out_offsets_, in_offsets_;
  std::vector<Vertex> out_adj_, in_adj_;
};

}  // namespace km
