#include "graph/triangle_ref.hpp"

#include <algorithm>

namespace km {

namespace {
/// Rank vertices by (degree, id); returns rank position per vertex.
std::vector<std::uint32_t> degree_ranks(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<Vertex> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<Vertex>(v);
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    const auto da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<std::uint32_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<std::uint32_t>(i);
  return rank;
}

/// Forward adjacency: neighbors with strictly higher rank, sorted by ID.
std::vector<std::vector<Vertex>> forward_lists(
    const Graph& g, const std::vector<std::uint32_t>& rank) {
  std::vector<std::vector<Vertex>> fwd(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (rank[v] > rank[u]) fwd[u].push_back(v);
    }
    std::sort(fwd[u].begin(), fwd[u].end());
  }
  return fwd;
}
}  // namespace

void for_each_triangle(const Graph& g,
                       const std::function<void(const Triangle&)>& out) {
  const auto rank = degree_ranks(g);
  const auto fwd = forward_lists(g, rank);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : fwd[u]) {
      // Intersect fwd[u] and fwd[v]; both sorted by ID.
      auto it_u = fwd[u].begin();
      auto it_v = fwd[v].begin();
      while (it_u != fwd[u].end() && it_v != fwd[v].end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          Triangle t{u, v, *it_u};
          std::sort(t.begin(), t.end());
          out(t);
          ++it_u;
          ++it_v;
        }
      }
    }
  }
}

std::uint64_t count_triangles(const Graph& g) {
  std::uint64_t count = 0;
  for_each_triangle(g, [&](const Triangle&) { ++count; });
  return count;
}

std::vector<Triangle> enumerate_triangles(const Graph& g) {
  std::vector<Triangle> out;
  for_each_triangle(g, [&](const Triangle& t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t count_open_triads(const Graph& g) {
  std::uint64_t paths2 = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    paths2 += d * (d - 1) / 2;
  }
  return paths2 - 3 * count_triangles(g);
}

std::vector<Triangle> enumerate_open_triads(const Graph& g) {
  std::vector<Triangle> out;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto ns = g.neighbors(v);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        const Vertex u = ns[i], w = ns[j];
        if (!g.has_edge(u, w)) {
          // Canonical form: sorted vertex triple.  The center is
          // recoverable (it is the unique vertex adjacent to the other
          // two), so sorting loses no information.
          Triangle t{u, v, w};
          std::sort(t.begin(), t.end());
          out.push_back(t);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double global_clustering_coefficient(const Graph& g) {
  std::uint64_t paths2 = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    paths2 += d * (d - 1) / 2;
  }
  if (paths2 == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(g)) /
         static_cast<double>(paths2);
}

std::vector<std::uint64_t> per_vertex_triangle_counts(const Graph& g) {
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  for_each_triangle(g, [&](const Triangle& t) {
    for (Vertex v : t) ++counts[v];
  });
  return counts;
}

}  // namespace km
