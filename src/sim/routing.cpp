#include "sim/routing.hpp"

#include "util/serialize.hpp"

namespace km {

namespace {

// Envelope layout: varint(final dst), varint(tag), varint(origin src),
// then the original payload bytes.  The origin travels in the envelope so
// that a relayed message still reports its true sender after hop 2.
PayloadRef make_envelope(std::uint32_t dst, std::uint16_t tag,
                         std::uint32_t origin,
                         std::span<const std::byte> payload) {
  Writer w;
  w.put_varint(dst);
  w.put_varint(tag);
  w.put_varint(origin);
  w.put_bytes(payload);
  return PayloadRef(w.take());
}

Message decode_envelope(Message&& env) {
  Reader r(env.payload);
  Message out;
  out.dst = static_cast<std::uint32_t>(r.get_varint());
  out.tag = static_cast<std::uint16_t>(r.get_varint());
  out.src = static_cast<std::uint32_t>(r.get_varint());
  // Zero-copy: the delivered payload is a suffix view of the envelope
  // buffer, stealing its ownership outright (no refcount traffic).
  out.payload = std::move(env.payload);
  out.payload.remove_prefix(out.payload.size() - r.remaining());
  return out;
}

}  // namespace

std::vector<Message> route_direct(MachineContext& ctx,
                                  std::vector<Message> msgs) {
  std::vector<Message> local;
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      m.src = static_cast<std::uint32_t>(ctx.id());
      local.push_back(std::move(m));  // free: never touches the network
    } else {
      ctx.send(m.dst, m.tag, std::move(m.payload));
    }
  }
  auto result = ctx.exchange();
  result.insert(result.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  return result;
}

std::vector<Message> route_via_random_intermediate(MachineContext& ctx,
                                                   std::vector<Message> msgs) {
  const std::size_t k = ctx.k();
  const auto self = static_cast<std::uint32_t>(ctx.id());
  // Hop 1: wrap each message in an envelope and send to a random machine.
  // A message whose random intermediate equals the final destination (or
  // ourselves) is forwarded directly/held locally to save a pointless hop.
  std::vector<Message> hold;  // intermediate == self, or destination == self
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      m.src = self;
      hold.push_back(std::move(m));
      continue;
    }
    const std::size_t via = ctx.rng().below(k);
    if (via == ctx.id()) {
      m.src = self;
      hold.push_back(std::move(m));
      continue;
    }
    // via == m.dst lands at the destination in one hop anyway; either way
    // the first network hop carries the same envelope.
    ctx.send(via, kRouteEnvelopeTag,
             make_envelope(m.dst, m.tag, self, m.payload));
  }

  // Hop 2: forward everything that stopped here; keep what is for us.
  // Forwarding reuses the original envelope bytes (a shared PayloadRef) —
  // no re-serialization on the relay, and only the leading dst varint is
  // decoded to route it.
  std::vector<Message> result;
  for (auto& env : ctx.exchange()) {
    Reader peek(env.payload);
    const auto dst = static_cast<std::uint32_t>(peek.get_varint());
    if (dst == ctx.id()) {
      result.push_back(decode_envelope(std::move(env)));
    } else {
      ctx.send(dst, kRouteEnvelopeTag, std::move(env.payload));
    }
  }
  for (auto& m : hold) {
    if (m.dst == ctx.id()) {
      result.push_back(std::move(m));
    } else {
      ctx.send(m.dst, kRouteEnvelopeTag,
               make_envelope(m.dst, m.tag, self, m.payload));
    }
  }
  for (auto& env : ctx.exchange()) {
    result.push_back(decode_envelope(std::move(env)));
  }
  return result;
}

}  // namespace km
