#include "sim/routing.hpp"

#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/buffer_pool.hpp"
#include "util/mathx.hpp"
#include "util/serialize.hpp"

namespace km {

namespace {

// Envelope layout (tag kRouteEnvelopeTag): varint(final dst), varint(tag),
// varint(origin src), then the original payload bytes.  The origin travels
// in the envelope so that a relayed message still reports its true sender
// after hop 2.
PayloadRef make_envelope(std::uint32_t dst, std::uint16_t tag,
                         std::uint32_t origin,
                         std::span<const std::byte> payload) {
  Writer w;
  w.put_varint(dst);
  w.put_varint(tag);
  w.put_varint(origin);
  w.put_bytes(payload);
  return PayloadRef(w.take());
}

// Chunk envelope layout (tag kRouteChunkTag): varint(final dst),
// varint(tag), varint(origin src), varint(seq), varint(chunk index),
// varint(chunk count), then this chunk's payload bytes.  (dst first, same
// as the plain envelope, so the relay peeks one varint regardless of
// kind.)  seq numbers the oversized messages of one routing call per
// origin, making (origin, seq) a unique reassembly key.
PayloadRef make_chunk_envelope(std::uint32_t dst, std::uint16_t tag,
                               std::uint32_t origin, std::uint64_t seq,
                               std::size_t index, std::size_t count,
                               std::span<const std::byte> chunk) {
  Writer w;
  w.put_varint(dst);
  w.put_varint(tag);
  w.put_varint(origin);
  w.put_varint(seq);
  w.put_varint(index);
  w.put_varint(count);
  w.put_bytes(chunk);
  return PayloadRef(w.take());
}

Message decode_envelope(Message&& env) {
  Reader r(env.payload);
  Message out;
  out.dst = static_cast<std::uint32_t>(r.get_varint());
  out.tag = static_cast<std::uint16_t>(r.get_varint());
  out.src = static_cast<std::uint32_t>(r.get_varint());
  // Zero-copy: the delivered payload is a suffix view of the envelope
  // buffer, stealing its ownership outright (no refcount traffic).
  out.payload = std::move(env.payload);
  out.payload.remove_prefix(out.payload.size() - r.remaining());
  return out;
}

// Collects the chunks of split oversized messages and emits each message
// once its last chunk lands.  Deterministic: chunk arrival order is a
// pure function of the engine schedule, so completion order is too.
class ChunkReassembler {
 public:
  std::optional<Message> add(Message&& env) {
    Reader r(env.payload);
    Message header;
    header.dst = static_cast<std::uint32_t>(r.get_varint());
    header.tag = static_cast<std::uint16_t>(r.get_varint());
    header.src = static_cast<std::uint32_t>(r.get_varint());
    const std::uint64_t seq = r.get_varint();
    const std::size_t index = static_cast<std::size_t>(r.get_varint());
    const std::size_t count = static_cast<std::size_t>(r.get_varint());
    PayloadRef chunk = std::move(env.payload);
    chunk.remove_prefix(chunk.size() - r.remaining());

    const std::uint64_t key =
        (static_cast<std::uint64_t>(header.src) << 32) ^ seq;
    Partial& p = partials_[key];
    if (p.parts.empty()) {
      if (count < 2) {
        throw std::logic_error("ChunkReassembler: chunk count must be >= 2");
      }
      p.message = header;
      p.parts.resize(count);
    }
    if (index >= p.parts.size() || p.parts[index].received) {
      throw std::logic_error("ChunkReassembler: bad or duplicate chunk");
    }
    p.parts[index] = {std::move(chunk), true};
    p.bytes += p.parts[index].payload.size();
    if (++p.received < p.parts.size()) return std::nullopt;

    // Last chunk: splice the payload back together in index order.
    std::vector<std::byte> bytes = acquire_buffer();
    bytes.reserve(p.bytes);
    for (const Part& part : p.parts) {
      bytes.insert(bytes.end(), part.payload.begin(), part.payload.end());
    }
    Message out = p.message;
    out.payload = PayloadRef(std::move(bytes));
    partials_.erase(key);
    return out;
  }

  bool empty() const noexcept { return partials_.empty(); }

 private:
  struct Part {
    PayloadRef payload;
    bool received = false;
  };
  struct Partial {
    Message message;  // src/dst/tag of the original, payload unset
    std::vector<Part> parts;
    std::size_t received = 0;
    std::size_t bytes = 0;
  };
  std::unordered_map<std::uint64_t, Partial> partials_;
};

}  // namespace

std::vector<Message> route_direct(MachineContext& ctx,
                                  std::vector<Message> msgs) {
  std::vector<Message> local;
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      m.src = static_cast<std::uint32_t>(ctx.id());
      local.push_back(std::move(m));  // free: never touches the network
    } else {
      ctx.send(m.dst, m.tag, std::move(m.payload));
    }
  }
  auto result = ctx.exchange();
  result.insert(result.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  return result;
}

std::vector<Message> route_via_random_intermediate(MachineContext& ctx,
                                                   std::vector<Message> msgs) {
  const std::size_t k = ctx.k();
  const auto self = static_cast<std::uint32_t>(ctx.id());
  // Lemma 13 assumes unit-size messages; a payload larger than one
  // round's per-link budget would turn its two links into hot spots no
  // matter how random the intermediate is.  Such messages are split into
  // chunks, each routed via its own random intermediate and reassembled
  // at the destination.
  const std::size_t budget_bytes = std::max<std::size_t>(
      1, static_cast<std::size_t>(ctx.config().bandwidth_bits / 8));

  // Hop 1: wrap each message in an envelope and send to a random machine.
  // A message whose random intermediate equals the final destination (or
  // ourselves) is forwarded directly/held locally to save a pointless hop.
  std::vector<Message> hold;  // intermediate == self, or destination == self
  std::vector<std::pair<std::uint32_t, PayloadRef>> hold_chunks;
  std::uint64_t next_seq = 0;
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      m.src = self;
      hold.push_back(std::move(m));
      continue;
    }
    if (m.payload.size() > budget_bytes) {
      // Chunk payloads are sized so the whole network message — message
      // header plus chunk-envelope varints plus chunk bytes — fits one
      // round's budget on its link; without this deduction a "budget-
      // sized" chunk still costs two rounds.  The index/count varints
      // are bounded by varint_size(payload) since every chunk carries at
      // least one byte.
      const std::size_t envelope_bytes =
          Message::kHeaderBits / 8 + varint_size(m.dst) +
          varint_size(m.tag) + varint_size(self) + varint_size(next_seq) +
          2 * varint_size(m.payload.size());
      const std::size_t chunk_bytes =
          budget_bytes > envelope_bytes ? budget_bytes - envelope_bytes : 1;
      const std::size_t count = ceil_div(m.payload.size(), chunk_bytes);
      const std::uint64_t seq = next_seq++;
      for (std::size_t c = 0; c < count; ++c) {
        const std::size_t offset = c * chunk_bytes;
        const std::size_t len =
            std::min(chunk_bytes, m.payload.size() - offset);
        PayloadRef env =
            make_chunk_envelope(m.dst, m.tag, self, seq, c, count,
                                m.payload.view().subspan(offset, len));
        const std::size_t via = ctx.rng().below(k);
        if (via == ctx.id()) {
          hold_chunks.emplace_back(m.dst, std::move(env));
        } else {
          ctx.send(via, kRouteChunkTag, std::move(env));
        }
      }
      continue;
    }
    const std::size_t via = ctx.rng().below(k);
    if (via == ctx.id()) {
      m.src = self;
      hold.push_back(std::move(m));
      continue;
    }
    // via == m.dst lands at the destination in one hop anyway; either way
    // the first network hop carries the same envelope.
    ctx.send(via, kRouteEnvelopeTag,
             make_envelope(m.dst, m.tag, self, m.payload));
  }

  // Hop 2: forward everything that stopped here; keep what is for us.
  // Forwarding reuses the original envelope bytes (a shared PayloadRef) —
  // no re-serialization on the relay, and only the leading dst varint is
  // peeked to route it; the tag distinguishes whole envelopes from
  // chunks, and travels with the forward.
  ChunkReassembler reassembler;
  std::vector<Message> result;
  const auto consume = [&](Message&& env) {
    if (env.tag == kRouteChunkTag) {
      if (auto done = reassembler.add(std::move(env))) {
        result.push_back(std::move(*done));
      }
    } else {
      result.push_back(decode_envelope(std::move(env)));
    }
  };
  for (auto& env : ctx.exchange()) {
    Reader peek(env.payload);
    const auto dst = static_cast<std::uint32_t>(peek.get_varint());
    if (dst == ctx.id()) {
      consume(std::move(env));
    } else {
      ctx.send(dst, env.tag, std::move(env.payload));
    }
  }
  for (auto& [dst, env] : hold_chunks) {
    ctx.send(dst, kRouteChunkTag, std::move(env));  // dst != self by split
  }
  for (auto& m : hold) {
    if (m.dst == ctx.id()) {
      result.push_back(std::move(m));
    } else {
      ctx.send(m.dst, kRouteEnvelopeTag,
               make_envelope(m.dst, m.tag, self, m.payload));
    }
  }
  for (auto& env : ctx.exchange()) {
    consume(std::move(env));
  }
  if (!reassembler.empty()) {
    throw std::logic_error(
        "route_via_random_intermediate: chunked message left incomplete "
        "after hop 2");
  }
  return result;
}

}  // namespace km
