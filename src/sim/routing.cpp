#include "sim/routing.hpp"

#include "util/serialize.hpp"

namespace km {

std::vector<Message> route_direct(MachineContext& ctx,
                                  std::vector<Message> msgs) {
  std::vector<Message> local;
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      local.push_back(std::move(m));  // free: never touches the network
    } else {
      ctx.send(m.dst, m.tag, std::move(m.payload));
    }
  }
  auto result = ctx.exchange();
  result.insert(result.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  return result;
}

std::vector<Message> route_via_random_intermediate(MachineContext& ctx,
                                                   std::vector<Message> msgs) {
  const std::size_t k = ctx.k();
  // Hop 1: wrap each message in an envelope and send to a random machine.
  // A message whose random intermediate equals the final destination (or
  // ourselves) is forwarded directly/held locally to save a pointless hop.
  std::vector<Message> hold;  // intermediate == self, or destination == self
  for (auto& m : msgs) {
    if (m.dst == ctx.id()) {
      hold.push_back(std::move(m));
      continue;
    }
    const std::size_t via = ctx.rng().below(k);
    if (via == m.dst) {  // lands at destination in one hop anyway
      ctx.send(m.dst, kRouteEnvelopeTag, [&] {
        Writer w;
        w.put_varint(m.dst);
        w.put_varint(m.tag);
        w.put_bytes(m.payload);
        return w.take();
      }());
      continue;
    }
    if (via == ctx.id()) {
      hold.push_back(std::move(m));
      continue;
    }
    Writer w;
    w.put_varint(m.dst);
    w.put_varint(m.tag);
    w.put_bytes(m.payload);
    ctx.send(via, kRouteEnvelopeTag, w.take());
  }

  auto decode = [](const Message& env) {
    Reader r(env.payload);
    Message out;
    out.dst = static_cast<std::uint32_t>(r.get_varint());
    out.tag = static_cast<std::uint16_t>(r.get_varint());
    out.payload.assign(env.payload.begin() +
                           static_cast<std::ptrdiff_t>(env.payload.size() -
                                                       r.remaining()),
                       env.payload.end());
    return out;
  };

  // Hop 2: forward everything that stopped here; keep what is for us.
  std::vector<Message> result;
  for (auto& env : ctx.exchange()) {
    Message m = decode(env);
    m.src = env.src;  // not meaningful after relay; kept for debugging
    if (m.dst == ctx.id()) {
      result.push_back(std::move(m));
    } else {
      Writer w;
      w.put_varint(m.dst);
      w.put_varint(m.tag);
      w.put_bytes(m.payload);
      ctx.send(m.dst, kRouteEnvelopeTag, w.take());
    }
  }
  for (auto& m : hold) {
    if (m.dst == ctx.id()) {
      result.push_back(std::move(m));
    } else {
      Writer w;
      w.put_varint(m.dst);
      w.put_varint(m.tag);
      w.put_bytes(m.payload);
      ctx.send(m.dst, kRouteEnvelopeTag, w.take());
    }
  }
  for (auto& env : ctx.exchange()) {
    result.push_back(decode(env));
  }
  return result;
}

}  // namespace km
