#include "sim/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace km {
namespace {

// The module's one clock read.  steady_clock (never system_clock): trace
// timestamps must be monotone per thread, and wall-calendar time has no
// business in the simulator.  This is the sanctioned wall-clock site the
// km_lint trace-outside-module rule carves out (alongside the wall_ms
// reads in sim/engine.cpp).
std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // km-lint: allow(wall-clock)
              .time_since_epoch())
          .count());
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("trace: short write to " + path);
}

}  // namespace

std::string_view to_string(TracePhase phase) noexcept {
  switch (phase) {
    case TracePhase::kCompute:
      return "compute";
    case TracePhase::kSend:
      return "send";
    case TracePhase::kBarrierWait:
      return "barrier_wait";
    case TracePhase::kDeliver:
      return "deliver";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MachineTraceBuffer

std::uint64_t MachineTraceBuffer::now_ns() const noexcept {
  return session_->now_ns();
}

void MachineTraceBuffer::thread_begin() noexcept { prev_end_ns_ = now_ns(); }

void MachineTraceBuffer::add_send(std::uint64_t begin_ns,
                                  std::uint64_t end_ns) noexcept {
  if (!any_send_) {
    any_send_ = true;
    send_begin_ns_ = begin_ns;
  }
  send_accum_ns_ += end_ns - begin_ns;
}

void MachineTraceBuffer::begin_sync(std::uint64_t at_ns) {
  spans_.push_back({superstep_, TracePhase::kCompute, prev_end_ns_, at_ns});
  // The nested send span: real extent when the program sent this
  // superstep, zero-length at the compute boundary otherwise — so every
  // (machine, superstep) has exactly four spans and the well-nestedness
  // invariant (send ⊆ compute) holds unconditionally.
  const std::uint64_t sb = any_send_ ? send_begin_ns_ : at_ns;
  spans_.push_back({superstep_, TracePhase::kSend, sb, sb + send_accum_ns_});
  any_send_ = false;
  send_accum_ns_ = 0;
  phase_begin_ns_ = at_ns;
}

void MachineTraceBuffer::end_barrier(std::uint64_t at_ns) {
  spans_.push_back(
      {superstep_, TracePhase::kBarrierWait, phase_begin_ns_, at_ns});
  phase_begin_ns_ = at_ns;
}

void MachineTraceBuffer::end_deliver(std::uint64_t at_ns) {
  spans_.push_back({superstep_, TracePhase::kDeliver, phase_begin_ns_, at_ns});
  prev_end_ns_ = at_ns;
  ++superstep_;
}

// ---------------------------------------------------------------------------
// TraceSession

TraceSession::TraceSession(std::size_t k, bool record_links)
    : k_(k), links_(record_links), epoch_ns_(steady_now_ns()) {
  machines_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    machines_.emplace_back(new MachineTraceBuffer(this));
  }
  if (links_) current_links_.assign(k * k, 0);
  pool_prev_ = buffer_pool_counters();
  payload_prev_ = payload_pool_counters();
}

std::uint64_t TraceSession::now_ns() const noexcept {
  return steady_now_ns() - epoch_ns_;
}

void TraceSession::record_link_row(std::size_t src,
                                   const std::uint64_t* row_bits) {
  fold_gate.assert_held();
  if (!links_) return;
  std::uint64_t* row = current_links_.data() + src * k_;
  for (std::size_t dst = 0; dst < k_; ++dst) row[dst] = row_bits[dst];
}

void TraceSession::finalize_superstep(std::uint64_t superstep,
                                      std::uint64_t rounds,
                                      std::uint64_t messages,
                                      std::uint64_t bits,
                                      std::uint64_t max_link_bits) {
  fold_gate.assert_held();
  const BufferPoolCounters pool = buffer_pool_counters();
  const PayloadPoolCounters payload = payload_pool_counters();
  counters_.push_back({.superstep = superstep,
                       .at_ns = now_ns(),
                       .rounds = rounds,
                       .messages = messages,
                       .bits = bits,
                       .max_link_bits = max_link_bits,
                       .pool_hits = pool.hits - pool_prev_.hits,
                       .pool_misses = pool.misses - pool_prev_.misses,
                       .payload_pool_hits = payload.hits - payload_prev_.hits,
                       .payload_pool_misses =
                           payload.misses - payload_prev_.misses});
  pool_prev_ = pool;
  payload_prev_ = payload;
  if (links_ && messages > 0) {
    matrices_.push_back({superstep, current_links_});
    std::fill(current_links_.begin(), current_links_.end(), 0);
  }
}

TimingSummary TraceSession::summarize() const {
  TimingSummary out;
  out.enabled = true;
  out.per_machine.reserve(k_);
  double wait_sum = 0.0;
  for (std::size_t i = 0; i < k_; ++i) {
    MachinePhaseMs pm;
    pm.machine = static_cast<std::uint32_t>(i);
    std::uint64_t ns[4] = {0, 0, 0, 0};
    for (const TraceSpan& s : machines_[i]->spans()) {
      ns[static_cast<std::size_t>(s.phase)] += s.end_ns - s.begin_ns;
    }
    // send spans nest inside compute; report compute exclusive of send so
    // the four columns tile the machine's traced wall time.
    const std::uint64_t send = ns[static_cast<std::size_t>(TracePhase::kSend)];
    std::uint64_t compute =
        ns[static_cast<std::size_t>(TracePhase::kCompute)];
    compute -= send < compute ? send : compute;
    constexpr double kMs = 1e-6;
    pm.compute_ms = static_cast<double>(compute) * kMs;
    pm.send_ms = static_cast<double>(send) * kMs;
    pm.barrier_wait_ms =
        static_cast<double>(
            ns[static_cast<std::size_t>(TracePhase::kBarrierWait)]) *
        kMs;
    pm.deliver_ms =
        static_cast<double>(
            ns[static_cast<std::size_t>(TracePhase::kDeliver)]) *
        kMs;
    wait_sum += pm.barrier_wait_ms;
    if (pm.barrier_wait_ms > out.barrier_wait_max_ms) {
      out.barrier_wait_max_ms = pm.barrier_wait_ms;
    }
    out.per_machine.push_back(pm);
  }
  if (k_ > 0) out.barrier_wait_mean_ms = wait_sum / static_cast<double>(k_);
  if (out.barrier_wait_mean_ms > 0.0) {
    out.barrier_wait_skew = out.barrier_wait_max_ms / out.barrier_wait_mean_ms;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Export

std::string TraceSession::chrome_trace_json(std::string_view label) const {
  // Reads run after Engine::run joined every machine thread, so the
  // buffers and fold streams are quiescent; assert_held documents that
  // the fold protocol is over, not that a lock is taken.
  fold_gate.assert_held();
  constexpr double kUs = 1e-3;  // ns -> trace-event microseconds
  JsonWriter w(0);  // compact: traces are big and machine-consumed
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  // Metadata: one process for the run, one named thread per machine.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(std::uint64_t{1});
  w.key("tid");
  w.value(std::uint64_t{0});
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(label);
  w.end_object();
  w.end_object();
  for (std::size_t i = 0; i < k_; ++i) {
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(i));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value("machine " + std::to_string(i));
    w.end_object();
    w.end_object();
  }
  // Phase slices: per-machine recorded order, which is non-decreasing in
  // begin_ns per tid (the trace checker verifies this property).
  for (std::size_t i = 0; i < k_; ++i) {
    for (const TraceSpan& s : machines_[i]->spans()) {
      w.begin_object();
      w.key("name");
      w.value(to_string(s.phase));
      w.key("cat");
      w.value("superstep");
      w.key("ph");
      w.value("X");
      w.key("pid");
      w.value(std::uint64_t{1});
      w.key("tid");
      w.value(static_cast<std::uint64_t>(i));
      w.key("ts");
      w.value(static_cast<double>(s.begin_ns) * kUs);
      w.key("dur");
      w.value(static_cast<double>(s.end_ns - s.begin_ns) * kUs);
      w.key("args");
      w.begin_object();
      w.key("superstep");
      w.value(s.superstep);
      w.end_object();
      w.end_object();
    }
  }
  // Counter tracks: the root finalizer's per-superstep accounting sample.
  for (const TraceCounterSample& c : counters_) {
    const double ts = static_cast<double>(c.at_ns) * kUs;
    const auto counter = [&](std::string_view name, auto emit_args) {
      w.begin_object();
      w.key("name");
      w.value(name);
      w.key("ph");
      w.value("C");
      w.key("pid");
      w.value(std::uint64_t{1});
      w.key("tid");
      w.value(std::uint64_t{0});
      w.key("ts");
      w.value(ts);
      w.key("args");
      w.begin_object();
      emit_args();
      w.end_object();
      w.end_object();
    };
    counter("rounds", [&] { w.field("rounds", c.rounds); });
    counter("bits", [&] { w.field("bits", c.bits); });
    counter("max_link_bits",
            [&] { w.field("max_link_bits", c.max_link_bits); });
    counter("messages", [&] { w.field("messages", c.messages); });
    counter("pool", [&] {
      w.field("hits", c.pool_hits);
      w.field("misses", c.pool_misses);
    });
    counter("payload_pool", [&] {
      w.field("hits", c.payload_pool_hits);
      w.field("misses", c.payload_pool_misses);
    });
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TraceSession::write_chrome_trace(const std::string& path,
                                      std::string_view label) const {
  write_file(path, chrome_trace_json(label));
}

std::string TraceSession::link_matrix_json() const {
  fold_gate.assert_held();
  JsonWriter w(0);
  w.begin_object();
  w.key("schema");
  w.value("km.link_trace/v1");
  w.key("k");
  w.value(static_cast<std::uint64_t>(k_));
  w.key("supersteps");
  w.begin_array();
  for (const LinkLoadMatrix& m : matrices_) {
    w.begin_object();
    w.key("superstep");
    w.value(m.superstep);
    w.key("bits");
    w.begin_array();
    for (std::size_t src = 0; src < k_; ++src) {
      w.begin_array();
      for (std::size_t dst = 0; dst < k_; ++dst) {
        w.value(m.bits[src * k_ + dst]);
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TraceSession::write_link_matrix_json(const std::string& path) const {
  write_file(path, link_matrix_json());
}

}  // namespace km
