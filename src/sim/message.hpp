// A point-to-point message in the k-machine model.
//
// The model charges each link B bits per round; the simulator charges a
// message its serialized payload size plus a small fixed header (the tag).
// Payloads are produced with util/serialize.hpp so that counts and IDs are
// varint-encoded, keeping messages at the O(log n) bits the paper assumes.
//
// Payloads are immutable and reference-counted (PayloadRef): a broadcast
// to k-1 machines shares one buffer instead of making k-1 deep copies,
// and two-hop routing forwards the original envelope bytes without
// re-serializing.  Immutability is what makes the sharing safe — no
// receiver can observe another receiver's mutations, because there are
// none.  The refcount is intrusive and the buffer object itself recycles
// through a thread-local pool (alongside the byte storage, which rotates
// through util/buffer_pool.hpp), so steady-state message creation does
// not touch the allocator at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace km {

/// Activity counters for the PayloadBuf object pool (the thread-local
/// free lists of refcounted buffer *objects* in message.cpp — distinct
/// from util/buffer_pool.hpp, which recycles the byte storage those
/// objects carry).  Cumulative counts aggregate every thread, live and
/// exited; `pooled_objects` is a gauge over the live pools only.
struct PayloadPoolCounters {
  std::uint64_t hits = 0;    ///< acquires served from a free list
  std::uint64_t misses = 0;  ///< acquires that allocated a fresh object
  std::uint64_t recycled = 0;  ///< dead buffers adopted back into a list
  std::uint64_t dropped = 0;   ///< dead buffers freed (list at capacity)
  std::uint64_t pooled_objects = 0;  ///< gauge: objects currently pooled

  /// Activity since `start` (cumulative fields subtract; the gauge is
  /// carried over as-is, occupancy being a point-in-time reading).
  PayloadPoolCounters since(const PayloadPoolCounters& start) const noexcept {
    PayloadPoolCounters d = *this;
    d.hits -= start.hits;
    d.misses -= start.misses;
    d.recycled -= start.recycled;
    d.dropped -= start.dropped;
    return d;
  }
};

/// Aggregated PayloadBuf pool counters across every thread (exited
/// threads' activity is folded in at thread exit, like the byte pool's
/// buffer_pool_counters()).
PayloadPoolCounters payload_pool_counters() noexcept;

namespace detail {

/// Intrusively refcounted payload buffer.  Created/recycled only through
/// the functions below (thread-local free list in message.cpp).
struct PayloadBuf {
  std::atomic<std::size_t> refs{1};
  std::vector<std::byte> bytes;
};

/// Pops a recycled PayloadBuf (refs == 1, bytes empty) or allocates one.
PayloadBuf* acquire_payload_buf();
/// Returns a dead buffer (refs reached 0) to the pool; its byte storage
/// rotates back into the util buffer pool.
void recycle_payload_buf(PayloadBuf* buf) noexcept;

}  // namespace detail

/// Shared, immutable byte buffer (payload of a Message).  Cheap to copy:
/// copies share the underlying storage and bump an atomic refcount.  A
/// PayloadRef can view a suffix of another's buffer (see suffix()), which
/// routing uses to peel envelope headers without copying the inner
/// payload.
class PayloadRef {
 public:
  PayloadRef() = default;

  /// Takes ownership of `bytes` (typically Writer::take()).  Implicit so
  /// `msg.payload = writer.take()` keeps working.
  PayloadRef(std::vector<std::byte> bytes);  // NOLINT(google-explicit-*)

  PayloadRef(const PayloadRef& other) noexcept
      : buf_(other.buf_), view_(other.view_) {
    if (buf_) buf_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)),
        view_(std::exchange(other.view_, {})) {}
  PayloadRef& operator=(const PayloadRef& other) noexcept {
    PayloadRef tmp(other);
    swap(tmp);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    PayloadRef tmp(std::move(other));
    swap(tmp);
    return *this;
  }
  ~PayloadRef() { release(); }

  void swap(PayloadRef& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(view_, other.view_);
  }

  /// Deep-copies `bytes` into a fresh buffer.
  static PayloadRef copy_of(std::span<const std::byte> bytes);

  std::span<const std::byte> view() const noexcept { return view_; }
  operator std::span<const std::byte>() const noexcept { return view_; }

  const std::byte* data() const noexcept { return view_.data(); }
  std::size_t size() const noexcept { return view_.size(); }
  bool empty() const noexcept { return view_.empty(); }
  auto begin() const noexcept { return view_.begin(); }
  auto end() const noexcept { return view_.end(); }

  /// Zero-copy sub-view starting at `offset`, sharing this buffer's
  /// ownership.  offset is clamped to size().
  PayloadRef suffix(std::size_t offset) const noexcept {
    PayloadRef out(*this);  // bumps the refcount
    out.remove_prefix(offset);
    return out;
  }

  /// Zero-copy sub-view of `len` bytes starting at `offset`, sharing this
  /// buffer's ownership.  Both are clamped to the view.  The message
  /// plane uses this to hand each framed message its bytes out of the
  /// link's shared frame buffer without copying.  Note the flip side of
  /// sharing: retaining one slice keeps the whole underlying buffer
  /// alive.  A program that stores message payloads in long-lived state
  /// should detach them with copy_of() instead of holding the ref.
  PayloadRef slice(std::size_t offset, std::size_t len) const noexcept {
    PayloadRef out(*this);  // bumps the refcount
    out.remove_prefix(offset);
    out.view_ = out.view_.subspan(0, std::min(len, out.view_.size()));
    return out;
  }

  /// Narrows this ref's view in place (no refcount traffic) — the
  /// move-friendly flavor of suffix().  offset is clamped to size().
  void remove_prefix(std::size_t offset) noexcept {
    view_ = view_.subspan(std::min(offset, view_.size()));
  }

  /// True when both refs share the same underlying buffer (zero-copy
  /// sharing, as opposed to equal contents).
  bool shares_buffer_with(const PayloadRef& other) const noexcept {
    return buf_ != nullptr && buf_ == other.buf_;
  }

 private:
  void release() noexcept {
    if (buf_) {
      // Sole-owner fast path: holding a reference and observing refs == 1
      // means no other owner exists (new owners only spring from existing
      // refs, i.e. this one, on this thread) — skip the atomic RMW.
      if (buf_->refs.load(std::memory_order_acquire) == 1 ||
          buf_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        detail::recycle_payload_buf(buf_);
      }
    }
    buf_ = nullptr;
    view_ = {};
  }

  detail::PayloadBuf* buf_ = nullptr;
  std::span<const std::byte> view_;
};

struct Message {
  /// Fixed per-message framing cost (tag), charged against bandwidth.
  /// Charged for every message — even ones the message plane physically
  /// batches into a per-link frame — so the cost accounting is a pure
  /// function of the program, independent of transport batching.
  static constexpr std::size_t kHeaderBits = 16;

  std::uint32_t src = 0;  ///< stamped by the message plane on submit
  std::uint32_t dst = 0;
  std::uint16_t tag = 0;
  PayloadRef payload;

  std::size_t size_bits() const noexcept {
    return kHeaderBits + payload.size() * 8;
  }
};

/// Sentinel for EngineConfig::framed_payload_max_bytes meaning "derive
/// the framing threshold from the per-link bandwidth B" — see
/// framed_payload_default_bytes().  The explicit knob remains an
/// override: any other value (including 0 = framing off) is used as-is.
inline constexpr std::size_t kFramedPayloadAuto =
    static_cast<std::size_t>(-1);

/// Clamp range for the derived framing threshold.  The floor keeps
/// framing alive at tiny B (one varint-prefixed entry must still be
/// worth batching); the ceiling stops huge-B configurations from
/// memcpy-ing multi-KiB payloads that amortize an allocation fine on
/// their own.
inline constexpr std::size_t kFramedPayloadMinDefaultBytes = 64;
inline constexpr std::size_t kFramedPayloadMaxDefaultBytes = 4096;

/// Derived default for EngineConfig::framed_payload_max_bytes: the
/// largest payload (bytes) the message plane batches into a per-link
/// frame instead of giving it a refcounted buffer of its own.  Framing
/// exists for messages far below the per-link round budget — a payload
/// that fills a round alone amortizes its buffer — so the default is
/// one round's worth of bytes, B/8, clamped to
/// [kFramedPayloadMinDefaultBytes, kFramedPayloadMaxDefaultBytes].
/// (The static 256-byte default this replaces sat at exactly B/8 for
/// the common B=2048 microbench setting; now every B gets that fit.)
/// Applies to the Writer/vector send overloads, from a link's second
/// message of the superstep onward; PayloadRef sends (including
/// broadcast) always stay zero-copy shared.  Purely a transport policy:
/// accounting never depends on it, whatever the threshold resolves to.
constexpr std::size_t framed_payload_default_bytes(
    std::uint64_t bandwidth_bits) noexcept {
  const std::uint64_t round_bytes = bandwidth_bits / 8;
  if (round_bytes < kFramedPayloadMinDefaultBytes) {
    return kFramedPayloadMinDefaultBytes;
  }
  if (round_bytes > kFramedPayloadMaxDefaultBytes) {
    return kFramedPayloadMaxDefaultBytes;
  }
  return static_cast<std::size_t>(round_bytes);
}

/// Tags >= kReservedTagBase are reserved for the runtime (collectives,
/// two-hop routing envelopes); algorithms must use smaller tags.
inline constexpr std::uint16_t kReservedTagBase = 0xFF00;
inline constexpr std::uint16_t kCollectiveTag = 0xFF01;
inline constexpr std::uint16_t kRouteEnvelopeTag = 0xFF02;
/// Envelope of one chunk of an oversized two-hop message (see
/// sim/routing.hpp): payloads larger than the per-link round budget are
/// split across multiple random intermediates and reassembled at the
/// destination, restoring Lemma 13's unit-size-message premise.
inline constexpr std::uint16_t kRouteChunkTag = 0xFF03;

}  // namespace km
