// A point-to-point message in the k-machine model.
//
// The model charges each link B bits per round; the simulator charges a
// message its serialized payload size plus a small fixed header (the tag).
// Payloads are produced with util/serialize.hpp so that counts and IDs are
// varint-encoded, keeping messages at the O(log n) bits the paper assumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace km {

struct Message {
  /// Fixed per-message framing cost (tag), charged against bandwidth.
  static constexpr std::size_t kHeaderBits = 16;

  std::uint32_t src = 0;  ///< filled in by the engine on submit
  std::uint32_t dst = 0;
  std::uint16_t tag = 0;
  std::vector<std::byte> payload;

  std::size_t size_bits() const noexcept {
    return kHeaderBits + payload.size() * 8;
  }
};

/// Tags >= kReservedTagBase are reserved for the runtime (collectives,
/// two-hop routing envelopes); algorithms must use smaller tags.
inline constexpr std::uint16_t kReservedTagBase = 0xFF00;
inline constexpr std::uint16_t kCollectiveTag = 0xFF01;
inline constexpr std::uint16_t kRouteEnvelopeTag = 0xFF02;

}  // namespace km
