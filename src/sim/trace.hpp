// Superstep tracing plane: wall-time phase spans, per-superstep counter
// events, and link-load matrices for the k-machine engine.
//
// The paper's cost model is rounds and bits, and the engine accounts those
// exactly — but every wall-time question (where does a superstep's real
// time go? which machine is the straggler at the barrier? which links
// carry the load the max_link_bits scalar only summarizes?) needs a layer
// the accounting cannot answer.  This module is that layer:
//
//  - Every machine thread records spans into its own MachineTraceBuffer
//    (single writer, no locks, no atomics — the buffer is owned by the
//    machine's thread until the engine joins).  Each (machine, superstep)
//    yields exactly four spans: `compute` (program code between
//    exchanges), `send` (serialization/bucketing inside send(), nested in
//    compute), `barrier_wait` (arrival to release at the combining-tree
//    barrier — the straggler signature), and `deliver` (the lock-free
//    inbound drain).
//  - The root finalizer emits one TraceCounterSample per superstep
//    (rounds, messages, bits, max_link_bits, buffer/payload-pool deltas),
//    recorded under the barrier's fold-phase exclusivity.
//  - Opt-in (`record_links`): the leaf folders snapshot each machine's
//    per-destination bit row before zeroing it, folding a full k x k
//    link-bits matrix per superstep — the data behind load-imbalance
//    heatmaps and the balanced-proxy-assignment hypothesis (ROADMAP
//    item 5).
//
// Clock discipline: this module is the one sanctioned home (alongside the
// wall_ms reads in sim/engine.cpp) for steady-clock reads — km_lint's
// trace-outside-module rule rejects allow(wall-clock) escapes anywhere
// else.  Timestamps are nanoseconds relative to the session epoch and
// never feed the simulation: rounds/bits/delivery are byte-identical with
// tracing on or off (tests/test_trace.cpp proves it per workload).
//
// Export: chrome_trace_json() emits the Chrome/Perfetto trace-event
// format (one pid per run, one tid per machine, ph "X" slices + ph "C"
// counters) loadable in https://ui.perfetto.dev or chrome://tracing;
// link_matrix_json() emits the km.link_trace/v1 document.  summarize()
// folds the spans into the Metrics::timing block (per-machine phase_ms +
// barrier-wait skew) surfaced in km.run_result/v1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hpp"
#include "util/annotations.hpp"

// Compile-time kill switch: building with -DKM_DISABLE_TRACING removes
// every tracing hook from the engine (EngineConfig::trace then has no
// effect and Engine::trace_session() stays null).  The default build
// keeps the hooks; with tracing not requested at runtime they cost one
// predictable null-pointer branch per seam.
#if defined(KM_DISABLE_TRACING)
#define KM_TRACING_ENABLED 0
#else
#define KM_TRACING_ENABLED 1
#endif

namespace km {

/// The four wall-time phases of a (machine, superstep).
enum class TracePhase : std::uint8_t {
  kCompute = 0,      ///< program code between exchanges (minus send time)
  kSend = 1,         ///< serialization + bucketing inside send()/broadcast()
  kBarrierWait = 2,  ///< arrival at the tree barrier until release
  kDeliver = 3,      ///< lock-free inbound drain after release
};

std::string_view to_string(TracePhase phase) noexcept;

/// One recorded interval.  `kSend` spans nest inside the same superstep's
/// `kCompute` span; the other three tile the machine's wall time.
struct TraceSpan {
  std::uint64_t superstep = 0;
  TracePhase phase = TracePhase::kCompute;
  std::uint64_t begin_ns = 0;  ///< relative to the session epoch
  std::uint64_t end_ns = 0;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

/// Per-superstep counter sample, recorded once by the root finalizer.
/// Pool fields are the process-wide counter delta since the previous
/// superstep (with one engine running — the normal case — that is exactly
/// this run's machine threads).
struct TraceCounterSample {
  std::uint64_t superstep = 0;
  std::uint64_t at_ns = 0;  ///< finalize time, relative to the epoch
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t payload_pool_hits = 0;
  std::uint64_t payload_pool_misses = 0;
};

/// One superstep's k x k link-bits matrix (row-major, bits[src * k + dst]
/// = bits machine src sent to machine dst).  Only supersteps that carried
/// traffic get a matrix; the superstep index says which.
struct LinkLoadMatrix {
  std::uint64_t superstep = 0;
  std::vector<std::uint64_t> bits;  ///< k * k, row-major by source
};

class TraceSession;

/// Span recorder for one machine.  Single-writer: only the owning machine
/// thread appends (between Engine::run's spawn and join), and readers
/// (summarize/export) run after the join — so no synchronization beyond
/// the engine's own thread lifecycle is needed.
class MachineTraceBuffer {
 public:
  /// Steady-clock read, nanoseconds since the session epoch.  The one
  /// clock the machine threads touch; confined to trace.cpp.
  std::uint64_t now_ns() const noexcept;

  /// Marks the origin of the machine's first compute span (called on the
  /// machine thread right before the program starts).
  void thread_begin() noexcept;

  /// Accumulates one send() call's duration into the current superstep's
  /// nested send span.
  void add_send(std::uint64_t begin_ns, std::uint64_t end_ns) noexcept;

  /// Superstep boundary, phase by phase: begin_sync closes the compute
  /// span (emitting the nested send span) at barrier arrival, end_barrier
  /// closes the barrier_wait span at release, end_deliver closes the
  /// deliver span and advances to the next superstep.
  void begin_sync(std::uint64_t at_ns);
  void end_barrier(std::uint64_t at_ns);
  void end_deliver(std::uint64_t at_ns);

  const std::vector<TraceSpan>& spans() const noexcept { return spans_; }

 private:
  friend class TraceSession;
  explicit MachineTraceBuffer(const TraceSession* session)
      : session_(session) {}

  const TraceSession* session_;
  std::vector<TraceSpan> spans_;
  std::uint64_t superstep_ = 0;      ///< this machine's exchange count
  std::uint64_t prev_end_ns_ = 0;    ///< where the next compute span opens
  std::uint64_t phase_begin_ns_ = 0;  ///< barrier/deliver span origin
  std::uint64_t send_begin_ns_ = 0;
  std::uint64_t send_accum_ns_ = 0;
  bool any_send_ = false;
};

/// One engine run's trace: k machine buffers plus the fold-phase streams
/// (counter samples, link matrices).  Created by Engine::run when
/// EngineConfig::trace is set; read via Engine::trace_session() after the
/// run.  Thread contract: machine buffers are written by their own
/// threads; the fold-phase streams are written only under the barrier's
/// fold protocol (see fold_gate); everything is read single-threaded
/// after the engine joins.
class TraceSession {
 public:
  TraceSession(std::size_t k, bool record_links);

  std::size_t k() const noexcept { return k_; }
  bool links_enabled() const noexcept { return links_; }

  MachineTraceBuffer& machine(std::size_t id) { return *machines_[id]; }
  const MachineTraceBuffer& machine(std::size_t id) const {
    return *machines_[id];
  }

  /// Steady-clock read relative to the session epoch (see the module
  /// comment for the clock discipline).
  std::uint64_t now_ns() const noexcept;

  /// Capability standing for the barrier's fold-phase exclusivity over
  /// the streams below — same protocol-not-a-lock pattern as
  /// TreeBarrier::fold_phase (the engine's fold/finalize hooks assert it;
  /// see Engine::fold_node).
  PhantomCapability fold_gate;

  /// Leaf-fold hook: copies machine `src`'s per-destination bit row (k
  /// entries) into the current superstep's matrix before the fold zeroes
  /// it.  Concurrent leaf folders write disjoint rows.
  void record_link_row(std::size_t src,
                       const std::uint64_t* row_bits) KM_REQUIRES(fold_gate);

  /// Root-finalizer hook, once per counted superstep: records the counter
  /// sample and, when links are enabled and the superstep carried
  /// traffic, commits the current link matrix.
  void finalize_superstep(std::uint64_t superstep, std::uint64_t rounds,
                          std::uint64_t messages, std::uint64_t bits,
                          std::uint64_t max_link_bits) KM_REQUIRES(fold_gate);

  const std::vector<TraceCounterSample>& counters() const noexcept
      KM_REQUIRES(fold_gate) {
    return counters_;
  }
  const std::vector<LinkLoadMatrix>& link_matrices() const noexcept
      KM_REQUIRES(fold_gate) {
    return matrices_;
  }

  /// Folds the spans into the per-machine phase breakdown plus
  /// barrier-wait skew statistics (Metrics::timing).
  TimingSummary summarize() const;

  /// Chrome/Perfetto trace-event JSON: one pid (1) per run, one tid per
  /// machine, ph "X" phase slices (ts/dur in microseconds), ph "C"
  /// counter events, process/thread-name metadata.  `label` names the
  /// process (e.g. "workload on dataset").
  std::string chrome_trace_json(std::string_view label) const;
  void write_chrome_trace(const std::string& path,
                          std::string_view label) const;

  /// km.link_trace/v1: {"schema", "k", "supersteps": [{"superstep",
  /// "bits": [[row 0...], ...]}]}.  Empty unless record_links was set.
  std::string link_matrix_json() const;
  void write_link_matrix_json(const std::string& path) const;

 private:
  std::size_t k_;
  bool links_;
  std::uint64_t epoch_ns_;  ///< absolute steady-clock origin of the run

  // unique_ptr for stable addresses and to keep adjacent machines'
  // write-hot buffers off one cache line.
  std::vector<std::unique_ptr<MachineTraceBuffer>> machines_;

  std::vector<TraceCounterSample> counters_ KM_GUARDED_BY(fold_gate);
  std::vector<LinkLoadMatrix> matrices_ KM_GUARDED_BY(fold_gate);
  /// Scratch matrix the leaf folders fill row by row; committed (and
  /// re-zeroed) by finalize_superstep when the superstep had traffic.
  std::vector<std::uint64_t> current_links_ KM_GUARDED_BY(fold_gate);
  /// Pool baselines for the per-superstep deltas.
  BufferPoolCounters pool_prev_ KM_GUARDED_BY(fold_gate);
  PayloadPoolCounters payload_prev_ KM_GUARDED_BY(fold_gate);
};

}  // namespace km
