// Message routing strategies (Lemma 13 and the randomized proxy idea).
//
// Lemma 13: in the complete k-machine network, if every machine sources
// O(x) messages with independently random destinations (or every machine
// sinks O(x) messages with random sources), direct routing over the
// source->destination link delivers everything in O((x log x)/k) rounds
// whp.  route_direct is that strategy (one superstep).
//
// When destinations are *not* random (skewed), Valiant-style two-hop
// routing (route_via_random_intermediate) first sends each message to a
// uniformly random intermediate machine, which forwards it; both hops then
// satisfy the premise of Lemma 13.  Costs two supersteps.
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace km {

/// One superstep: send every (dst, tag, payload) directly; returns the
/// messages this machine received.
std::vector<Message> route_direct(MachineContext& ctx,
                                  std::vector<Message> msgs);

/// Two supersteps: each message travels via a uniformly random
/// intermediate machine.  The envelope (final destination + original tag
/// + original source) is charged against bandwidth like any other payload
/// bytes.  Delivered messages report the *original* sender in src, not
/// the relay; the relay forwards the hop-1 envelope bytes verbatim (a
/// shared PayloadRef), so nothing is re-serialized on hop 2.
std::vector<Message> route_via_random_intermediate(MachineContext& ctx,
                                                   std::vector<Message> msgs);

}  // namespace km
