// Message routing strategies (Lemma 13 and the randomized proxy idea).
//
// Lemma 13: in the complete k-machine network, if every machine sources
// O(x) messages with independently random destinations (or every machine
// sinks O(x) messages with random sources), direct routing over the
// source->destination link delivers everything in O((x log x)/k) rounds
// whp.  route_direct is that strategy (one superstep).
//
// When destinations are *not* random (skewed), Valiant-style two-hop
// routing (route_via_random_intermediate) first sends each message to a
// uniformly random intermediate machine, which forwards it; both hops then
// satisfy the premise of Lemma 13.  Costs two supersteps.
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace km {

/// One superstep: send every (dst, tag, payload) directly; returns the
/// messages this machine received.
std::vector<Message> route_direct(MachineContext& ctx,
                                  std::vector<Message> msgs);

/// Two supersteps: each message travels via a uniformly random
/// intermediate machine.  The envelope (final destination + original tag
/// + original source) is charged against bandwidth like any other payload
/// bytes.  Delivered messages report the *original* sender in src, not
/// the relay; the relay forwards the hop-1 envelope bytes verbatim (a
/// shared PayloadRef), so nothing is re-serialized on hop 2.
///
/// Lemma 13's premise is unit-size messages; a payload larger than one
/// round's per-link budget (B/8 bytes) would keep its two links congested
/// however random the intermediate.  Such messages are therefore split
/// into chunks — sized so chunk bytes plus the chunk envelope fit a
/// single round's budget — each sent via its *own* random intermediate
/// (tag kRouteChunkTag carries (origin, seq, index, count) for
/// reassembly), and spliced back together at the destination before being
/// returned — callers still see exactly one delivered message with the
/// original src/tag/payload.  Messages at or under the budget use the
/// plain envelope, bit-for-bit as before.
std::vector<Message> route_via_random_intermediate(MachineContext& ctx,
                                                   std::vector<Message> msgs);

}  // namespace km
