// Input partitions for the k-machine model (Section 1.1).
//
// The paper's default is the random vertex partition (RVP): each vertex is
// assigned independently and uniformly at random to one of the k machines,
// together with its incident edges.  RVP is conveniently realized by
// hashing (by_hash): any machine that knows a vertex ID can compute its
// home machine locally — the algorithms rely on this for addressing.
//
// The random edge partition (REP, footnote 3) assigns each *edge*
// independently to a machine; convert_rep_to_rvp (in core/) transforms one
// into the other in O~(m/k^2 + n/k) rounds.
//
// identity() gives the congested-clique special case k = n, one vertex per
// machine (Corollary 1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace km {

/// Assignment of vertices [0,n) to machines [0,k).
class VertexPartition {
 public:
  VertexPartition() = default;

  /// RVP via true independent uniform assignment.
  static VertexPartition random(std::size_t n, std::size_t k, Rng& rng);

  /// RVP via hashing: home(v) = hash(seed, v) mod k.  Deterministic given
  /// the seed; this is how real systems (Pregel/Giraph) place vertices.
  static VertexPartition by_hash(std::size_t n, std::size_t k,
                                 std::uint64_t seed);

  /// Deterministic balanced partition (vertex v -> v mod k); for tests.
  static VertexPartition round_robin(std::size_t n, std::size_t k);

  /// Congested clique: k = n, machine v hosts exactly vertex v.
  static VertexPartition identity(std::size_t n);

  std::size_t n() const noexcept { return home_.size(); }
  std::size_t k() const noexcept { return k_; }

  std::uint32_t home(Vertex v) const noexcept { return home_[v]; }

  /// Vertices owned by machine i, ascending.
  const std::vector<Vertex>& owned(std::size_t machine) const noexcept {
    return owned_[machine];
  }

  std::size_t load(std::size_t machine) const noexcept {
    return owned_[machine].size();
  }
  std::size_t max_load() const noexcept;

  /// max load / (n/k); 1.0 = perfectly balanced.
  double imbalance() const noexcept;

 private:
  VertexPartition(std::size_t k, std::vector<std::uint32_t> home);

  std::size_t k_ = 0;
  std::vector<std::uint32_t> home_;
  std::vector<std::vector<Vertex>> owned_;
};

/// Assignment of edge-list indices [0,m) to machines [0,k).
class EdgePartition {
 public:
  static EdgePartition random(std::size_t m, std::size_t k, Rng& rng);
  static EdgePartition by_hash(std::size_t m, std::size_t k,
                               std::uint64_t seed);

  std::size_t m() const noexcept { return home_.size(); }
  std::size_t k() const noexcept { return k_; }
  std::uint32_t home(std::size_t edge_index) const noexcept {
    return home_[edge_index];
  }
  const std::vector<std::uint32_t>& owned(std::size_t machine) const noexcept {
    return owned_[machine];
  }
  std::size_t max_load() const noexcept;

 private:
  EdgePartition(std::size_t k, std::vector<std::uint32_t> home);

  std::size_t k_ = 0;
  std::vector<std::uint32_t> home_;
  std::vector<std::vector<std::uint32_t>> owned_;
};

}  // namespace km
