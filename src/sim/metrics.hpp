// Cost accounting for a k-machine execution.
//
// `rounds` is the paper's cost measure: for every superstep, the network
// charges max over ordered links of ceil(bits on link / B) rounds (at
// least 1 if any message was sent).  `recv_bits_per_machine` is the
// empirical counterpart of the information cost IC in the General Lower
// Bound Theorem: the total number of bits a machine received.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/buffer_pool.hpp"

namespace km {

/// Cost of one superstep, recorded when EngineConfig::record_timeline is
/// set.  The sum of each field over the timeline equals the corresponding
/// Metrics total (tests/test_metrics.cpp asserts this invariant).
struct SuperstepStats {
  std::uint64_t superstep = 0;  ///< 0-based index
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits = 0;  ///< peak single-link load this superstep

  friend bool operator==(const SuperstepStats&,
                         const SuperstepStats&) = default;
};

/// Wall-time phase breakdown for one machine, folded from its trace
/// spans (sim/trace.hpp).  compute_ms excludes the nested send time, so
/// compute + send + barrier_wait + deliver ≈ the machine's share of the
/// run's wall time (tests/test_trace.cpp pins the tolerance).
struct MachinePhaseMs {
  std::uint32_t machine = 0;
  double compute_ms = 0.0;
  double send_ms = 0.0;
  double barrier_wait_ms = 0.0;
  double deliver_ms = 0.0;
};

/// Aggregate timing view of a traced run.  Like `wall_ms`, none of this
/// is part of the deterministic run identity: the `timing` object in
/// km.run_result/v1 is exempt from golden diffs.  `barrier_wait_skew`
/// (max/mean total barrier wait across machines) is the straggler
/// signature: ~1 means machines arrive together, >>1 means one machine
/// serializes the superstep for everyone.
struct TimingSummary {
  bool enabled = false;  ///< true iff the run was traced
  std::vector<MachinePhaseMs> per_machine;
  double barrier_wait_max_ms = 0.0;
  double barrier_wait_mean_ms = 0.0;
  double barrier_wait_skew = 0.0;  ///< max/mean, 0 when mean is 0
};

struct Metrics {
  std::uint64_t rounds = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits_superstep = 0;  ///< peak single-link load
  std::uint64_t dropped_messages = 0;  ///< sent to already-finished machines
  std::vector<std::uint64_t> send_bits_per_machine;
  std::vector<std::uint64_t> recv_bits_per_machine;
  double wall_ms = 0.0;

  /// Per-superstep cost breakdown; empty unless the engine ran with
  /// EngineConfig::record_timeline (opt-in: size is k-independent but
  /// grows with supersteps, and most callers only want totals).
  std::vector<SuperstepStats> timeline;

  /// Buffer-pool activity during this run: hits/misses/evictions are the
  /// process-wide counter delta between run start and end (with one
  /// engine running at a time — the normal case — that is exactly the
  /// run's machine threads; concurrent pool users would be folded in
  /// too), and the occupancy gauges are the end-of-run reading.  A large
  /// evicted_bytes means the workload's payloads thrash past the
  /// per-thread pool caps and every superstep pays the allocator — see
  /// util/buffer_pool.hpp.
  BufferPoolCounters pool;

  /// PayloadBuf *object* pool activity during this run (same per-run
  /// delta convention as `pool`, which tracks the byte storage).  A
  /// large `dropped` means more than 1024 payload objects die on one
  /// thread's pool between acquires — the object pool is thrashing even
  /// if the byte pool is not.
  PayloadPoolCounters payload_pool;

  /// Wall-time phase breakdown; `timing.enabled` is false unless the run
  /// was traced (EngineConfig::trace).  Exempt from golden diffs like
  /// `wall_ms` — wall time is not part of the deterministic run identity.
  TimingSummary timing;

  /// Max bits received by any machine = empirical information cost bound.
  std::uint64_t max_recv_bits() const noexcept {
    if (recv_bits_per_machine.empty()) return 0;
    return *std::max_element(recv_bits_per_machine.begin(),
                             recv_bits_per_machine.end());
  }

  std::uint64_t max_send_bits() const noexcept {
    if (send_bits_per_machine.empty()) return 0;
    return *std::max_element(send_bits_per_machine.begin(),
                             send_bits_per_machine.end());
  }

  std::string summary() const;
};

}  // namespace km
