#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <utility>

// Sanitizer fiber hooks.  Both sanitizers need to be told about stack
// switches: ASan so its fake-stack frames follow the fiber (and so the
// stack-use-after-return machinery does not see wild addresses), TSan so
// happens-before state is tracked per logical fiber rather than per OS
// thread.  gcc defines __SANITIZE_*__; clang exposes __has_feature.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KM_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define KM_FIBER_TSAN 1
#endif
#endif
#if !defined(KM_FIBER_ASAN) && defined(__SANITIZE_ADDRESS__)
#define KM_FIBER_ASAN 1
#endif
#if !defined(KM_FIBER_TSAN) && defined(__SANITIZE_THREAD__)
#define KM_FIBER_TSAN 1
#endif

#if defined(KM_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(KM_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace km {

namespace {

std::size_t page_size() {
  static const std::size_t sz =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return sz;
}

// The context a switch is currently leaving (valid only between
// start_switch and the matching on_resume on this thread).  ASan's
// finish_switch_fiber reports the stack we just left, which is how the
// worker's *native* stack bounds are learned — there is no portable way
// to ask for them up front.
#if defined(KM_FIBER_ASAN)
thread_local FiberContext* g_leaving = nullptr;
#endif

}  // namespace

FiberStack::FiberStack(std::size_t bytes) {
  const std::size_t page = page_size();
  if (bytes < page) bytes = page;
  const std::size_t usable = (bytes + page - 1) / page * page;
  map_bytes_ = usable + page;  // + low guard page
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (map == MAP_FAILED) throw std::bad_alloc();
  // Stacks grow down; the guard sits below the usable range so an
  // overflow hits PROT_NONE instead of the neighbouring mapping.
  if (::mprotect(map, page, PROT_NONE) != 0) {
    ::munmap(map, map_bytes_);
    throw std::bad_alloc();
  }
  map_ = map;
  base_ = static_cast<char*>(map) + page;
  size_ = usable;
}

FiberStack::~FiberStack() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

FiberStack::FiberStack(FiberStack&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

FiberStack& FiberStack::operator=(FiberStack&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

FiberContext::FiberContext() {
  ::getcontext(&ctx_);
#if defined(KM_FIBER_TSAN)
  // The native context reuses the OS thread's own TSan state.
  tsan_fiber_ = __tsan_get_current_fiber();
#endif
}

FiberContext::FiberContext(const FiberStack& stack, Entry entry, void* arg)
    : entry_(entry),
      arg_(arg),
      stack_bottom_(stack.base()),
      stack_size_(stack.size()) {
  ::getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack.base();
  ctx_.uc_stack.ss_size = stack.size();
  ctx_.uc_link = nullptr;  // entry must switch away, never return
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&FiberContext::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
#if defined(KM_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
  owns_tsan_fiber_ = true;
#endif
}

FiberContext::~FiberContext() {
#if defined(KM_FIBER_TSAN)
  // Runs on the owning worker's native context, after the fiber has
  // terminated (or before it ever ran) — never from the fiber itself.
  if (owns_tsan_fiber_ && tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
#endif
}

void FiberContext::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<FiberContext*>(bits);
  on_resume(*self);
  self->entry_(self->arg_);
  // Unreachable by contract: entry_ terminates with a final
  // switch_to(..., terminating = true).
  __builtin_trap();
}

void FiberContext::on_resume(FiberContext& landed) {
#if defined(KM_FIBER_ASAN)
  const void* old_bottom = nullptr;
  std::size_t old_size = 0;
  __sanitizer_finish_switch_fiber(landed.asan_fake_stack_, &old_bottom,
                                  &old_size);
  landed.asan_fake_stack_ = nullptr;
  if (g_leaving != nullptr && g_leaving->stack_bottom_ == nullptr) {
    g_leaving->stack_bottom_ = old_bottom;
    g_leaving->stack_size_ = old_size;
  }
  g_leaving = nullptr;
#else
  (void)landed;
#endif
}

void FiberContext::switch_to(FiberContext& from, FiberContext& to,
                             bool terminating) {
#if defined(KM_FIBER_ASAN)
  // A null save slot tells ASan the departing fiber is gone for good, so
  // its fake-stack frames are released instead of parked.
  void** save = terminating ? nullptr : &from.asan_fake_stack_;
  g_leaving = terminating ? nullptr : &from;
  __sanitizer_start_switch_fiber(save, to.stack_bottom_, to.stack_size_);
#else
  (void)terminating;
#endif
#if defined(KM_FIBER_TSAN)
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
  ::swapcontext(&from.ctx_, &to.ctx_);
  // Only reached when something later switches back into `from`; a
  // terminating switch never returns here.
  on_resume(from);
}

}  // namespace km
