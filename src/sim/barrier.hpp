// Sense-reversing combining-tree barrier for the SPMD engine.
//
// The engine's superstep rendezvous used to be a single mutex + condition
// variable: every machine locked the same mutex to arrive, the last
// arriver merged all k*k per-link counters alone, and the notify_all woke
// k-1 waiters that then re-acquired that same mutex one by one.  At
// k >= 256 both the arrival and the wake-up serialize on one cache line
// and one lock.
//
// TreeBarrier replaces that with the classic combining-tree / sense-
// reversing design (Mellor-Crummey & Scott):
//
//  - Participants are grouped four to a leaf node; leaves are grouped
//    four to a parent, and so on up to a single root (arity kArity = 4).
//  - Arrival is a relaxed-contention fetch_add on the participant's leaf.
//    The last arriver at a node *combines* its children (the caller's
//    `combine` hook — the engine folds per-link traffic counters there)
//    and climbs to the parent; everyone else parks.  The last arriver at
//    the root runs `finalize` (the engine's superstep bookkeeping) exactly
//    once per episode.  Work that used to be O(k^2) on one thread folds
//    up the tree in O(arity * k) pieces.
//  - Release is sense-reversing: a single global sense word flips once
//    per episode (release store + notify_all); parked participants block
//    on std::atomic::wait (a futex on Linux — no spinning, no mutex
//    reacquisition stampede) until the sense matches their local sense.
//
// Memory ordering: every arrival fetch_add is acq_rel, so the last
// arriver of a node happens-after all its children's arrivals, and by
// induction the root's finalize happens-after *every* participant's
// arrival (this is what lets the engine read all machines' counters and
// buckets without a lock).  The sense flip is a release store observed
// with acquire loads, so after arrive() returns, every participant
// happens-after finalize — the delivery phase can read any machine's
// buckets race-free.  The ABA hazard of sense reversal is excluded by
// the barrier itself: the sense cannot flip twice until every
// participant (including the slowest waiter) has arrived again.
//
// Hooks must not throw: the caller wraps fallible work (fault injection,
// delivery errors) and converts it into a stop decision; see
// Engine::finalize_superstep.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/annotations.hpp"

namespace km {

class TreeBarrier {
 public:
  /// Fan-in of every tree node (machines per leaf, children per internal
  /// node).  Four keeps the tree shallow (k = 256 folds in 4 levels)
  /// while each combine stays a handful of cache lines.
  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  explicit TreeBarrier(std::size_t participants);

  std::size_t participants() const noexcept { return participants_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t root() const noexcept { return nodes_.size() - 1; }
  std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Leaf node id participant `who` arrives at.
  std::size_t leaf_of(std::size_t who) const noexcept {
    return who / kArity;
  }
  std::size_t parent_of(std::size_t node) const noexcept {
    return nodes_[node].parent;
  }
  bool is_leaf(std::size_t node) const noexcept { return nodes_[node].leaf; }
  std::uint32_t fan_in(std::size_t node) const noexcept {
    return nodes_[node].fan_in;
  }
  /// Children of `node` as a half-open range: participant ids when the
  /// node is a leaf, node ids otherwise.
  std::pair<std::size_t, std::size_t> children_of(
      std::size_t node) const noexcept {
    return {nodes_[node].child_begin, nodes_[node].child_end};
  }

  /// Arrive at the barrier as participant `who` and block until all
  /// participants of this episode have arrived and the root finalizer
  /// ran.  On the folding path, `combine(node, leaf, child_begin,
  /// child_end)` is invoked exactly once per node per episode (on the
  /// node's last arriver, children quiescent); `finalize() -> bool` is
  /// invoked exactly once per episode on the root's last arriver, and
  /// its result (the stop decision) is returned to *every* participant.
  /// Neither hook may throw.  Both hooks run holding fold_phase (the
  /// phantom capability below), so hook bodies annotated
  /// KM_REQUIRES(fold_phase) are machine-checked against the state that
  /// only folders may touch.
  template <typename Combine, typename Finalize>
  bool arrive(std::size_t who, Combine&& combine, Finalize&& finalize) {
    if (arrive_begin(who, combine, finalize) == ArriveOutcome::kParked) {
      // Thread-granular rendezvous: park this OS thread until the root
      // flips the sense.
      const std::uint32_t my_sense = local_[who].value;
      std::uint32_t seen;
      while ((seen = sense_.load(std::memory_order_acquire)) != my_sense) {
        sense_.wait(seen, std::memory_order_acquire);
      }
    }
    return stop_.load(std::memory_order_relaxed) != 0;
  }

  /// What arrive_begin() left the participant doing.
  enum class ArriveOutcome {
    kParked,    ///< not released yet: poll released(who) before resuming
    kReleased,  ///< this participant ran finalize; the episode is over
  };

  /// The non-blocking half of arrive(), for machine-granular schedulers
  /// (sim/executor.hpp): identical arrival/fold/finalize protocol, but a
  /// participant that is not the last arriver of its node returns
  /// kParked immediately instead of futex-waiting, so the worker thread
  /// can run another machine.  The caller resumes the participant once
  /// released(who) holds and then reads the stop decision from
  /// stop_flag().  Hook contract is the same as arrive()'s.
  template <typename Combine, typename Finalize>
  ArriveOutcome arrive_begin(std::size_t who, Combine&& combine,
                             Finalize&& finalize) {
    // Flip this participant's sense first: the episode completes when the
    // global sense catches up to it.
    const std::uint32_t my_sense = local_[who].value ^ 1u;
    local_[who].value = my_sense;
    std::size_t node = leaf_of(who);
    while (true) {
      Node& n = nodes_[node];
      if (n.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 <
          n.fan_in) {
        // Not the last arriver here: the participant is parked until the
        // root flips the sense.
        return ArriveOutcome::kParked;
      }
      // Last arriver: this node's children are all in.  Re-arm the
      // counter for the next episode (nobody can re-arrive before the
      // sense flips, which happens-after this store), fold the children,
      // and carry the combined result up the tree.
      n.arrived.store(0, std::memory_order_relaxed);
      fold_phase.acquire();  // fan-in won: sole folder of `node`'s subtree
      combine(node, n.leaf, n.child_begin, n.child_end);
      fold_phase.release();
      if (n.parent == kNoParent) break;
      node = n.parent;
    }
    fold_phase.acquire();  // root fan-in won: every other machine is parked
    const bool stop = finalize();
    fold_phase.release();
    // Publish the stop decision, then the sense flip releases everything
    // the folding path and finalize wrote (counters, metrics, buckets).
    stop_.store(stop ? 1u : 0u, std::memory_order_relaxed);
    sense_.store(my_sense, std::memory_order_release);
    sense_.notify_all();
    return ArriveOutcome::kReleased;
  }

  /// True once the episode participant `who` arrived for has completed
  /// (acquire: a true result happens-after the root's finalize).  Poll
  /// only from the thread that owns `who` — local sense is unsynchronized
  /// by design.
  bool released(std::size_t who) const noexcept {
    return sense_.load(std::memory_order_acquire) == local_[who].value;
  }

  /// Stop decision of the last completed episode.  Read only after
  /// released(who) came back true (ordering rides the sense word).
  bool stop_flag() const noexcept {
    return stop_.load(std::memory_order_relaxed) != 0;
  }

  /// Current value of the sense word, for a futex-style idle protocol:
  /// sample it, recheck released() for every parked machine, then
  /// wait_sense(sample).  A flip between recheck and wait leaves the word
  /// != sample, so the wait falls through (no missed wakeup).
  std::uint32_t sense_word() const noexcept {
    return sense_.load(std::memory_order_acquire);
  }

  /// Blocks while the sense word still equals `seen` (may wake
  /// spuriously; re-sample and recheck).
  void wait_sense(std::uint32_t seen) const noexcept {
    sense_.wait(seen, std::memory_order_acquire);
  }

  /// Re-arms the barrier for a fresh run.  Callable only while no thread
  /// is inside arrive() (the engine calls it before spawning machines).
  void reset() noexcept;

  /// Capability standing for "exclusive fold-phase access": held by the
  /// combine hook over the consumed children's state and by the finalize
  /// hook over everything the fold produced.  The exclusion mechanism is
  /// the barrier protocol itself (the winning fetch_add at a node's
  /// fan-in), not a lock — this phantom makes that guarantee visible to
  /// -Wthread-safety so fold-side state can be KM_GUARDED_BY it.  Public:
  /// callers name it in their own annotations (see Engine::fold_node).
  PhantomCapability fold_phase;

 private:
  // One cache line per node: the arrival counter is the only contended
  // word, and false sharing between sibling nodes would serialize the
  // very fan-out the tree exists to create.
  struct alignas(64) Node {
    std::atomic<std::uint32_t> arrived{0};
    std::uint32_t fan_in = 0;
    std::size_t parent = kNoParent;
    std::size_t child_begin = 0;  ///< participants (leaf) or node ids
    std::size_t child_end = 0;
    bool leaf = false;
  };
  struct alignas(64) LocalSense {
    std::uint32_t value = 0;
  };

  std::vector<Node> nodes_;  ///< leaves first, level by level; root last
  std::vector<LocalSense> local_;
  std::atomic<std::uint32_t> sense_{0};
  std::atomic<std::uint32_t> stop_{0};
  std::size_t participants_ = 0;
  std::size_t leaf_count_ = 0;
};

}  // namespace km
