#include "sim/barrier.hpp"

#include <stdexcept>

#include "util/mathx.hpp"

namespace km {

TreeBarrier::TreeBarrier(std::size_t participants)
    : participants_(participants) {
  if (participants < 1) {
    throw std::invalid_argument("TreeBarrier: participants must be >= 1");
  }
  leaf_count_ = ceil_div(participants, kArity);

  // Count nodes level by level (leaves, then ceil(n/4) parents of those,
  // ... down to a single root) so the vector never reallocates: Node
  // holds a std::atomic and must be constructed in place.
  std::size_t total = 0;
  for (std::size_t level = leaf_count_;; level = ceil_div(level, kArity)) {
    total += level;
    if (level == 1) break;
  }
  nodes_ = std::vector<Node>(total);
  local_ = std::vector<LocalSense>(participants);

  // Leaves: node i owns participants [i*kArity, min(n, (i+1)*kArity)).
  for (std::size_t i = 0; i < leaf_count_; ++i) {
    Node& n = nodes_[i];
    n.leaf = true;
    n.child_begin = i * kArity;
    n.child_end = std::min(participants, (i + 1) * kArity);
    n.fan_in = static_cast<std::uint32_t>(n.child_end - n.child_begin);
  }
  // Internal levels: parent j of a level covers child nodes
  // [base + j*kArity, base + min(count, (j+1)*kArity)).
  std::size_t base = 0;             // first node id of the child level
  std::size_t count = leaf_count_;  // nodes in the child level
  while (count > 1) {
    const std::size_t parents = ceil_div(count, kArity);
    const std::size_t parent_base = base + count;
    for (std::size_t j = 0; j < parents; ++j) {
      Node& n = nodes_[parent_base + j];
      n.child_begin = base + j * kArity;
      n.child_end = base + std::min(count, (j + 1) * kArity);
      n.fan_in = static_cast<std::uint32_t>(n.child_end - n.child_begin);
      for (std::size_t c = n.child_begin; c < n.child_end; ++c) {
        nodes_[c].parent = parent_base + j;
      }
    }
    base = parent_base;
    count = parents;
  }
}

void TreeBarrier::reset() noexcept {
  for (Node& n : nodes_) n.arrived.store(0, std::memory_order_relaxed);
  for (LocalSense& s : local_) s.value = 0;
  sense_.store(0, std::memory_order_relaxed);
  stop_.store(0, std::memory_order_relaxed);
}

}  // namespace km
