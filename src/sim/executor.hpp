// Worker-pool executor: runs k logical machines on W OS threads.
//
// The paper's interesting regime is huge k (congested clique, k close to
// n), far beyond the hardware thread count; a thread per machine stops
// scaling near the core count.  The executor assigns machines to workers
// in static contiguous blocks (no migration — this keeps per-machine
// trace buffers single-writer and lets thread-local pools key cleanly on
// the worker), gives each machine a stackful fiber (sim/fiber.hpp), and
// cooperatively schedules: when a machine parks — in practice, at the
// superstep barrier inside exchange() — the worker switches to its next
// runnable machine instead of blocking in a futex.
//
// Parking protocol: a machine calls Executor::park(ready, arg) from its
// own fiber.  `ready(arg, machine)` is the resume predicate, polled by
// the owning worker only (cheap atomic loads; for the engine it is
// TreeBarrier::released()).  When every live machine of a worker's block
// is parked and none is ready, the worker sleeps through IdleHooks:
//
//   seen = hooks.epoch(arg);     // sample the wake-event generation
//   if (none of the parked machines is ready)   // recheck under `seen`
//     hooks.wait(arg, seen);     // futex-wait; returns at once if the
//                                // generation already moved past `seen`
//
// Sampling the epoch *before* the recheck closes the missed-wakeup
// window: any release that lands between recheck and wait leaves
// epoch != seen, so the wait falls through.  For the engine both hooks
// wrap the barrier's sense word — the sense flip is the only event that
// can make a parked machine runnable.
//
// Determinism: scheduling never touches results.  Machines interact only
// through the exchange protocol, whose delivery order is defined by
// (source id, send order), not by execution interleaving — so rounds,
// bits, and the full km.run_result/v1 document are identical at every
// worker count.  The determinism property suite pins this down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "sim/fiber.hpp"

namespace km {

/// How a worker sleeps when its whole block is parked and nothing is
/// ready.  See the file comment for the missed-wakeup protocol.
struct IdleHooks {
  /// Generation count of the wake event (monotone modulo wrap).
  std::uint64_t (*epoch)(void* arg) = nullptr;
  /// Blocks until the generation moves past `seen` (may wake spuriously).
  void (*wait)(void* arg, std::uint64_t seen) = nullptr;
  void* arg = nullptr;
};

class Executor {
 public:
  /// Resume predicate for a parked machine; must be safe to call from
  /// the owning worker while the machine is parked.
  using ReadyFn = bool (*)(void* arg, std::size_t machine);
  /// One machine's whole program (the engine's machine_main).  Runs on
  /// the machine's fiber; exceptions escaping it are captured and
  /// rethrown from run() (first one wins).
  using MachineMain = std::function<void(std::size_t machine)>;

  /// `workers == 0` means hardware concurrency; the effective count is
  /// clamped to [1, machines] and reported by worker_count().
  Executor(std::size_t machines, std::size_t workers,
           std::size_t fiber_stack_bytes, IdleHooks idle);

  std::size_t worker_count() const noexcept { return workers_; }
  std::size_t machine_count() const noexcept { return machines_.size(); }
  /// The worker that owns `machine` (static block assignment).
  std::size_t worker_of(std::size_t machine) const noexcept;

  /// Runs every machine to completion on the pool and joins the workers.
  /// Blocking: returns only when all k programs have finished.  Rethrows
  /// the first exception that escaped a MachineMain.
  void run(MachineMain fn);

  /// Parks the calling machine until ready(arg, machine) holds, yielding
  /// the worker to its next runnable machine.  MUST be called from
  /// inside a machine fiber (i.e. from within the MachineMain of
  /// `machine`); `machine` must be the caller's own id.
  void park(std::size_t machine, ReadyFn ready, void* arg);

  static std::size_t default_worker_count();

 private:
  struct Machine {
    FiberStack stack;
    // Fiber context storage; constructed on the owning worker thread so
    // the TSan fiber state is created there.  Indirect because
    // FiberContext is not movable.
    FiberContext* fiber = nullptr;
    ReadyFn ready = nullptr;
    void* ready_arg = nullptr;
    bool parked = false;
    bool done = false;
    explicit Machine(std::size_t stack_bytes) : stack(stack_bytes) {}
  };

  void worker_loop(std::size_t w);
  static void fiber_entry(void* raw);

  std::vector<Machine> machines_;
  std::size_t workers_;
  std::size_t block_;  ///< machines per worker, ceil(k / W)
  IdleHooks idle_;
  MachineMain fn_;

  // First exception escaping any MachineMain (worker-local capture,
  // merged under a plain one-shot flag per worker; workers never race on
  // the same machine).
  std::exception_ptr first_error_;
  std::atomic<bool> error_set_{false};

  // Per-worker scheduler state, meaningful only on that worker's thread.
  struct WorkerState {
    FiberContext* native = nullptr;   ///< the worker's own context
    FiberContext* current = nullptr;  ///< fiber being run right now
  };
  std::vector<WorkerState> worker_state_;
};

}  // namespace km
