// Complete point-to-point network with per-link bandwidth accounting.
//
// Section 1.1: k machines are pairwise interconnected; each link delivers
// at most B bits per round.  A superstep's traffic therefore takes
// max over ordered links (i,j) of ceil(bits_ij / B) rounds.  deliver()
// moves messages from per-source outboxes to per-destination inboxes
// (deterministic order: ascending source, then send order) and returns the
// round charge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.hpp"

namespace km {

struct DeliveryStats {
  std::uint64_t rounds = 0;  ///< max over links of ceil(bits/B); >=1 if any
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits = 0;
  bool any = false;
};

class Network {
 public:
  /// bandwidth_bits is B; must be >= 1.
  Network(std::size_t k, std::uint64_t bandwidth_bits);

  std::size_t k() const noexcept { return k_; }
  std::uint64_t bandwidth_bits() const noexcept { return bandwidth_; }

  /// Moves all messages from outboxes (indexed by source) into inboxes
  /// (indexed by destination) and computes the round charge.
  /// send_bits/recv_bits (length k) are incremented per machine.
  /// Self-addressed messages are rejected (throw): machines talk to
  /// themselves via local state, not the network.
  DeliveryStats deliver(std::vector<std::vector<Message>>& outboxes,
                        std::vector<std::vector<Message>>& inboxes,
                        std::span<std::uint64_t> send_bits,
                        std::span<std::uint64_t> recv_bits);

 private:
  std::size_t k_;
  std::uint64_t bandwidth_;
  std::vector<std::uint64_t> link_bits_;      // k*k scratch
  std::vector<std::size_t> touched_links_;    // indices used this superstep
};

}  // namespace km
