// Complete point-to-point network with per-link bandwidth accounting.
//
// Section 1.1: k machines are pairwise interconnected; each link delivers
// at most B bits per round.  A superstep's traffic therefore takes
// max over ordered links (i,j) of ceil(bits_ij / B) rounds.
//
// Two entry points share the same cost model:
//  - deliver() physically moves messages from per-source outboxes to
//    per-destination inboxes (deterministic order: ascending source, then
//    send order) and returns the round charge.  Used by tests and by
//    callers that hold materialized outboxes.
//  - rounds_for() is the bare round formula.  The engine's three-phase
//    exchange pre-buckets messages on the machine threads and folds only
//    per-link counters up the tree barrier, so payloads never funnel
//    through the network object; it charges rounds via rounds_for() on
//    the root-merged max-link load.  The charge per message is
//    Message::kHeaderBits + 8 * payload_bytes whether or not the
//    transport physically batched it into a per-link frame, so both
//    entry points stay byte-identical to deliver()'s accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "util/mathx.hpp"

namespace km {

struct DeliveryStats {
  std::uint64_t rounds = 0;  ///< max over links of ceil(bits/B); >=1 if any
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits = 0;
  bool any = false;
};

class Network {
 public:
  /// bandwidth_bits is B; must be >= 1.
  Network(std::size_t k, std::uint64_t bandwidth_bits);

  std::size_t k() const noexcept { return k_; }
  std::uint64_t bandwidth_bits() const noexcept { return bandwidth_; }

  /// Round charge for a superstep whose most loaded link carried
  /// `max_link_bits`: ceil(max_link_bits / B), at least 1 when any
  /// traffic moved.  Callers pass max_link_bits > 0 only when there was
  /// traffic; for an empty superstep charge 0 rounds (do not call this).
  std::uint64_t rounds_for(std::uint64_t max_link_bits) const noexcept {
    return std::max<std::uint64_t>(1, ceil_div(max_link_bits, bandwidth_));
  }

  /// Moves all messages from outboxes (indexed by source) into inboxes
  /// (indexed by destination) and computes the round charge.
  /// send_bits/recv_bits (length k) are incremented per machine.
  /// Self-addressed messages are rejected (throw): machines talk to
  /// themselves via local state, not the network.
  DeliveryStats deliver(std::vector<std::vector<Message>>& outboxes,
                        std::vector<std::vector<Message>>& inboxes,
                        std::span<std::uint64_t> send_bits,
                        std::span<std::uint64_t> recv_bits);

 private:
  std::size_t k_;
  std::uint64_t bandwidth_;
  std::vector<std::uint64_t> link_bits_;      // k*k scratch
  std::vector<std::size_t> touched_links_;    // indices used this superstep
};

}  // namespace km
