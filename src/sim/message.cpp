#include "sim/message.hpp"

#include "util/annotations.hpp"
#include "util/buffer_pool.hpp"

namespace km {
namespace detail {

namespace {

constexpr std::size_t kMaxPooledBufs = 1024;  // ~56 B each: tiny to hoard

// Per-thread counter cell for the PayloadBuf object pool, same shape as
// the byte pool's (util/buffer_pool.cpp): relaxed atomics on a
// thread-private cache line, so the acquire/recycle hot path pays a plain
// increment while payload_pool_counters() reads cross-thread race-free.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> pooled_objects{0};
};

// Live cells plus totals retired by exited threads.  The mutex guards
// registration, retirement, and the aggregate read — never the hot path.
struct Registry {
  Mutex mutex;
  std::vector<const CounterCell*> live KM_GUARDED_BY(mutex);
  // gauge stays 0: a dead pool holds nothing
  PayloadPoolCounters retired KM_GUARDED_BY(mutex);
};

Registry& counter_registry() noexcept {
  static Registry reg;
  return reg;
}

struct BufPool {
  BufPool() {
    free_list.reserve(kMaxPooledBufs);
    auto& reg = counter_registry();
    const MutexLock lock(reg.mutex);
    reg.live.push_back(&cell);
  }
  ~BufPool() {
    destroyed = true;
    for (PayloadBuf* buf : free_list) delete buf;
    auto& reg = counter_registry();
    const MutexLock lock(reg.mutex);
    reg.retired.hits += cell.hits.load(std::memory_order_relaxed);
    reg.retired.misses += cell.misses.load(std::memory_order_relaxed);
    reg.retired.recycled += cell.recycled.load(std::memory_order_relaxed);
    reg.retired.dropped += cell.dropped.load(std::memory_order_relaxed);
    std::erase(reg.live, &cell);
  }
  std::vector<PayloadBuf*> free_list;
  bool destroyed = false;
  CounterCell cell;
};

BufPool& local_buf_pool() noexcept {
  thread_local BufPool pool;
  return pool;
}

void bump(std::atomic<std::uint64_t>& counter) noexcept {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

PayloadBuf* acquire_payload_buf() {
  auto& pool = local_buf_pool();
  if (pool.destroyed || pool.free_list.empty()) {
    if (!pool.destroyed) bump(pool.cell.misses);
    return new PayloadBuf;
  }
  PayloadBuf* buf = pool.free_list.back();
  pool.free_list.pop_back();
  buf->refs.store(1, std::memory_order_relaxed);
  bump(pool.cell.hits);
  pool.cell.pooled_objects.store(pool.free_list.size(),
                                 std::memory_order_relaxed);
  return buf;
}

void recycle_payload_buf(PayloadBuf* buf) noexcept {
  // The byte storage rotates back to the Writer/payload byte pool so the
  // capacity is reused even when this PayloadBuf is not.  If the byte
  // pool declines (over its caps), the assignment below frees it — a
  // pooled PayloadBuf never hoards storage of its own.
  recycle_buffer(std::move(buf->bytes));
  buf->bytes = std::vector<std::byte>{};
  auto& pool = local_buf_pool();
  if (pool.destroyed || pool.free_list.size() >= kMaxPooledBufs) {
    if (!pool.destroyed) bump(pool.cell.dropped);
    delete buf;
    return;
  }
  pool.free_list.push_back(buf);  // never reallocates: reserved above
  bump(pool.cell.recycled);
  pool.cell.pooled_objects.store(pool.free_list.size(),
                                 std::memory_order_relaxed);
}

}  // namespace detail

PayloadPoolCounters payload_pool_counters() noexcept {
  auto& reg = detail::counter_registry();
  const MutexLock lock(reg.mutex);
  PayloadPoolCounters total = reg.retired;
  for (const auto* cell : reg.live) {
    total.hits += cell->hits.load(std::memory_order_relaxed);
    total.misses += cell->misses.load(std::memory_order_relaxed);
    total.recycled += cell->recycled.load(std::memory_order_relaxed);
    total.dropped += cell->dropped.load(std::memory_order_relaxed);
    total.pooled_objects +=
        cell->pooled_objects.load(std::memory_order_relaxed);
  }
  return total;
}

PayloadRef::PayloadRef(std::vector<std::byte> bytes) {
  if (bytes.empty()) {
    recycle_buffer(std::move(bytes));
    return;  // empty payload needs no owner; view_ stays empty
  }
  buf_ = detail::acquire_payload_buf();
  buf_->bytes = std::move(bytes);
  view_ = buf_->bytes;
}

PayloadRef PayloadRef::copy_of(std::span<const std::byte> bytes) {
  std::vector<std::byte> buf = acquire_buffer();
  buf.assign(bytes.begin(), bytes.end());
  return PayloadRef(std::move(buf));
}

}  // namespace km
