#include "sim/message.hpp"

#include "util/buffer_pool.hpp"

namespace km {
namespace detail {

namespace {

constexpr std::size_t kMaxPooledBufs = 1024;  // ~56 B each: tiny to hoard

struct BufPool {
  BufPool() { free_list.reserve(kMaxPooledBufs); }
  ~BufPool() {
    destroyed = true;
    for (PayloadBuf* buf : free_list) delete buf;
  }
  std::vector<PayloadBuf*> free_list;
  bool destroyed = false;
};

BufPool& local_buf_pool() noexcept {
  thread_local BufPool pool;
  return pool;
}

}  // namespace

PayloadBuf* acquire_payload_buf() {
  auto& pool = local_buf_pool();
  if (pool.destroyed || pool.free_list.empty()) return new PayloadBuf;
  PayloadBuf* buf = pool.free_list.back();
  pool.free_list.pop_back();
  buf->refs.store(1, std::memory_order_relaxed);
  return buf;
}

void recycle_payload_buf(PayloadBuf* buf) noexcept {
  // The byte storage rotates back to the Writer/payload byte pool so the
  // capacity is reused even when this PayloadBuf is not.  If the byte
  // pool declines (over its caps), the assignment below frees it — a
  // pooled PayloadBuf never hoards storage of its own.
  recycle_buffer(std::move(buf->bytes));
  buf->bytes = std::vector<std::byte>{};
  auto& pool = local_buf_pool();
  if (pool.destroyed || pool.free_list.size() >= kMaxPooledBufs) {
    delete buf;
    return;
  }
  pool.free_list.push_back(buf);  // never reallocates: reserved above
}

}  // namespace detail

PayloadRef::PayloadRef(std::vector<std::byte> bytes) {
  if (bytes.empty()) {
    recycle_buffer(std::move(bytes));
    return;  // empty payload needs no owner; view_ stays empty
  }
  buf_ = detail::acquire_payload_buf();
  buf_->bytes = std::move(bytes);
  view_ = buf_->bytes;
}

PayloadRef PayloadRef::copy_of(std::span<const std::byte> bytes) {
  std::vector<std::byte> buf = acquire_buffer();
  buf.assign(bytes.begin(), bytes.end());
  return PayloadRef(std::move(buf));
}

}  // namespace km
