// SPMD execution engine for the k-machine model.
//
// Engine::run(program) launches one OS thread per machine, all executing
// the same `program` (SPMD, like an MPI rank program).  A machine
// communicates by buffering messages with ctx.send() and calling
// ctx.exchange(), which is a synchronization point for *all* machines: the
// engine collects every outbox, charges rounds per the bandwidth model
// (see sim/network.hpp) and returns each machine the messages addressed to
// it.  Local computation between exchanges is free, as in the paper.
//
// Conventions:
//  - All machines must call exchange() in lockstep (same count, same
//    order).  Data-dependent loop bounds must be agreed on through the
//    provided collectives, which cost rounds through the same accounting.
//  - Determinism: machine i's RNG is seeded from (config.seed, i), and a
//    machine's code runs sequentially between barriers, so results do not
//    depend on thread scheduling.
//  - A machine that returns from `program` keeps participating in barriers
//    invisibly until all machines finish; messages sent to a finished
//    machine are counted as dropped (tests assert this never happens).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace km {

struct EngineConfig {
  std::uint64_t bandwidth_bits = 256;  ///< B, per link per round
  std::uint64_t seed = 0x5eedULL;      ///< base seed for machine RNGs
  std::uint64_t max_supersteps = 1'000'000;  ///< runaway-loop backstop
  /// Record a per-superstep SuperstepStats timeline in Metrics::timeline.
  bool record_timeline = false;

  /// Bandwidth used throughout the paper: B = Theta(polylog n).
  /// We use B = 16 * ceil(log2 n)^2 bits (a handful of O(log n)-bit
  /// messages per link per round).
  static std::uint64_t default_bandwidth(std::size_t n) noexcept;
};

class Engine;

/// Per-machine handle: identity, RNG, messaging, collectives.
class MachineContext {
 public:
  std::size_t id() const noexcept { return id_; }
  std::size_t k() const noexcept;
  Rng& rng() noexcept { return rng_; }
  const EngineConfig& config() const noexcept;

  /// Buffer a message for the next exchange. dst != id().
  void send(std::size_t dst, std::uint16_t tag, std::vector<std::byte> payload);
  void send(std::size_t dst, std::uint16_t tag, Writer& writer);

  /// Buffer the same payload to every other machine (k-1 messages).
  void broadcast(std::uint16_t tag, const Writer& writer);

  /// Superstep boundary: flush sends, synchronize with all machines,
  /// return the messages delivered to this machine.
  std::vector<Message> exchange();

  // ---- Collectives (each costs one superstep; built on exchange) ----
  std::uint64_t all_reduce_sum(std::uint64_t value);
  std::uint64_t all_reduce_max(std::uint64_t value);
  bool all_reduce_or(bool value);
  std::vector<std::uint64_t> all_gather(std::uint64_t value);

 private:
  friend class Engine;
  MachineContext(Engine* engine, std::size_t id, Rng rng)
      : engine_(engine), id_(id), rng_(rng) {}

  Engine* engine_;
  std::size_t id_;
  Rng rng_;
  std::vector<Message> outbox_;
  std::vector<Message> inbox_;    // filled by the engine at the barrier
  std::vector<Message> stashed_;  // non-collective msgs seen by collectives
  bool finished_ = false;
};

using Program = std::function<void(MachineContext&)>;

class Engine {
 public:
  Engine(std::size_t k, EngineConfig config = {});

  std::size_t k() const noexcept { return k_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Runs the SPMD program on k machine threads; blocks until all finish.
  /// Rethrows the first exception any machine threw.
  Metrics run(const Program& program);

 private:
  friend class MachineContext;

  /// Returns true when the engine has stopped (all machines finished, or
  /// the superstep budget was exhausted).
  bool barrier_arrive_and_wait();
  bool stopped() const;
  void on_barrier_complete();  // runs once per superstep, under the lock

  std::size_t k_;
  EngineConfig config_;
  Network network_;

  std::vector<std::unique_ptr<MachineContext>> contexts_;
  std::vector<std::vector<Message>> scratch_outboxes_;
  std::vector<std::vector<Message>> scratch_inboxes_;

  // Cyclic barrier state.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::size_t finished_count_ = 0;  // guarded by mutex_
  Metrics metrics_;
  std::exception_ptr first_error_;  // guarded by mutex_
};

}  // namespace km
