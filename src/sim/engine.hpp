// SPMD execution engine for the k-machine model.
//
// Engine::run(program) launches one OS thread per machine, all executing
// the same `program` (SPMD, like an MPI rank program).  A machine
// communicates by buffering messages with ctx.send() and calling
// ctx.exchange(), which is a synchronization point for *all* machines: the
// engine charges rounds per the bandwidth model (see sim/network.hpp) and
// returns each machine the messages addressed to it.  Local computation
// between exchanges is free, as in the paper.
//
// Message plane (two-phase exchange protocol):
//  - Phase 1 (pre-bucket, outside any lock): send() buckets each message
//    into a per-destination queue owned by the sending machine and
//    accumulates that link's bit/message counters on the fly, so by the
//    time a machine arrives at the barrier its outbound traffic is fully
//    bucketed and costed.  broadcast() shares one immutable PayloadRef
//    across all k-1 messages instead of deep-copying the payload.
//  - Phase 2 (merge, under the barrier lock): the last machine to arrive
//    only merges the k*k pre-computed per-link counters into DeliveryStats
//    (rounds = ceil(max link bits / B)) and flips the bucket parity —
//    O(k^2) integer work, never O(messages) payload traffic.
//  - Delivery (lock-free, after the barrier): each machine drains the
//    buckets addressed to it from all k sources in ascending source
//    order, in parallel with every other machine, without taking the
//    engine lock.  Buckets are double-buffered by barrier parity so the
//    drain of superstep s never races the sends of superstep s+1; the
//    barrier's mutex hand-off provides the happens-before edges (tsan
//    verified by the CI tsan job).
//
// Conventions:
//  - All machines must call exchange() in lockstep (same count, same
//    order).  Data-dependent loop bounds must be agreed on through the
//    provided collectives, which cost rounds through the same accounting.
//  - Determinism: machine i's RNG is seeded from (config.seed, i), a
//    machine's code runs sequentially between barriers, and delivery
//    order is ascending source then send order, so results do not depend
//    on thread scheduling.
//  - A machine that returns from `program` keeps participating in barriers
//    invisibly until all machines finish; messages sent to a finished
//    machine are counted as dropped (tests assert this never happens).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace km {

struct EngineConfig {
  std::uint64_t bandwidth_bits = 256;  ///< B, per link per round
  std::uint64_t seed = 0x5eedULL;      ///< base seed for machine RNGs
  std::uint64_t max_supersteps = 1'000'000;  ///< runaway-loop backstop
  /// Record a per-superstep SuperstepStats timeline in Metrics::timeline.
  bool record_timeline = false;
  /// Test-only fault injection: invoked (under the engine lock) at the
  /// start of every barrier merge.  A throw from here must abort the run
  /// cleanly — captured as the run's first error, never a deadlock.
  std::function<void(std::uint64_t superstep)> barrier_fault_injection = {};

  /// Bandwidth used throughout the paper: B = Theta(polylog n).
  /// We use B = 16 * ceil(log2 n)^2 bits (a handful of O(log n)-bit
  /// messages per link per round).
  static std::uint64_t default_bandwidth(std::size_t n) noexcept;
};

class Engine;

/// Per-machine handle: identity, RNG, messaging, collectives.
class MachineContext {
 public:
  std::size_t id() const noexcept { return id_; }
  std::size_t k() const noexcept;
  Rng& rng() noexcept { return rng_; }
  const EngineConfig& config() const noexcept;

  /// Buffer a message for the next exchange. dst != id().
  void send(std::size_t dst, std::uint16_t tag, PayloadRef payload);
  void send(std::size_t dst, std::uint16_t tag, std::vector<std::byte> payload);
  void send(std::size_t dst, std::uint16_t tag, Writer& writer);

  /// Buffer the same payload to every other machine (k-1 messages sharing
  /// one immutable buffer — zero-copy).  Consumes the writer's contents.
  void broadcast(std::uint16_t tag, Writer& writer);

  /// Superstep boundary: flush sends, synchronize with all machines,
  /// return the messages delivered to this machine (ascending source,
  /// then send order; stashed collective leftovers first).
  std::vector<Message> exchange();

  // ---- Collectives (each costs one superstep; built on exchange) ----
  std::uint64_t all_reduce_sum(std::uint64_t value);
  std::uint64_t all_reduce_max(std::uint64_t value);
  bool all_reduce_or(bool value);
  std::vector<std::uint64_t> all_gather(std::uint64_t value);

 private:
  friend class Engine;
  MachineContext(Engine* engine, std::size_t id, Rng rng);

  Engine* engine_;
  std::size_t id_;
  Rng rng_;

  // Pre-bucketed outbound traffic (phase 1 of the exchange protocol).
  // Double-buffered by barrier parity: sends of superstep s fill parity
  // s&1 while receivers drain parity (s-1)&1 from the previous barrier.
  // Bucket vectors keep their capacity across supersteps (message-slot
  // pooling).
  std::array<std::vector<std::vector<Message>>, 2> out_buckets_;
  std::vector<std::uint64_t> out_bits_;   ///< per-destination bit totals
  std::vector<std::uint64_t> out_msgs_;   ///< per-destination msg counts
  std::uint64_t barriers_passed_ = 0;     ///< drives the bucket parity

  std::vector<Message> stashed_;  // non-collective msgs seen by collectives
  bool finished_ = false;
};

using Program = std::function<void(MachineContext&)>;

class Engine {
 public:
  Engine(std::size_t k, EngineConfig config = {});

  std::size_t k() const noexcept { return k_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Runs the SPMD program on k machine threads; blocks until all finish.
  /// Rethrows the first exception any machine threw.  Machine state is
  /// torn down on every exit path (RAII), so a failed run never leaks
  /// stale contexts into the next one.
  Metrics run(const Program& program);

 private:
  friend class MachineContext;

  /// Returns true when the engine has stopped (all machines finished, or
  /// the superstep budget was exhausted, or a barrier merge failed).
  bool barrier_arrive_and_wait();
  bool stopped() const;
  void on_barrier_complete();  // runs once per superstep, under the lock

  /// Lock-free delivery (phase 3): moves every message addressed to `ctx`
  /// from the sources' parity buckets into `into`, ascending source
  /// order.  Advances the context's bucket parity.
  void drain_inbound(MachineContext& ctx, std::vector<Message>& into);
  /// Same bucket walk for a finished machine: discards instead of
  /// delivering (the merge step already counted these as dropped).
  void discard_inbound(MachineContext& ctx);

  std::size_t k_;
  EngineConfig config_;
  Network network_;

  std::vector<std::unique_ptr<MachineContext>> contexts_;

  // Cyclic barrier state.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::size_t finished_count_ = 0;  // guarded by mutex_
  Metrics metrics_;
  std::exception_ptr first_error_;  // guarded by mutex_
};

}  // namespace km
