// SPMD execution engine for the k-machine model.
//
// Engine::run(program) runs one *logical machine* per participant, all
// executing the same `program` (SPMD, like an MPI rank program).  A
// machine communicates by buffering messages with ctx.send() and calling
// ctx.exchange(), which is a synchronization point for *all* machines: the
// engine charges rounds per the bandwidth model (see sim/network.hpp) and
// returns each machine the messages addressed to it.  Local computation
// between exchanges is free, as in the paper.
//
// Execution model: machines are stackful fibers multiplexed over a
// bounded pool of EngineConfig::workers OS threads (sim/executor.hpp) in
// static contiguous blocks.  A machine that reaches the superstep
// barrier parks its fiber — the worker switches to its next runnable
// machine instead of blocking — so barrier arrival/release is
// machine-granular and k can exceed the core count by orders of
// magnitude (k = 4096 on a laptop is the paper's regime, not a special
// case).  Scheduling is invisible to results: rounds, bits, delivery
// order, and every serialized artifact are identical at every worker
// count (the Determinism suite sweeps workers to prove it).
//
// Message plane (three-phase exchange protocol):
//  - Phase 1 (pre-bucket, outside any lock): send() buckets each message
//    into a per-destination LinkOut owned by the sending machine and
//    accumulates that link's bit/message counters on the fly, so by the
//    time a machine arrives at the barrier its outbound traffic is fully
//    bucketed and costed.  Small payloads (<=
//    EngineConfig::framed_payload_max_bytes, by default derived from B
//    via framed_payload_default_bytes() in sim/message.hpp; 0 disables
//    framing)
//    produced by the Writer/vector overloads are
//    *framed* from the link's second message of the superstep onward:
//    their bytes are appended to one length-prefixed frame buffer per
//    (src, dst, superstep) — layout per entry:
//    varint(payload_len) | payload bytes — instead of each becoming a
//    refcounted heap buffer of its own.  (A link's first message has
//    nothing to amortize the copy against and takes the zero-copy
//    path.)  One pooled frame buffer
//    amortizes the per-message fixed cost (PayloadBuf object + refcount
//    traffic + allocator round trip) across every small message on the
//    link, which is what dominates tiny-payload workloads.  Accounting is
//    deliberately *unbatched*: every message is still charged
//    Message::kHeaderBits + 8 * payload_bytes against its link, framed or
//    not, so rounds/bits/max_link_bits are byte-identical to an
//    unbatched plane (tests/test_exchange_determinism.cpp enforces
//    this).  broadcast() and the PayloadRef overload are never framed:
//    they share one immutable PayloadRef across receivers (zero-copy),
//    which is already cheaper than copying into k-1 frames.
//  - Phase 2 (merge, folding up the barrier tree): the superstep
//    rendezvous is a sense-reversing arity-4 combining-tree barrier
//    (sim/barrier.hpp).  The last arriver at each tree node folds its
//    children's per-link counters into the node's accumulator — machines'
//    out_bits_/out_msgs_ rows at the leaves, child accumulators at
//    internal nodes — so the merge that used to be O(k^2) on the last
//    thread is now O(arity * k) per folder, pipelined up the tree.  The
//    root's last arriver finalizes the superstep: rounds =
//    ceil(max link bits / B), per-machine recv bits, dropped-message
//    bookkeeping, timeline, stop/budget checks.  Payloads never pass
//    through the barrier; only integers fold.
//  - Phase 3 (delivery, lock-free): after release each machine drains the
//    LinkOuts addressed to it from all k sources in ascending source
//    order, in parallel with every other machine, without any lock.  A
//    link's frame buffer is wrapped in one PayloadRef and every framed
//    message becomes a zero-copy slice of it, interleaved with unframed
//    messages in original send order.  LinkOuts are double-buffered by
//    barrier parity so the drain of superstep s never races the sends of
//    superstep s+1; the tree barrier's acq_rel arrival chain and
//    release-on-sense-flip provide the happens-before edges (tsan
//    verified by the CI tsan job).
//
// Conventions:
//  - All machines must call exchange() in lockstep (same count, same
//    order).  Data-dependent loop bounds must be agreed on through the
//    provided collectives, which cost rounds through the same accounting.
//  - Determinism: machine i's RNG is seeded from (config.seed, i), a
//    machine's code runs sequentially between barriers, and delivery
//    order is ascending source then send order, so results do not depend
//    on thread scheduling.
//  - A machine that returns from `program` keeps participating in barriers
//    invisibly until all machines finish; messages sent to a finished
//    machine are counted as dropped (tests assert this never happens).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/barrier.hpp"
#include "util/annotations.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace km {

struct EngineConfig {
  std::uint64_t bandwidth_bits = 256;  ///< B, per link per round
  std::uint64_t seed = 0x5eedULL;      ///< base seed for machine RNGs
  std::uint64_t max_supersteps = 1'000'000;  ///< runaway-loop backstop
  /// Record a per-superstep SuperstepStats timeline in Metrics::timeline.
  bool record_timeline = false;
  /// Record wall-time phase spans (compute/send/barrier_wait/deliver per
  /// machine per superstep) and per-superstep counter events into a
  /// TraceSession (sim/trace.hpp), surfaced via Engine::trace_session()
  /// and Metrics::timing.  Same opt-in pattern as record_timeline: off
  /// means one predictable null-pointer branch per seam (exactly zero
  /// when compiled with -DKM_DISABLE_TRACING).  Tracing never perturbs
  /// rounds/bits/delivery (tests/test_trace.cpp proves byte-identity).
  bool trace = false;
  /// With `trace`: also record the opt-in per-superstep k x k link-bits
  /// matrix (O(k^2) memory per traffic-carrying superstep).
  bool trace_links = false;
  /// Test-only fault injection: invoked on the root finalizer at the
  /// start of every superstep merge (all machines arrived, none released).
  /// A throw from here must abort the run cleanly — captured as the run's
  /// first error and propagated down the barrier tree as a stop, never a
  /// deadlock.
  std::function<void(std::uint64_t superstep)> barrier_fault_injection = {};
  /// Largest Writer/vector payload (bytes) the message plane batches into
  /// a per-link frame instead of giving it a refcounted buffer of its
  /// own; 0 disables framing entirely.  The default kFramedPayloadAuto
  /// derives the threshold from B at engine construction —
  /// framed_payload_default_bytes(bandwidth_bits), one round's worth of
  /// bytes clamped to [64, 4096] — so the knob only needs touching to
  /// pin an explicit policy.  Pure transport policy either way: rounds,
  /// bits, and delivery order are byte-identical at every setting (the
  /// Framing property tests sweep this knob, including the derived
  /// value, to prove it).
  std::size_t framed_payload_max_bytes = kFramedPayloadAuto;
  /// OS threads the executor multiplexes the k machine fibers over; 0
  /// means hardware concurrency, and the effective count is clamped to
  /// [1, k].  Pure execution policy: results are byte-identical at every
  /// setting (like `trace`, it is deliberately absent from serialized
  /// run parameters).
  std::size_t workers = 0;
  /// Stack reservation per machine fiber (rounded up to whole pages, one
  /// guard page added); 0 means kDefaultFiberStackBytes.  Address space,
  /// not memory: pages are committed lazily, so huge k stays cheap until
  /// a program actually recurses deeply.
  std::size_t fiber_stack_bytes = 0;

  /// Bandwidth used throughout the paper: B = Theta(polylog n).
  /// We use B = 16 * ceil(log2 n)^2 bits (a handful of O(log n)-bit
  /// messages per link per round).
  static std::uint64_t default_bandwidth(std::size_t n) noexcept;
};

class Engine;
class Executor;
class TraceSession;
class MachineTraceBuffer;

/// Per-machine handle: identity, RNG, messaging, collectives.
class MachineContext {
 public:
  std::size_t id() const noexcept { return id_; }
  std::size_t k() const noexcept;
  Rng& rng() noexcept { return rng_; }
  const EngineConfig& config() const noexcept;

  /// Buffer a message for the next exchange. dst != id().
  void send(std::size_t dst, std::uint16_t tag, PayloadRef payload);
  void send(std::size_t dst, std::uint16_t tag, std::vector<std::byte> payload);
  void send(std::size_t dst, std::uint16_t tag, Writer& writer);

  /// Buffer the same payload to every other machine (k-1 messages sharing
  /// one immutable buffer — zero-copy).  Consumes the writer's contents.
  void broadcast(std::uint16_t tag, Writer& writer);

  /// Superstep boundary: flush sends, synchronize with all machines,
  /// return the messages delivered to this machine (ascending source,
  /// then send order; stashed collective leftovers first).
  std::vector<Message> exchange();

  // ---- Collectives (each costs one superstep; built on exchange) ----
  std::uint64_t all_reduce_sum(std::uint64_t value);
  std::uint64_t all_reduce_max(std::uint64_t value);
  bool all_reduce_or(bool value);
  std::vector<std::uint64_t> all_gather(std::uint64_t value);

 private:
  friend class Engine;
  MachineContext(Engine* engine, std::size_t id, Rng rng);

  /// One link's pre-bucketed outbound traffic for one superstep parity.
  /// `messages` holds every message in send order; a framed message sits
  /// there with an empty payload until delivery, when its bytes are
  /// sliced back out of `frame`.  `framed` lists the indices of framed
  /// entries (ascending), and `frame` is the shared length-prefixed
  /// buffer (varint(len) | bytes per entry, same order as `framed`).
  struct LinkOut {
    std::vector<Message> messages;
    std::vector<std::uint32_t> framed;
    std::vector<std::byte> frame;
  };

  /// Validates dst and returns its current-parity LinkOut.
  LinkOut& link_for(std::size_t dst);
  /// A Message with src/dst/tag filled in, payload empty.
  Message stamp(std::size_t dst, std::uint16_t tag) const;
  /// Charges the link (unbatched formula) and updates the sender's row
  /// aggregates.  Every send path funnels through here.
  void account_send(std::size_t dst, std::uint64_t payload_bytes);
  /// Transport policy: payloads up to config().framed_payload_max_bytes
  /// are framed from the link's second message onward (one message has
  /// nothing to amortize the copy against).  Never affects accounting or
  /// delivery order.
  bool should_frame(const LinkOut& link, std::size_t payload_bytes) const;
  /// Appends a small payload to the link's frame (acquiring a pooled
  /// buffer on first use) and records the framed entry.
  void send_framed(LinkOut& link, std::size_t dst, std::uint16_t tag,
                   std::span<const std::byte> payload);

  Engine* engine_;
  std::size_t id_;
  Rng rng_;

  // Pre-bucketed outbound traffic (phase 1 of the exchange protocol).
  // Double-buffered by barrier parity: sends of superstep s fill parity
  // s&1 while receivers drain parity (s-1)&1 from the previous barrier.
  // Vectors keep their capacity across supersteps (slot pooling).
  std::array<std::vector<LinkOut>, 2> out_;
  std::vector<std::uint64_t> out_bits_;   ///< per-destination bit totals
  std::vector<std::uint64_t> out_msgs_;   ///< per-destination msg counts
  // Row aggregates over out_bits_/out_msgs_, maintained incrementally by
  // account_send() so the barrier's leaf fold reads three scalars instead
  // of re-scanning the row.
  std::uint64_t row_bits_ = 0;   ///< sum over dst of out_bits_[dst]
  std::uint64_t row_msgs_ = 0;   ///< sum over dst of out_msgs_[dst]
  std::uint64_t row_max_ = 0;    ///< max over dst of out_bits_[dst]
  std::uint64_t barriers_passed_ = 0;     ///< drives the bucket parity

  std::vector<Message> stashed_;  // non-collective msgs seen by collectives
  bool finished_ = false;

  /// This machine's span recorder, or null when the run is untraced.
  /// Single-writer from this machine's own thread (sim/trace.hpp).
  MachineTraceBuffer* trace_ = nullptr;
};

using Program = std::function<void(MachineContext&)>;

class Engine {
 public:
  Engine(std::size_t k, EngineConfig config = {});

  std::size_t k() const noexcept { return k_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Runs the SPMD program on k machine fibers scheduled over the worker
  /// pool (EngineConfig::workers); blocks until all finish.
  /// Rethrows the first exception any machine threw.  Machine state is
  /// torn down on every exit path (RAII), so a failed run never leaks
  /// stale contexts into the next one.
  Metrics run(const Program& program);

  /// The last run's trace (EngineConfig::trace), or null when the run was
  /// untraced or tracing was compiled out.  Valid after run() returns;
  /// shared so results can outlive the engine (RunResult::trace).
  std::shared_ptr<const TraceSession> trace_session() const noexcept {
    return trace_;
  }

 private:
  friend class MachineContext;

  /// Per-barrier-node fold state: the subtree's traffic totals plus the
  /// per-destination column sums that become recv_bits_per_machine and
  /// the dropped-message count.  Folders zero a child's accumulator
  /// right after consuming it, so every episode starts from zeros.
  struct NodeAccum {
    std::uint64_t bits = 0;
    std::uint64_t msgs = 0;
    std::uint64_t max_link = 0;
    std::vector<std::uint64_t> recv_bits;  ///< length k
    std::vector<std::uint64_t> recv_msgs;  ///< length k
  };

  /// Arrives machine `who` at the tree barrier and, if the episode is
  /// not complete, parks the calling fiber with the executor until the
  /// sense flips; returns true when the engine has stopped (all machines
  /// finished, superstep budget exhausted, or a merge failed).
  bool barrier_arrive_and_wait(std::size_t who);
  /// One machine's whole lifetime on its fiber: trace origin, the user
  /// program, and the post-finish barrier participation loop.
  void machine_main(const Program& program, std::size_t who);
  // Executor callbacks (C-style so parked-machine polling stays a pair
  // of atomic loads, no std::function indirection on the scheduler path).
  static bool machine_released(void* self, std::size_t who);
  static std::uint64_t idle_epoch(void* self);
  static void idle_wait(void* self, std::uint64_t seen);
  bool stopped() const {
    return stop_.load(std::memory_order_acquire);
  }
  /// Combining hook: the last arriver at `node` folds its children
  /// (machine counter rows at leaves, child accumulators otherwise).
  /// Fold-phase exclusivity is the barrier's fan-in protocol; the
  /// capability requirement makes every touch of the guarded
  /// accumulators/metrics below compile-checked under -Wthread-safety.
  void fold_node(std::size_t node, bool leaf, std::size_t child_begin,
                 std::size_t child_end) KM_REQUIRES(barrier_.fold_phase);
  /// Runs once per superstep on the root's last arriver: converts the
  /// root accumulator into round/bit metrics and the stop decision.
  /// Never throws — failures (fault injection) become first_error_ + stop.
  bool finalize_superstep() KM_REQUIRES(barrier_.fold_phase);
  /// Records `error` as the run's first error if none is set yet.
  void record_first_error(std::exception_ptr error) KM_EXCLUDES(mutex_);
  void set_first_error_locked(std::exception_ptr error)
      KM_REQUIRES(mutex_);

  /// Lock-free delivery (phase 3): moves every message addressed to `ctx`
  /// from the sources' parity LinkOuts into `into`, ascending source
  /// order, re-materializing framed payloads as zero-copy slices of each
  /// link's frame buffer.  Advances the context's bucket parity.
  void drain_inbound(MachineContext& ctx, std::vector<Message>& into);
  /// Same bucket walk for a finished machine: discards instead of
  /// delivering (the merge step already counted these as dropped).
  void discard_inbound(MachineContext& ctx);

  std::size_t k_;
  EngineConfig config_;
  Network network_;

  std::vector<std::unique_ptr<MachineContext>> contexts_;

  /// Recreated at the top of each traced run; machine threads write their
  /// own buffers through MachineContext::trace_, the fold/finalize hooks
  /// write the counter/link streams under the barrier's fold protocol.
  std::shared_ptr<TraceSession> trace_;

  TreeBarrier barrier_;
  // Fold-phase state: written only while holding barrier_.fold_phase —
  // by folders/finalizers inside a barrier episode, and by Engine::run
  // in its single-threaded prologue/epilogue (which acquires the phantom
  // capability to make that exclusivity explicit to the analysis).
  std::vector<NodeAccum> node_accums_  ///< indexed by barrier node id
      KM_GUARDED_BY(barrier_.fold_phase);
  Metrics metrics_ KM_GUARDED_BY(barrier_.fold_phase);

  /// The pool the current run's machine fibers execute on; non-null only
  /// while run() is live (machines park themselves through it).
  Executor* executor_ = nullptr;

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> finished_count_{0};
  mutable Mutex mutex_;  // guards first_error_ only
  std::exception_ptr first_error_ KM_GUARDED_BY(mutex_);
};

}  // namespace km
