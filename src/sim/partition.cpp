#include "sim/partition.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace km {

namespace {
std::vector<std::vector<Vertex>> invert(
    std::size_t k, const std::vector<std::uint32_t>& home) {
  std::vector<std::vector<Vertex>> owned(k);
  for (std::size_t v = 0; v < home.size(); ++v) {
    owned[home[v]].push_back(static_cast<Vertex>(v));
  }
  return owned;
}
}  // namespace

VertexPartition::VertexPartition(std::size_t k,
                                 std::vector<std::uint32_t> home)
    : k_(k), home_(std::move(home)), owned_(invert(k, home_)) {}

VertexPartition VertexPartition::random(std::size_t n, std::size_t k,
                                        Rng& rng) {
  if (k == 0) throw std::invalid_argument("VertexPartition: k must be >= 1");
  std::vector<std::uint32_t> home(n);
  for (auto& h : home) h = static_cast<std::uint32_t>(rng.below(k));
  return VertexPartition(k, std::move(home));
}

VertexPartition VertexPartition::by_hash(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("VertexPartition: k must be >= 1");
  std::vector<std::uint32_t> home(n);
  for (std::size_t v = 0; v < n; ++v) {
    home[v] = static_cast<std::uint32_t>(hash_vertex(seed, v) % k);
  }
  return VertexPartition(k, std::move(home));
}

VertexPartition VertexPartition::round_robin(std::size_t n, std::size_t k) {
  if (k == 0) throw std::invalid_argument("VertexPartition: k must be >= 1");
  std::vector<std::uint32_t> home(n);
  for (std::size_t v = 0; v < n; ++v) {
    home[v] = static_cast<std::uint32_t>(v % k);
  }
  return VertexPartition(k, std::move(home));
}

VertexPartition VertexPartition::identity(std::size_t n) {
  std::vector<std::uint32_t> home(n);
  for (std::size_t v = 0; v < n; ++v) home[v] = static_cast<std::uint32_t>(v);
  return VertexPartition(n, std::move(home));
}

std::size_t VertexPartition::max_load() const noexcept {
  std::size_t best = 0;
  for (const auto& o : owned_) best = std::max(best, o.size());
  return best;
}

double VertexPartition::imbalance() const noexcept {
  if (n() == 0 || k_ == 0) return 0.0;
  const double expected = static_cast<double>(n()) / static_cast<double>(k_);
  return static_cast<double>(max_load()) / expected;
}

EdgePartition::EdgePartition(std::size_t k, std::vector<std::uint32_t> home)
    : k_(k), home_(std::move(home)) {
  owned_.resize(k_);
  for (std::size_t e = 0; e < home_.size(); ++e) {
    owned_[home_[e]].push_back(static_cast<std::uint32_t>(e));
  }
}

EdgePartition EdgePartition::random(std::size_t m, std::size_t k, Rng& rng) {
  if (k == 0) throw std::invalid_argument("EdgePartition: k must be >= 1");
  std::vector<std::uint32_t> home(m);
  for (auto& h : home) h = static_cast<std::uint32_t>(rng.below(k));
  return EdgePartition(k, std::move(home));
}

EdgePartition EdgePartition::by_hash(std::size_t m, std::size_t k,
                                     std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("EdgePartition: k must be >= 1");
  std::vector<std::uint32_t> home(m);
  for (std::size_t e = 0; e < m; ++e) {
    home[e] = static_cast<std::uint32_t>(hash_u64(seed ^ hash_u64(e)) % k);
  }
  return EdgePartition(k, std::move(home));
}

std::size_t EdgePartition::max_load() const noexcept {
  std::size_t best = 0;
  for (const auto& o : owned_) best = std::max(best, o.size());
  return best;
}

}  // namespace km
