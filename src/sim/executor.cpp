#include "sim/executor.hpp"

#include <memory>
#include <thread>

namespace km {

namespace {

// park() and fiber_entry() need to find "the executor and machine I am
// running on" without threading it through every frame of the machine
// program; one thread_local per worker does it (a worker runs exactly
// one fiber at a time).
struct RunningFiber {
  Executor* executor = nullptr;
  std::size_t machine = 0;
  FiberContext* context = nullptr;
  FiberContext* scheduler = nullptr;
};
thread_local RunningFiber g_running;

}  // namespace

std::size_t Executor::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

Executor::Executor(std::size_t machines, std::size_t workers,
                   std::size_t fiber_stack_bytes, IdleHooks idle)
    : idle_(idle) {
  if (fiber_stack_bytes == 0) fiber_stack_bytes = kDefaultFiberStackBytes;
  if (workers == 0) workers = default_worker_count();
  if (machines == 0) machines = 1;
  workers_ = workers < machines ? workers : machines;
  block_ = (machines + workers_ - 1) / workers_;
  machines_.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    machines_.emplace_back(fiber_stack_bytes);
  }
  worker_state_.resize(workers_);
}

std::size_t Executor::worker_of(std::size_t machine) const noexcept {
  return machine / block_;
}

void Executor::fiber_entry(void* raw) {
  auto* running = static_cast<RunningFiber*>(raw);
  Executor* self = running->executor;
  const std::size_t m = running->machine;
  try {
    self->fn_(m);
  } catch (...) {
    // The engine's machine_main catches its own errors; this is the
    // last-resort net so a throwing program can never unwind into
    // makecontext's trampoline.
    if (!self->error_set_.exchange(true, std::memory_order_acq_rel)) {
      self->first_error_ = std::current_exception();
    }
  }
  self->machines_[m].done = true;
  // Final departure: tears down the fiber's sanitizer state and returns
  // control to the scheduler for good.
  FiberContext::switch_to(*g_running.context, *g_running.scheduler,
                          /*terminating=*/true);
}

void Executor::worker_loop(std::size_t w) {
  const std::size_t begin = w * block_;
  std::size_t end = begin + block_;
  if (end > machines_.size()) end = machines_.size();

  FiberContext native;  // constructed here so TSan keys it to this thread
  worker_state_[w].native = &native;

  // Fibers are created (and their TSan state allocated) on the owning
  // worker; contexts live on this frame and die when the block is done.
  std::vector<RunningFiber> slots(end - begin);
  std::vector<std::unique_ptr<FiberContext>> fibers;
  fibers.reserve(end - begin);
  for (std::size_t m = begin; m < end; ++m) {
    auto& slot = slots[m - begin];
    slot.executor = this;
    slot.machine = m;
    slot.scheduler = &native;
    fibers.push_back(std::make_unique<FiberContext>(
        machines_[m].stack, &Executor::fiber_entry, &slot));
    slot.context = fibers.back().get();
    machines_[m].fiber = fibers.back().get();
  }

  std::size_t live = end - begin;
  while (live > 0) {
    bool progressed = false;
    for (std::size_t m = begin; m < end; ++m) {
      Machine& mach = machines_[m];
      if (mach.done) continue;
      if (mach.parked && !mach.ready(mach.ready_arg, m)) continue;
      mach.parked = false;
      g_running = slots[m - begin];
      worker_state_[w].current = mach.fiber;
      FiberContext::switch_to(native, *mach.fiber);
      worker_state_[w].current = nullptr;
      progressed = true;
      if (mach.done) --live;
    }
    if (live == 0) break;
    if (progressed || idle_.epoch == nullptr) continue;
    // Whole block parked, nothing ready: sleep until the wake event's
    // generation moves.  Sampling the epoch before the recheck closes
    // the missed-wakeup window (a release landing after the recheck
    // leaves epoch != seen, so wait() falls through immediately).
    const std::uint64_t seen = idle_.epoch(idle_.arg);
    bool any_ready = false;
    for (std::size_t m = begin; m < end && !any_ready; ++m) {
      Machine& mach = machines_[m];
      any_ready = !mach.done && mach.parked && mach.ready(mach.ready_arg, m);
    }
    if (!any_ready) idle_.wait(idle_.arg, seen);
  }

  for (std::size_t m = begin; m < end; ++m) machines_[m].fiber = nullptr;
  worker_state_[w].native = nullptr;
}

void Executor::run(MachineMain fn) {
  fn_ = std::move(fn);
  if (workers_ == 1) {
    // Degenerate pool: run the scheduler inline — no reason to burn a
    // thread spawn, and it keeps single-worker stacks fully synchronous
    // for debuggers.
    worker_loop(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      pool.emplace_back([this, w] { worker_loop(w); });
    }
  }
  fn_ = nullptr;
  if (error_set_.load(std::memory_order_acquire) && first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    error_set_.store(false, std::memory_order_release);
    std::rethrow_exception(err);
  }
}

void Executor::park(std::size_t machine, ReadyFn ready, void* arg) {
  Machine& mach = machines_[machine];
  mach.ready = ready;
  mach.ready_arg = arg;
  mach.parked = true;
  FiberContext::switch_to(*g_running.context, *g_running.scheduler);
  // Resumed: the scheduler cleared `parked` and restored g_running
  // before switching back in.
}

}  // namespace km
