// Minimal stackful fibers for the worker-pool executor (sim/executor.hpp).
//
// A Fiber is a suspendable call stack: the executor switches a worker
// thread between many machine fibers with swapcontext, so a logical
// machine that blocks at the superstep barrier parks its *stack* instead
// of an OS thread.  This is the mechanism that decouples k (logical
// machines) from the hardware thread count — the same move gpgpu-sim
// makes when it multiplexes thousands of simulated contexts over a
// handful of host threads.
//
// Scope is deliberately tiny — exactly what the executor needs, nothing
// a general coroutine library carries:
//  - One switch primitive (FiberContext::switch_to), symmetric between
//    a worker's native context and its fibers.
//  - Stacks are private anonymous mmaps with a PROT_NONE guard page at
//    the low end, so an overflowing machine program faults loudly
//    instead of corrupting a neighbouring fiber's stack.  Pages are
//    committed lazily by the kernel: k = 4096 fibers of 256 KiB reserve
//    1 GiB of address space but only touch what the programs use.
//  - Sanitizer integration: under ASan every switch is bracketed with
//    __sanitizer_start/finish_switch_fiber (fake-stack hand-off), and
//    under TSan each fiber owns a __tsan_create_fiber state so the race
//    detector tracks the logical, not physical, thread of execution.
//    Without these, both sanitizers see one OS thread jumping between
//    unrelated stacks and drown the build in false positives.
//
// Threading contract: a Fiber is created, run, and destroyed by one
// worker thread (the executor never migrates a machine across workers),
// so nothing here is synchronized.
#pragma once

#include <cstddef>
#include <ucontext.h>

namespace km {

/// Default stack reservation per machine fiber
/// (EngineConfig::fiber_stack_bytes).  256 KiB holds every workload in
/// the tree with headroom; deep per-machine recursion needs a bigger
/// setting, not a bigger default.
inline constexpr std::size_t kDefaultFiberStackBytes = 256 * 1024;

/// Guard-paged stack for one fiber.  Movable, not copyable.
class FiberStack {
 public:
  /// Rounds `bytes` up to whole pages and adds one PROT_NONE guard page
  /// below the usable range.  Throws std::bad_alloc when mmap fails.
  explicit FiberStack(std::size_t bytes);
  ~FiberStack();
  FiberStack(FiberStack&& other) noexcept;
  FiberStack& operator=(FiberStack&& other) noexcept;
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  /// Lowest usable address (just above the guard page).
  void* base() const noexcept { return base_; }
  /// Usable bytes (the guard page is not included).
  std::size_t size() const noexcept { return size_; }

 private:
  void* map_ = nullptr;        ///< mmap origin (guard page)
  std::size_t map_bytes_ = 0;  ///< total mapped length
  void* base_ = nullptr;       ///< usable stack bottom
  std::size_t size_ = 0;       ///< usable stack bytes
};

/// One switchable execution context: either a worker thread's native
/// context (default-constructed, no stack) or a fiber entry point bound
/// to a FiberStack.  switch_to() is the only way control moves between
/// contexts; the sanitizer bookkeeping lives entirely inside it.
class FiberContext {
 public:
  using Entry = void (*)(void* arg);

  /// Native context of the calling thread (a switch target only; its
  /// state is captured by the swapcontext that leaves it).
  FiberContext();
  /// Fiber context: the first switch_to() into it calls entry(arg) on
  /// `stack`.  `entry` must not return — it must switch away with
  /// `terminating = true` as its last act (the executor's trampoline
  /// guarantees this).
  FiberContext(const FiberStack& stack, Entry entry, void* arg);
  ~FiberContext();
  FiberContext(const FiberContext&) = delete;
  FiberContext& operator=(const FiberContext&) = delete;

  /// Suspends `from` (the running context) and resumes `to`.  Returns
  /// when something switches back into `from`.  `terminating` means
  /// `from` is exiting for good: its sanitizer state is torn down and it
  /// must never be switched into again.
  static void switch_to(FiberContext& from, FiberContext& to,
                        bool terminating = false);

 private:
  // makecontext only forwards ints, so the entry thunk receives `this`
  // split across two words and re-joins them (the split-pointer idiom).
  static void trampoline(unsigned hi, unsigned lo);
  // Sanitizer bookkeeping common to both ways control can land in a
  // context (swapcontext returning, or the trampoline starting).
  static void on_resume(FiberContext& landed);

  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  ucontext_t ctx_;
  // Target stack bounds advertised to ASan on switches *into* this
  // context.  For the native context they are learned from the first
  // switch out of it (finish_switch_fiber reports the stack just left).
  const void* stack_bottom_ = nullptr;
  std::size_t stack_size_ = 0;
  void* asan_fake_stack_ = nullptr;  ///< ASan fake-stack save slot
  void* tsan_fiber_ = nullptr;       ///< TSan logical-thread state
  bool owns_tsan_fiber_ = false;
};

}  // namespace km
