#include "sim/engine.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/mathx.hpp"

namespace km {

std::uint64_t EngineConfig::default_bandwidth(std::size_t n) noexcept {
  const std::uint64_t logn = std::max<std::uint64_t>(1, ceil_log2(n));
  return 16 * logn * logn;
}

// ---------------------------------------------------------------------------
// MachineContext
// ---------------------------------------------------------------------------

std::size_t MachineContext::k() const noexcept { return engine_->k(); }

const EngineConfig& MachineContext::config() const noexcept {
  return engine_->config();
}

void MachineContext::send(std::size_t dst, std::uint16_t tag,
                          std::vector<std::byte> payload) {
  if (dst == id_) {
    throw std::logic_error("MachineContext::send: self-addressed message");
  }
  if (dst >= k()) {
    throw std::out_of_range("MachineContext::send: bad destination");
  }
  Message msg;
  msg.dst = static_cast<std::uint32_t>(dst);
  msg.tag = tag;
  msg.payload = std::move(payload);
  outbox_.push_back(std::move(msg));
}

void MachineContext::send(std::size_t dst, std::uint16_t tag, Writer& writer) {
  send(dst, tag, writer.take());
}

void MachineContext::broadcast(std::uint16_t tag, const Writer& writer) {
  const auto view = writer.view();
  for (std::size_t dst = 0; dst < k(); ++dst) {
    if (dst == id_) continue;
    send(dst, tag, std::vector<std::byte>(view.begin(), view.end()));
  }
}

std::vector<Message> MachineContext::exchange() {
  if (engine_->barrier_arrive_and_wait()) {
    // Only possible when the engine aborted (superstep budget): a normal
    // stop requires *all* machines to have finished, and this one hasn't.
    throw std::runtime_error("MachineContext::exchange: engine aborted");
  }
  std::vector<Message> result;
  if (stashed_.empty()) {
    result = std::move(inbox_);
  } else {
    result = std::move(stashed_);
    result.insert(result.end(), std::make_move_iterator(inbox_.begin()),
                  std::make_move_iterator(inbox_.end()));
  }
  inbox_.clear();
  stashed_.clear();
  return result;
}

std::vector<std::uint64_t> MachineContext::all_gather(std::uint64_t value) {
  Writer w;
  w.put_varint(value);
  broadcast(kCollectiveTag, w);
  if (engine_->barrier_arrive_and_wait()) {
    throw std::runtime_error("MachineContext::all_gather: engine aborted");
  }
  std::vector<Message> raw = std::move(inbox_);
  inbox_.clear();
  std::vector<std::uint64_t> values(k(), 0);
  values[id_] = value;
  for (auto& msg : raw) {
    if (msg.tag == kCollectiveTag) {
      Reader r(msg.payload);
      values[msg.src] = r.get_varint();
    } else {
      stashed_.push_back(std::move(msg));
    }
  }
  return values;
}

std::uint64_t MachineContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t total = 0;
  for (std::uint64_t v : all_gather(value)) total += v;
  return total;
}

std::uint64_t MachineContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t best = 0;
  for (std::uint64_t v : all_gather(value)) best = std::max(best, v);
  return best;
}

bool MachineContext::all_reduce_or(bool value) {
  return all_reduce_sum(value ? 1 : 0) > 0;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::size_t k, EngineConfig config)
    : k_(k), config_(config), network_(k, config.bandwidth_bits) {
  if (k_ < 1) throw std::invalid_argument("Engine: k must be >= 1");
}

Metrics Engine::run(const Program& program) {
  contexts_.clear();
  contexts_.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    contexts_.emplace_back(
        new MachineContext(this, i, Rng(config_.seed, i)));
  }
  scratch_outboxes_.assign(k_, {});
  scratch_inboxes_.assign(k_, {});
  metrics_ = Metrics{};
  metrics_.send_bits_per_machine.assign(k_, 0);
  metrics_.recv_bits_per_machine.assign(k_, 0);
  waiting_ = 0;
  generation_ = 0;
  stop_ = false;
  finished_count_ = 0;
  first_error_ = nullptr;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      threads.emplace_back([this, &program, i] {
        try {
          program(*contexts_[i]);
        } catch (...) {
          std::scoped_lock lock(mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        {
          std::scoped_lock lock(mutex_);
          contexts_[i]->finished_ = true;
          ++finished_count_;
        }
        // Keep participating in barriers until the engine stops, so
        // machines that finish early do not deadlock the others.  The
        // stop flag is checked *before* arriving: once it is set, no
        // thread will enter another barrier generation.
        while (!stopped() && !barrier_arrive_and_wait()) {
        }
      });
    }
  }  // jthreads join here
  const auto end = std::chrono::steady_clock::now();
  metrics_.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  if (first_error_) std::rethrow_exception(first_error_);
  contexts_.clear();
  return metrics_;
}

bool Engine::stopped() const {
  std::scoped_lock lock(mutex_);
  return stop_;
}

bool Engine::barrier_arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == k_) {
    waiting_ = 0;
    on_barrier_complete();
    ++generation_;
    cv_.notify_all();
    return stop_;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
  return stop_;
}

void Engine::on_barrier_complete() {
  // Runs on the last arriving thread, under mutex_; all other machine
  // threads are blocked on the condition variable, so touching their
  // contexts is safe.
  for (std::size_t i = 0; i < k_; ++i) {
    scratch_outboxes_[i] = std::move(contexts_[i]->outbox_);
    contexts_[i]->outbox_.clear();
  }
  const DeliveryStats stats = network_.deliver(
      scratch_outboxes_, scratch_inboxes_, metrics_.send_bits_per_machine,
      metrics_.recv_bits_per_machine);
  // The final barrier generation where every machine has already finished
  // (the drain pass) is bookkeeping, not a superstep of the algorithm.
  if (!(finished_count_ == k_ && !stats.any)) {
    if (config_.record_timeline) {
      metrics_.timeline.push_back({.superstep = metrics_.supersteps,
                                   .rounds = stats.rounds,
                                   .messages = stats.messages,
                                   .bits = stats.bits,
                                   .max_link_bits = stats.max_link_bits});
    }
    ++metrics_.supersteps;
  }
  metrics_.rounds += stats.rounds;
  metrics_.messages += stats.messages;
  metrics_.bits += stats.bits;
  metrics_.max_link_bits_superstep =
      std::max(metrics_.max_link_bits_superstep, stats.max_link_bits);
  for (std::size_t dst = 0; dst < k_; ++dst) {
    auto& delivered = scratch_inboxes_[dst];
    if (contexts_[dst]->finished_) {
      metrics_.dropped_messages += delivered.size();
      delivered.clear();
      continue;
    }
    auto& inbox = contexts_[dst]->inbox_;
    inbox.insert(inbox.end(), std::make_move_iterator(delivered.begin()),
                 std::make_move_iterator(delivered.end()));
    delivered.clear();
  }
  if (finished_count_ == k_) stop_ = true;
  if (metrics_.supersteps > config_.max_supersteps && !first_error_) {
    first_error_ = std::make_exception_ptr(std::runtime_error(
        "Engine: superstep budget exhausted (runaway loop?)"));
    stop_ = true;
  }
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " supersteps=" << supersteps
     << " messages=" << messages << " bits=" << bits
     << " max_link_bits=" << max_link_bits_superstep
     << " max_recv_bits=" << max_recv_bits() << " wall_ms=" << wall_ms;
  return os.str();
}

}  // namespace km
