#include "sim/engine.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/mathx.hpp"

namespace km {

std::uint64_t EngineConfig::default_bandwidth(std::size_t n) noexcept {
  const std::uint64_t logn = std::max<std::uint64_t>(1, ceil_log2(n));
  return 16 * logn * logn;
}

// ---------------------------------------------------------------------------
// MachineContext
// ---------------------------------------------------------------------------

MachineContext::MachineContext(Engine* engine, std::size_t id, Rng rng)
    : engine_(engine), id_(id), rng_(rng) {
  const std::size_t k = engine_->k();
  for (auto& buckets : out_buckets_) buckets.resize(k);
  out_bits_.assign(k, 0);
  out_msgs_.assign(k, 0);
}

std::size_t MachineContext::k() const noexcept { return engine_->k(); }

const EngineConfig& MachineContext::config() const noexcept {
  return engine_->config();
}

void MachineContext::send(std::size_t dst, std::uint16_t tag,
                          PayloadRef payload) {
  if (dst == id_) {
    throw std::logic_error("MachineContext::send: self-addressed message");
  }
  if (dst >= k()) {
    throw std::out_of_range("MachineContext::send: bad destination");
  }
  Message msg;
  msg.src = static_cast<std::uint32_t>(id_);
  msg.dst = static_cast<std::uint32_t>(dst);
  msg.tag = tag;
  msg.payload = std::move(payload);
  // Phase 1 of the exchange protocol: bucket by destination and cost the
  // link now, so the barrier merge only touches counters.
  out_bits_[dst] += msg.size_bits();
  out_msgs_[dst] += 1;
  out_buckets_[barriers_passed_ & 1][dst].push_back(std::move(msg));
}

void MachineContext::send(std::size_t dst, std::uint16_t tag,
                          std::vector<std::byte> payload) {
  send(dst, tag, PayloadRef(std::move(payload)));
}

void MachineContext::send(std::size_t dst, std::uint16_t tag, Writer& writer) {
  send(dst, tag, PayloadRef(writer.take()));
}

void MachineContext::broadcast(std::uint16_t tag, Writer& writer) {
  const PayloadRef payload(writer.take());
  for (std::size_t dst = 0; dst < k(); ++dst) {
    if (dst == id_) continue;
    send(dst, tag, payload);  // shares the buffer, no copy
  }
}

std::vector<Message> MachineContext::exchange() {
  if (engine_->barrier_arrive_and_wait()) {
    // Only possible when the engine aborted (superstep budget, or a
    // failed barrier merge): a normal stop requires *all* machines to
    // have finished, and this one hasn't.
    throw std::runtime_error("MachineContext::exchange: engine aborted");
  }
  std::vector<Message> result = std::move(stashed_);
  stashed_.clear();
  engine_->drain_inbound(*this, result);
  return result;
}

std::vector<std::uint64_t> MachineContext::all_gather(std::uint64_t value) {
  Writer w;
  w.put_varint(value);
  broadcast(kCollectiveTag, w);
  if (engine_->barrier_arrive_and_wait()) {
    throw std::runtime_error("MachineContext::all_gather: engine aborted");
  }
  std::vector<Message> raw;
  engine_->drain_inbound(*this, raw);
  std::vector<std::uint64_t> values(k(), 0);
  values[id_] = value;
  for (auto& msg : raw) {
    if (msg.tag == kCollectiveTag) {
      Reader r(msg.payload);
      values[msg.src] = r.get_varint();
    } else {
      stashed_.push_back(std::move(msg));
    }
  }
  return values;
}

std::uint64_t MachineContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t total = 0;
  for (std::uint64_t v : all_gather(value)) total += v;
  return total;
}

std::uint64_t MachineContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t best = 0;
  for (std::uint64_t v : all_gather(value)) best = std::max(best, v);
  return best;
}

bool MachineContext::all_reduce_or(bool value) {
  return all_reduce_sum(value ? 1 : 0) > 0;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::size_t k, EngineConfig config)
    : k_(k), config_(std::move(config)), network_(k, config_.bandwidth_bits) {
  if (k_ < 1) throw std::invalid_argument("Engine: k must be >= 1");
}

Metrics Engine::run(const Program& program) {
  contexts_.clear();
  contexts_.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    contexts_.emplace_back(
        new MachineContext(this, i, Rng(config_.seed, i)));
  }
  // Tear machine state down on *every* exit path, including the rethrow
  // below: stale contexts must not survive into the next run.
  struct ContextsGuard {
    Engine& engine;
    ~ContextsGuard() { engine.contexts_.clear(); }
  } guard{*this};
  metrics_ = Metrics{};
  metrics_.send_bits_per_machine.assign(k_, 0);
  metrics_.recv_bits_per_machine.assign(k_, 0);
  waiting_ = 0;
  generation_ = 0;
  stop_ = false;
  finished_count_ = 0;
  first_error_ = nullptr;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      threads.emplace_back([this, &program, i] {
        try {
          program(*contexts_[i]);
        } catch (...) {
          std::scoped_lock lock(mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        {
          std::scoped_lock lock(mutex_);
          contexts_[i]->finished_ = true;
          ++finished_count_;
        }
        // Keep participating in barriers until the engine stops, so
        // machines that finish early do not deadlock the others.  The
        // stop flag is checked *before* arriving: once it is set, no
        // thread will enter another barrier generation.  Incoming
        // buckets still have to be walked each generation — discarded,
        // not delivered — to keep the parity hand-off sound.
        while (!stopped()) {
          if (barrier_arrive_and_wait()) break;
          discard_inbound(*contexts_[i]);
        }
      });
    }
  }  // jthreads join here
  const auto end = std::chrono::steady_clock::now();
  metrics_.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  if (first_error_) std::rethrow_exception(first_error_);
  return metrics_;
}

bool Engine::stopped() const {
  std::scoped_lock lock(mutex_);
  return stop_;
}

bool Engine::barrier_arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == k_) {
    waiting_ = 0;
    try {
      on_barrier_complete();
    } catch (...) {
      // A throw out of the merge must not leave the other machines
      // parked on the condition variable forever: record it, stop the
      // engine, and complete the generation so everyone wakes and sees
      // the stop flag.
      if (!first_error_) first_error_ = std::current_exception();
      stop_ = true;
    }
    ++generation_;
    cv_.notify_all();
    return stop_;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
  return stop_;
}

void Engine::on_barrier_complete() {
  // Phase 2 of the exchange protocol: runs on the last arriving thread,
  // under mutex_; all other machine threads are blocked on the condition
  // variable, so reading their counters is safe.  Only the pre-computed
  // per-link counters are merged here — O(k^2) integer work.  Payloads
  // never pass through this critical section; they move in parallel on
  // the machine threads afterwards (drain_inbound).
  if (config_.barrier_fault_injection) {
    config_.barrier_fault_injection(metrics_.supersteps);
  }
  DeliveryStats stats;
  for (std::size_t src = 0; src < k_; ++src) {
    MachineContext& from = *contexts_[src];
    for (std::size_t dst = 0; dst < k_; ++dst) {
      const std::uint64_t msgs = from.out_msgs_[dst];
      if (msgs == 0) continue;
      const std::uint64_t bits = from.out_bits_[dst];
      stats.messages += msgs;
      stats.bits += bits;
      stats.max_link_bits = std::max(stats.max_link_bits, bits);
      metrics_.send_bits_per_machine[src] += bits;
      metrics_.recv_bits_per_machine[dst] += bits;
      if (contexts_[dst]->finished_) metrics_.dropped_messages += msgs;
      from.out_bits_[dst] = 0;
      from.out_msgs_[dst] = 0;
    }
  }
  if (stats.messages > 0) {
    stats.any = true;
    stats.rounds = network_.rounds_for(stats.max_link_bits);
  }
  // The final barrier generation where every machine has already finished
  // (the drain pass) is bookkeeping, not a superstep of the algorithm.
  if (!(finished_count_ == k_ && !stats.any)) {
    if (config_.record_timeline) {
      metrics_.timeline.push_back({.superstep = metrics_.supersteps,
                                   .rounds = stats.rounds,
                                   .messages = stats.messages,
                                   .bits = stats.bits,
                                   .max_link_bits = stats.max_link_bits});
    }
    ++metrics_.supersteps;
  }
  metrics_.rounds += stats.rounds;
  metrics_.messages += stats.messages;
  metrics_.bits += stats.bits;
  metrics_.max_link_bits_superstep =
      std::max(metrics_.max_link_bits_superstep, stats.max_link_bits);
  if (finished_count_ == k_) stop_ = true;
  if (metrics_.supersteps > config_.max_supersteps && !first_error_) {
    first_error_ = std::make_exception_ptr(std::runtime_error(
        "Engine: superstep budget exhausted (runaway loop?)"));
    stop_ = true;
  }
}

void Engine::drain_inbound(MachineContext& ctx, std::vector<Message>& into) {
  // Runs on ctx's own thread with no lock held.  Safe: the sources wrote
  // these buckets before arriving at the barrier we just left (the
  // barrier mutex publishes them), and their next sends go to the
  // opposite parity.
  const std::size_t parity = ctx.barriers_passed_ & 1;
  ++ctx.barriers_passed_;
  std::size_t total = into.size();
  for (std::size_t src = 0; src < k_; ++src) {
    total += contexts_[src]->out_buckets_[parity][ctx.id_].size();
  }
  into.reserve(total);
  for (std::size_t src = 0; src < k_; ++src) {
    auto& bucket = contexts_[src]->out_buckets_[parity][ctx.id_];
    into.insert(into.end(), std::make_move_iterator(bucket.begin()),
                std::make_move_iterator(bucket.end()));
    bucket.clear();  // keeps capacity: message-slot pool across supersteps
  }
}

void Engine::discard_inbound(MachineContext& ctx) {
  const std::size_t parity = ctx.barriers_passed_ & 1;
  ++ctx.barriers_passed_;
  for (std::size_t src = 0; src < k_; ++src) {
    contexts_[src]->out_buckets_[parity][ctx.id_].clear();
  }
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " supersteps=" << supersteps
     << " messages=" << messages << " bits=" << bits
     << " max_link_bits=" << max_link_bits_superstep
     << " max_recv_bits=" << max_recv_bits()
     << " dropped=" << dropped_messages << " wall_ms=" << wall_ms;
  return os.str();
}

}  // namespace km
