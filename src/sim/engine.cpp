#include "sim/engine.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "util/buffer_pool.hpp"
#include "util/mathx.hpp"

namespace km {

#if KM_TRACING_ENABLED
namespace {
/// Accumulates one send() call's wall time into the machine's nested send
/// span.  Inert (no clock read) on untraced runs.
class SendTimer {
 public:
  explicit SendTimer(MachineTraceBuffer* buf) : buf_(buf) {
    if (buf_) begin_ = buf_->now_ns();
  }
  ~SendTimer() {
    if (buf_) buf_->add_send(begin_, buf_->now_ns());
  }
  SendTimer(const SendTimer&) = delete;
  SendTimer& operator=(const SendTimer&) = delete;

 private:
  MachineTraceBuffer* buf_;
  std::uint64_t begin_ = 0;
};
}  // namespace
#endif

std::uint64_t EngineConfig::default_bandwidth(std::size_t n) noexcept {
  const std::uint64_t logn = std::max<std::uint64_t>(1, ceil_log2(n));
  return 16 * logn * logn;
}

// ---------------------------------------------------------------------------
// MachineContext
// ---------------------------------------------------------------------------

MachineContext::MachineContext(Engine* engine, std::size_t id, Rng rng)
    : engine_(engine), id_(id), rng_(rng) {
  const std::size_t k = engine_->k();
  for (auto& links : out_) links.resize(k);
  out_bits_.assign(k, 0);
  out_msgs_.assign(k, 0);
}

std::size_t MachineContext::k() const noexcept { return engine_->k(); }

const EngineConfig& MachineContext::config() const noexcept {
  return engine_->config();
}

MachineContext::LinkOut& MachineContext::link_for(std::size_t dst) {
  if (dst == id_) {
    throw std::logic_error("MachineContext::send: self-addressed message");
  }
  if (dst >= k()) {
    throw std::out_of_range("MachineContext::send: bad destination");
  }
  return out_[barriers_passed_ & 1][dst];
}

void MachineContext::account_send(std::size_t dst,
                                  std::uint64_t payload_bytes) {
  // Phase 1 of the exchange protocol: cost the link now — one header plus
  // the payload per message, framed or not (the unbatched formula) — so
  // the barrier folds only counters.  The row aggregates keep the leaf
  // fold O(1) per machine scalar.
  const std::uint64_t bits = Message::kHeaderBits + payload_bytes * 8;
  out_bits_[dst] += bits;
  out_msgs_[dst] += 1;
  row_bits_ += bits;
  row_msgs_ += 1;
  row_max_ = std::max(row_max_, out_bits_[dst]);
}

// Framing pays a memcpy to save a refcounted buffer per message; with a
// single message on the link there is nothing to amortize it against, so
// a link's first small message takes the zero-copy path and framing
// starts from the second.  (Delivery order is independent of the split:
// the messages vector is authoritative.)  The threshold is the
// EngineConfig knob; 0 turns framing off.
bool MachineContext::should_frame(const LinkOut& link,
                                  std::size_t payload_bytes) const {
  const std::size_t threshold = config().framed_payload_max_bytes;
  return threshold > 0 && payload_bytes <= threshold &&
         !link.messages.empty();
}

Message MachineContext::stamp(std::size_t dst, std::uint16_t tag) const {
  Message msg;
  msg.src = static_cast<std::uint32_t>(id_);
  msg.dst = static_cast<std::uint32_t>(dst);
  msg.tag = tag;
  return msg;
}

void MachineContext::send(std::size_t dst, std::uint16_t tag,
                          PayloadRef payload) {
#if KM_TRACING_ENABLED
  const SendTimer timer(trace_);
#endif
  LinkOut& link = link_for(dst);
  account_send(dst, payload.size());
  Message msg = stamp(dst, tag);
  msg.payload = std::move(payload);
  link.messages.push_back(std::move(msg));
}

void MachineContext::send_framed(LinkOut& link, std::size_t dst,
                                 std::uint16_t tag,
                                 std::span<const std::byte> payload) {
  account_send(dst, payload.size());
  // The frame is one pooled buffer per (src, dst, superstep); its entries
  // are length-prefixed and appear in the same order as the indices in
  // link.framed, so delivery can walk both in lockstep.
  if (link.frame.capacity() == 0) link.frame = acquire_buffer();
  link.framed.push_back(static_cast<std::uint32_t>(link.messages.size()));
  append_varint(link.frame, payload.size());
  link.frame.insert(link.frame.end(), payload.begin(), payload.end());
  // The payload stays empty until delivery slices the frame.
  link.messages.push_back(stamp(dst, tag));
}

void MachineContext::send(std::size_t dst, std::uint16_t tag,
                          std::vector<std::byte> payload) {
#if KM_TRACING_ENABLED
  const SendTimer timer(trace_);
#endif
  LinkOut& link = link_for(dst);
  if (should_frame(link, payload.size())) {
    send_framed(link, dst, tag, payload);
    recycle_buffer(std::move(payload));
  } else {
    account_send(dst, payload.size());
    Message msg = stamp(dst, tag);
    msg.payload = PayloadRef(std::move(payload));
    link.messages.push_back(std::move(msg));
  }
}

void MachineContext::send(std::size_t dst, std::uint16_t tag, Writer& writer) {
#if KM_TRACING_ENABLED
  const SendTimer timer(trace_);
#endif
  LinkOut& link = link_for(dst);
  if (should_frame(link, writer.size_bytes())) {
    send_framed(link, dst, tag, writer.view());
    writer.clear();  // consumed; capacity stays with the writer
  } else {
    account_send(dst, writer.size_bytes());
    Message msg = stamp(dst, tag);
    msg.payload = PayloadRef(writer.take());
    link.messages.push_back(std::move(msg));
  }
}

void MachineContext::broadcast(std::uint16_t tag, Writer& writer) {
  const PayloadRef payload(writer.take());
  for (std::size_t dst = 0; dst < k(); ++dst) {
    if (dst == id_) continue;
    send(dst, tag, payload);  // shares the buffer, no copy, never framed
  }
}

std::vector<Message> MachineContext::exchange() {
  // The machine's superstep boundary is also the tracing seam: the span
  // clock only ticks here and in SendTimer, so an untraced run's hot path
  // sees nothing but null-pointer checks.
#if KM_TRACING_ENABLED
  if (trace_) trace_->begin_sync(trace_->now_ns());
#endif
  if (engine_->barrier_arrive_and_wait(id_)) {
    // Only possible when the engine aborted (superstep budget, or a
    // failed barrier merge): a normal stop requires *all* machines to
    // have finished, and this one hasn't.
    throw std::runtime_error("MachineContext::exchange: engine aborted");
  }
#if KM_TRACING_ENABLED
  if (trace_) trace_->end_barrier(trace_->now_ns());
#endif
  std::vector<Message> result = std::move(stashed_);
  stashed_.clear();
  engine_->drain_inbound(*this, result);
#if KM_TRACING_ENABLED
  if (trace_) trace_->end_deliver(trace_->now_ns());
#endif
  return result;
}

std::vector<std::uint64_t> MachineContext::all_gather(std::uint64_t value) {
  Writer w;
  w.put_varint(value);
  broadcast(kCollectiveTag, w);
  // Collective-tagged messages are always consumed in the superstep that
  // sent them, so stashed leftovers survive the detour through exchange()
  // unchanged: they come back at the front of `raw` and go straight back
  // into the stash, preserving order.
  std::vector<Message> raw = exchange();
  std::vector<std::uint64_t> values(k(), 0);
  values[id_] = value;
  for (auto& msg : raw) {
    if (msg.tag == kCollectiveTag) {
      Reader r(msg.payload);
      values[msg.src] = r.get_varint();
    } else {
      stashed_.push_back(std::move(msg));
    }
  }
  return values;
}

std::uint64_t MachineContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t total = 0;
  for (std::uint64_t v : all_gather(value)) total += v;
  return total;
}

std::uint64_t MachineContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t best = 0;
  for (std::uint64_t v : all_gather(value)) best = std::max(best, v);
  return best;
}

bool MachineContext::all_reduce_or(bool value) {
  return all_reduce_sum(value ? 1 : 0) > 0;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::size_t k, EngineConfig config)
    : k_(k),
      config_(std::move(config)),
      network_(k, config_.bandwidth_bits),
      barrier_(k),
      node_accums_(barrier_.node_count()) {
  if (k_ < 1) throw std::invalid_argument("Engine: k must be >= 1");
  // Resolve the framing threshold once, here, so every consumer of
  // config() (should_frame, tests poking at engine.config()) sees the
  // concrete policy instead of the auto sentinel.
  if (config_.framed_payload_max_bytes == kFramedPayloadAuto) {
    config_.framed_payload_max_bytes =
        framed_payload_default_bytes(config_.bandwidth_bits);
  }
  for (NodeAccum& acc : node_accums_) {
    acc.recv_bits.assign(k_, 0);
    acc.recv_msgs.assign(k_, 0);
  }
}

Metrics Engine::run(const Program& program) {
  contexts_.clear();
  contexts_.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    contexts_.emplace_back(
        new MachineContext(this, i, Rng(config_.seed, i)));
  }
  // Tear machine state down on *every* exit path, including the rethrow
  // below: stale contexts must not survive into the next run.
  struct ContextsGuard {
    Engine& engine;
    ~ContextsGuard() { engine.contexts_.clear(); }
  } guard{*this};
  trace_.reset();  // last run's trace dies here whatever config says now
#if KM_TRACING_ENABLED
  if (config_.trace) {
    trace_ = std::make_shared<TraceSession>(k_, config_.trace_links);
    for (std::size_t i = 0; i < k_; ++i) {
      contexts_[i]->trace_ = &trace_->machine(i);
    }
  }
#endif
  // Single-threaded prologue: no machine thread exists yet, so this
  // thread trivially has fold-phase exclusivity over the metrics and
  // accumulators (the phantom acquire is free and keeps the guarded
  // members compile-checked).
  barrier_.fold_phase.acquire();
  metrics_ = Metrics{};
  metrics_.send_bits_per_machine.assign(k_, 0);
  metrics_.recv_bits_per_machine.assign(k_, 0);
  // An aborted run leaves folded-but-unconsumed accumulators behind;
  // re-arm everything before the first machine thread starts.
  barrier_.reset();
  for (NodeAccum& acc : node_accums_) {
    acc.bits = acc.msgs = acc.max_link = 0;
    std::fill(acc.recv_bits.begin(), acc.recv_bits.end(), 0);
    std::fill(acc.recv_msgs.begin(), acc.recv_msgs.end(), 0);
  }
  barrier_.fold_phase.release();
  stop_.store(false, std::memory_order_relaxed);
  finished_count_.store(0, std::memory_order_relaxed);
  {
    const MutexLock lock(mutex_);
    first_error_ = nullptr;
  }
  const BufferPoolCounters pool_baseline = buffer_pool_counters();
  const PayloadPoolCounters payload_baseline = payload_pool_counters();

  // Wall-clock metric, not simulation state: rounds/bits stay seeded-
  // deterministic whatever this reads.  km-lint: allow(wall-clock)
  const auto start = std::chrono::steady_clock::now();
  {
    // One fiber per machine, multiplexed over the worker pool.  When a
    // machine parks at the barrier the worker polls
    // TreeBarrier::released() for it; when a worker's whole block is
    // parked it futex-waits on the barrier's sense word (the only event
    // that can make a parked machine runnable).
    Executor executor(k_, config_.workers, config_.fiber_stack_bytes,
                      IdleHooks{.epoch = &Engine::idle_epoch,
                                .wait = &Engine::idle_wait,
                                .arg = this});
    executor_ = &executor;
    struct ExecutorGuard {
      Engine& engine;
      ~ExecutorGuard() { engine.executor_ = nullptr; }
    } executor_guard{*this};
    executor.run([this, &program](std::size_t i) { machine_main(program, i); });
  }  // workers join here
  // Wall-clock metric, not simulation state.  km-lint: allow(wall-clock)
  const auto end = std::chrono::steady_clock::now();
  // Single-threaded epilogue: every machine thread joined above, so this
  // thread again holds fold-phase exclusivity.
  barrier_.fold_phase.acquire();
  metrics_.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  metrics_.pool = buffer_pool_counters().since(pool_baseline);
  metrics_.payload_pool = payload_pool_counters().since(payload_baseline);
#if KM_TRACING_ENABLED
  if (trace_) metrics_.timing = trace_->summarize();
#endif
  const Metrics result = metrics_;
  barrier_.fold_phase.release();

  std::exception_ptr error;
  {
    const MutexLock lock(mutex_);
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
  return result;
}

void Engine::machine_main(const Program& program, std::size_t who) {
#if KM_TRACING_ENABLED
  // Span origin on the machine's own fiber, so the first compute span
  // excludes pool startup latency.
  if (contexts_[who]->trace_) contexts_[who]->trace_->thread_begin();
#endif
  try {
    program(*contexts_[who]);
  } catch (...) {
    record_first_error(std::current_exception());
  }
  contexts_[who]->finished_ = true;  // published by the next arrival
  finished_count_.fetch_add(1, std::memory_order_release);
  // Keep participating in barriers until the engine stops, so machines
  // that finish early do not deadlock the others.  The stop flag is
  // checked *before* arriving: once it is set, no machine will enter
  // another barrier episode.  Incoming buckets still have to be walked
  // each episode — discarded, not delivered — to keep the parity
  // hand-off sound.
  while (!stopped()) {
    if (barrier_arrive_and_wait(who)) break;
    discard_inbound(*contexts_[who]);
  }
}

bool Engine::machine_released(void* self, std::size_t who) {
  return static_cast<Engine*>(self)->barrier_.released(who);
}

std::uint64_t Engine::idle_epoch(void* self) {
  return static_cast<Engine*>(self)->barrier_.sense_word();
}

void Engine::idle_wait(void* self, std::uint64_t seen) {
  static_cast<Engine*>(self)->barrier_.wait_sense(
      static_cast<std::uint32_t>(seen));
}

void Engine::record_first_error(std::exception_ptr error) {
  const MutexLock lock(mutex_);
  set_first_error_locked(std::move(error));
}

void Engine::set_first_error_locked(std::exception_ptr error) {
  if (!first_error_) first_error_ = std::move(error);
}

bool Engine::barrier_arrive_and_wait(std::size_t who) {
  const auto outcome = barrier_.arrive_begin(
      who,
      [this](std::size_t node, bool leaf, std::size_t child_begin,
             std::size_t child_end) {
        // TreeBarrier::arrive_begin holds fold_phase across this hook
        // (the node's fan-in fetch_add elected us sole folder); the
        // lambda is analyzed in isolation, so restate that fact for the
        // analysis.
        barrier_.fold_phase.assert_held();
        fold_node(node, leaf, child_begin, child_end);
      },
      [this] {
        // Same contract: arrive_begin() holds fold_phase across finalize.
        barrier_.fold_phase.assert_held();
        return finalize_superstep();
      });
  if (outcome == TreeBarrier::ArriveOutcome::kParked) {
    // Machine-granular wait: yield this fiber back to the worker, which
    // runs its other machines and resumes us once released() holds.  The
    // sense cannot flip again until this machine re-arrives, so a stale
    // resume is impossible.
    executor_->park(who, &Engine::machine_released, this);
  }
  return barrier_.stop_flag();
}

void Engine::fold_node(std::size_t node, bool leaf, std::size_t child_begin,
                       std::size_t child_end) {
  // Phase 2 of the exchange protocol: runs on the last thread to arrive
  // at `node`, with every child quiescent (their arrivals happen-before
  // this call).  Only pre-computed integer counters fold here — payloads
  // never ride the barrier.  Children are zeroed as they are consumed so
  // the next episode starts clean.
  NodeAccum& acc = node_accums_[node];
  if (leaf) {
    for (std::size_t m = child_begin; m < child_end; ++m) {
      MachineContext& from = *contexts_[m];
      if (from.row_msgs_ == 0) continue;
#if KM_TRACING_ENABLED
      if (trace_ && trace_->links_enabled()) {
        // Snapshot the row before the zeroing below destroys it.  Leaf
        // folders own disjoint machine ranges, so concurrent folders
        // write disjoint matrix rows — the same exclusivity that lets
        // them write metrics_.send_bits_per_machine[m] above.
        trace_->fold_gate.assert_held();
        trace_->record_link_row(m, from.out_bits_.data());
      }
#endif
      acc.bits += from.row_bits_;
      acc.msgs += from.row_msgs_;
      acc.max_link = std::max(acc.max_link, from.row_max_);
      metrics_.send_bits_per_machine[m] += from.row_bits_;
      for (std::size_t dst = 0; dst < k_; ++dst) {
        if (from.out_msgs_[dst] == 0) continue;
        acc.recv_bits[dst] += from.out_bits_[dst];
        acc.recv_msgs[dst] += from.out_msgs_[dst];
        from.out_bits_[dst] = 0;
        from.out_msgs_[dst] = 0;
      }
      from.row_bits_ = from.row_msgs_ = from.row_max_ = 0;
    }
  } else {
    for (std::size_t c = child_begin; c < child_end; ++c) {
      NodeAccum& child = node_accums_[c];
      if (child.msgs == 0) continue;
      acc.bits += child.bits;
      acc.msgs += child.msgs;
      acc.max_link = std::max(acc.max_link, child.max_link);
      for (std::size_t dst = 0; dst < k_; ++dst) {
        if (child.recv_msgs[dst] == 0) continue;
        acc.recv_bits[dst] += child.recv_bits[dst];
        acc.recv_msgs[dst] += child.recv_msgs[dst];
        child.recv_bits[dst] = 0;
        child.recv_msgs[dst] = 0;
      }
      child.bits = child.msgs = child.max_link = 0;
    }
  }
}

bool Engine::finalize_superstep() {
  // Runs once per superstep on the root's last arriver; by the acq_rel
  // arrival chain it happens-after every machine's sends, finish flag,
  // and the whole counter fold.  Must not throw: failures become
  // first_error_ plus a stop that propagates down the release.
  NodeAccum& root = node_accums_[barrier_.root()];
  bool stop = false;
  try {
    if (config_.barrier_fault_injection) {
      config_.barrier_fault_injection(metrics_.supersteps);
    }
    DeliveryStats stats;
    stats.messages = root.msgs;
    stats.bits = root.bits;
    stats.max_link_bits = root.max_link;
    if (root.msgs > 0) {
      stats.any = true;
      stats.rounds = network_.rounds_for(stats.max_link_bits);
      for (std::size_t dst = 0; dst < k_; ++dst) {
        if (root.recv_msgs[dst] == 0) continue;
        metrics_.recv_bits_per_machine[dst] += root.recv_bits[dst];
        if (contexts_[dst]->finished_) {
          metrics_.dropped_messages += root.recv_msgs[dst];
        }
        root.recv_bits[dst] = 0;
        root.recv_msgs[dst] = 0;
      }
    }
    root.bits = root.msgs = root.max_link = 0;
    const bool all_finished =
        finished_count_.load(std::memory_order_acquire) == k_;
    // The final barrier episode where every machine has already finished
    // (the drain pass) is bookkeeping, not a superstep of the algorithm.
    if (!(all_finished && !stats.any)) {
      if (config_.record_timeline) {
        metrics_.timeline.push_back({.superstep = metrics_.supersteps,
                                     .rounds = stats.rounds,
                                     .messages = stats.messages,
                                     .bits = stats.bits,
                                     .max_link_bits = stats.max_link_bits});
      }
#if KM_TRACING_ENABLED
      if (trace_) {
        // Root finalizer == sole holder of the fold phase; one counter
        // sample (and link matrix, if any) per counted superstep.
        trace_->fold_gate.assert_held();
        trace_->finalize_superstep(metrics_.supersteps, stats.rounds,
                                   stats.messages, stats.bits,
                                   stats.max_link_bits);
      }
#endif
      ++metrics_.supersteps;
    }
    metrics_.rounds += stats.rounds;
    metrics_.messages += stats.messages;
    metrics_.bits += stats.bits;
    metrics_.max_link_bits_superstep =
        std::max(metrics_.max_link_bits_superstep, stats.max_link_bits);
    if (all_finished) stop = true;
    if (metrics_.supersteps > config_.max_supersteps) {
      record_first_error(std::make_exception_ptr(std::runtime_error(
          "Engine: superstep budget exhausted (runaway loop?)")));
      stop = true;
    }
  } catch (...) {
    // A throw out of the merge must not leave the other machines parked
    // forever: record it and stop, so the sense flip wakes everyone into
    // the abort path.
    record_first_error(std::current_exception());
    stop = true;
  }
  if (stop) stop_.store(true, std::memory_order_release);
  return stop;
}

void Engine::drain_inbound(MachineContext& ctx, std::vector<Message>& into) {
  // Runs on ctx's own thread with no lock held.  Safe: the sources wrote
  // these LinkOuts before arriving at the barrier we just left (the tree
  // barrier's release publishes them), and their next sends go to the
  // opposite parity.
  const std::size_t parity = ctx.barriers_passed_ & 1;
  ++ctx.barriers_passed_;
  std::size_t total = into.size();
  for (std::size_t src = 0; src < k_; ++src) {
    total += contexts_[src]->out_[parity][ctx.id_].messages.size();
  }
  into.reserve(total);
  for (std::size_t src = 0; src < k_; ++src) {
    auto& link = contexts_[src]->out_[parity][ctx.id_];
    if (!link.framed.empty()) {
      // Re-materialize framed payloads: the whole frame becomes one
      // refcounted buffer and each framed message gets a zero-copy slice
      // of it, restoring the exact bytes the sender wrote.
      PayloadRef frame(std::move(link.frame));
      Reader r(frame.view());
      for (const std::uint32_t idx : link.framed) {
        const std::uint64_t len = r.get_varint();
        const std::size_t offset = frame.size() - r.remaining();
        link.messages[idx].payload =
            frame.slice(offset, static_cast<std::size_t>(len));
        r.skip(static_cast<std::size_t>(len));
      }
      link.framed.clear();
    }
    into.insert(into.end(), std::make_move_iterator(link.messages.begin()),
                std::make_move_iterator(link.messages.end()));
    link.messages.clear();  // keeps capacity: slot pool across supersteps
  }
}

void Engine::discard_inbound(MachineContext& ctx) {
  const std::size_t parity = ctx.barriers_passed_ & 1;
  ++ctx.barriers_passed_;
  for (std::size_t src = 0; src < k_; ++src) {
    auto& link = contexts_[src]->out_[parity][ctx.id_];
    link.messages.clear();
    link.framed.clear();
    link.frame.clear();  // keeps capacity for the link's next superstep
  }
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " supersteps=" << supersteps
     << " messages=" << messages << " bits=" << bits
     << " max_link_bits=" << max_link_bits_superstep
     << " max_recv_bits=" << max_recv_bits()
     << " dropped=" << dropped_messages << " wall_ms=" << wall_ms
     << " pool_hits=" << pool.hits << " pool_misses=" << pool.misses
     << " pool_evicted=" << pool.evicted
     << " pool_evicted_bytes=" << pool.evicted_bytes
     << " pool_buffers=" << pool.pooled_buffers
     << " pool_bytes=" << pool.pooled_bytes
     << " pool_shelf_returns=" << pool.shelf_returns
     << " pool_shelf_refills=" << pool.shelf_refills
     << " pool_shelf_buffers=" << pool.shelf_buffers
     << " payload_pool_hits=" << payload_pool.hits
     << " payload_pool_misses=" << payload_pool.misses
     << " payload_pool_recycled=" << payload_pool.recycled
     << " payload_pool_dropped=" << payload_pool.dropped
     << " payload_pool_objects=" << payload_pool.pooled_objects;
  if (timing.enabled) {
    os << " barrier_wait_max_ms=" << timing.barrier_wait_max_ms
       << " barrier_wait_mean_ms=" << timing.barrier_wait_mean_ms
       << " barrier_wait_skew=" << timing.barrier_wait_skew;
  }
  return os.str();
}

}  // namespace km
