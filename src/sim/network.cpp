#include "sim/network.hpp"

#include <stdexcept>

#include "util/mathx.hpp"

namespace km {

Network::Network(std::size_t k, std::uint64_t bandwidth_bits)
    : k_(k), bandwidth_(bandwidth_bits) {
  if (k < 1) throw std::invalid_argument("Network: k must be >= 1");
  if (bandwidth_bits < 1) {
    throw std::invalid_argument("Network: bandwidth must be >= 1 bit");
  }
  link_bits_.assign(k_ * k_, 0);
}

DeliveryStats Network::deliver(std::vector<std::vector<Message>>& outboxes,
                               std::vector<std::vector<Message>>& inboxes,
                               std::span<std::uint64_t> send_bits,
                               std::span<std::uint64_t> recv_bits) {
  DeliveryStats stats;
  for (std::size_t src = 0; src < k_; ++src) {
    for (Message& msg : outboxes[src]) {
      if (msg.dst >= k_) {
        throw std::out_of_range("Network::deliver: bad destination machine");
      }
      if (msg.dst == src) {
        throw std::logic_error(
            "Network::deliver: self-addressed message (use local state)");
      }
      msg.src = static_cast<std::uint32_t>(src);
      const std::uint64_t sz = msg.size_bits();
      const std::size_t link = src * k_ + msg.dst;
      if (link_bits_[link] == 0) touched_links_.push_back(link);
      link_bits_[link] += sz;
      stats.bits += sz;
      ++stats.messages;
      if (src < send_bits.size()) send_bits[src] += sz;
      if (msg.dst < recv_bits.size()) recv_bits[msg.dst] += sz;
      inboxes[msg.dst].push_back(std::move(msg));
    }
    outboxes[src].clear();
  }
  for (const std::size_t link : touched_links_) {
    stats.max_link_bits = std::max(stats.max_link_bits, link_bits_[link]);
    link_bits_[link] = 0;
  }
  touched_links_.clear();
  if (stats.messages > 0) {
    stats.any = true;
    stats.rounds = rounds_for(stats.max_link_bits);
  }
  return stats;
}

}  // namespace km
