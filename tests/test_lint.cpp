// Tests for the km_lint determinism scanner (tools/lint).
//
// Two layers: in-process rule tests against tests/lint_fixtures/ and
// inline snippets (library API), plus a subprocess test that runs the
// km_lint binary and checks its exit-code and JSON report contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

#ifdef __unix__
#include <sys/wait.h>
#endif

namespace {

using km::lint::Finding;
using km::lint::scan_file;
using km::lint::scan_source;

std::string fixture(const std::string& name) {
  return std::string(KM_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

TEST(LintRules, CatalogueListsAllSevenRules) {
  std::vector<std::string> ids;
  for (const km::lint::RuleInfo& r : km::lint::rules()) {
    ids.emplace_back(r.id);
  }
  const std::vector<std::string> expected = {
      "random-device",  "c-rand",        "wall-clock",   "pointer-key-map",
      "unordered-iter", "unseeded-rng",  "trace-outside-module"};
  EXPECT_EQ(ids, expected);
  for (const km::lint::RuleInfo& r : km::lint::rules()) {
    EXPECT_FALSE(r.summary.empty()) << r.id;
  }
}

struct FixtureCase {
  const char* file;
  const char* logical;  // path the scanner sees (drives path scoping)
  const char* rule;
};

class LintFixture : public ::testing::TestWithParam<FixtureCase> {};

// Every fixture seeds exactly one violation of its rule plus an
// allowlisted counterpart; the allow() escape must swallow the latter.
TEST_P(LintFixture, FiresOnceAndAllowSuppresses) {
  const FixtureCase& fc = GetParam();
  auto findings = scan_file(fixture(fc.file), fc.logical);
  ASSERT_TRUE(findings.has_value()) << fc.file;
  ASSERT_EQ(findings->size(), 1u)
      << fc.file << " rules: " << ::testing::PrintToString(
             rules_of(*findings));
  EXPECT_EQ((*findings)[0].rule, fc.rule);
  EXPECT_EQ((*findings)[0].path, fc.logical);
  EXPECT_GT((*findings)[0].line, 0u);
  EXPECT_FALSE((*findings)[0].message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, LintFixture,
    ::testing::Values(
        FixtureCase{"random_device.cpp", "tests/random_device.cpp",
                    "random-device"},
        FixtureCase{"c_rand.cpp", "tests/c_rand.cpp", "c-rand"},
        // wall_clock's allowed counterpart must sit on a sanctioned path
        // or its escape would fire trace-outside-module.
        FixtureCase{"wall_clock.cpp", "src/sim/trace.cpp", "wall-clock"},
        FixtureCase{"trace_outside_module.cpp",
                    "src/runtime/trace_outside_module.cpp",
                    "trace-outside-module"},
        FixtureCase{"pointer_key_map.cpp", "tests/pointer_key_map.cpp",
                    "pointer-key-map"},
        // unordered-iter is path-scoped: scan under src/sim/.
        FixtureCase{"unordered_iter.cpp", "src/sim/unordered_iter.cpp",
                    "unordered-iter"},
        FixtureCase{"unseeded_rng.cpp", "tests/unseeded_rng.cpp",
                    "unseeded-rng"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.rule;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(LintRules, CleanFixtureHasNoFindings) {
  auto findings = scan_file(fixture("clean.cpp"), "src/sim/clean.cpp");
  ASSERT_TRUE(findings.has_value());
  EXPECT_TRUE(findings->empty())
      << ::testing::PrintToString(rules_of(*findings));
}

TEST(LintRules, MissingFileReturnsNullopt) {
  EXPECT_FALSE(scan_file(fixture("does_not_exist.cpp"), "x.cpp"));
}

TEST(LintRules, LinesAreOneBased) {
  const auto findings =
      scan_source("src/sim/x.cpp", "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintRules, CommentsAndStringsDoNotFire) {
  const auto findings = scan_source("src/sim/x.cpp",
                                    "// std::random_device in a comment\n"
                                    "/* rand() in a block comment */\n"
                                    "const char* s = \"std::rand()\";\n");
  EXPECT_TRUE(findings.empty())
      << ::testing::PrintToString(rules_of(findings));
}

TEST(LintRules, AllowListAcceptsMultipleRules) {
  const auto findings = scan_source(
      "src/sim/x.cpp",
      "// km-lint: allow(wall-clock, random-device) -- test\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, AllowForOtherRuleDoesNotSuppress) {
  const auto findings =
      scan_source("src/sim/x.cpp",
                  "// km-lint: allow(wall-clock) -- wrong rule\n"
                  "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

TEST(LintRules, WallClockEscapeIsScopedToTheTraceModule) {
  const std::string code =
      "// km-lint: allow(wall-clock) -- timing\n"
      "auto t = std::chrono::steady_clock::now();\n";
  // Sanctioned homes: the tracing module and engine.cpp's wall_ms reads.
  EXPECT_TRUE(scan_source("src/sim/trace.cpp", code).empty());
  EXPECT_TRUE(scan_source("src/sim/trace.hpp", code).empty());
  EXPECT_TRUE(scan_source("src/sim/engine.cpp", code).empty());
  // Anywhere else the escape comment itself is the finding.
  const auto findings = scan_source("src/runtime/results.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "trace-outside-module");
  // An unescaped clock read still fires plain wall-clock, once.
  const auto bare = scan_source(
      "src/runtime/results.cpp",
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0].rule, "wall-clock");
}

TEST(LintRules, PointerKeyDetectsNestedAndConstKeys) {
  EXPECT_EQ(scan_source("x.cpp", "std::unordered_map<const Node*, int> m;\n")
                .size(),
            1u);
  EXPECT_TRUE(
      scan_source("x.cpp", "std::map<std::pair<int, int>, Node*> m;\n")
          .empty());  // pointer *values* are fine, keys are not
}

TEST(LintRules, UnorderedIterIsScopedToOrderSensitivePaths) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> counts;\n"
      "int f() { int t = 0; for (auto& kv : counts) t += kv.second; "
      "return t; }\n";
  EXPECT_EQ(scan_source("src/sim/x.cpp", code).size(), 1u);
  EXPECT_EQ(scan_source("tools/x.cpp", code).size(), 1u);
  // The algorithm kernels are order-sensitive too: their iteration feeds
  // per-link send order, which the portable golden snapshots pin.
  EXPECT_EQ(scan_source("src/core/x.cpp", code).size(), 1u);
  // Paths outside the tree (third-party, build dirs) stay unscanned.
  EXPECT_TRUE(scan_source("extern/x.cpp", code).empty());
}

TEST(LintRules, SeededEngineAndEngineTypeUsesDoNotFire) {
  EXPECT_TRUE(
      scan_source("x.cpp", "std::mt19937_64 gen(seed);\n").empty());
  EXPECT_TRUE(
      scan_source("x.cpp", "void seed(std::mt19937& gen);\n").empty());
  EXPECT_EQ(scan_source("x.cpp", "std::mt19937 gen;\n").size(), 1u);
  EXPECT_EQ(scan_source("x.cpp", "auto r = std::mt19937_64();\n").size(),
            1u);
}

#ifdef __unix__
int run_km_lint(const std::string& args) {
  const std::string cmd = std::string(KM_LINT_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LintCli, ExitCodesFollowContract) {
  EXPECT_EQ(run_km_lint("--quiet --root " KM_LINT_FIXTURE_DIR
                        " " +
                        fixture("clean.cpp")),
            0);
  EXPECT_EQ(run_km_lint("--quiet --root " KM_LINT_FIXTURE_DIR
                        " " +
                        fixture("random_device.cpp")),
            1);
  EXPECT_EQ(run_km_lint("--quiet " + fixture("no_such_file.cpp")), 2);
  EXPECT_EQ(run_km_lint("--bogus-flag"), 2);
}

TEST(LintCli, JsonReportCarriesVersionAndFindings) {
  const std::string out =
      ::testing::TempDir() + "/km_lint_report.json";
  EXPECT_EQ(run_km_lint("--quiet --json " + out + " --root " +
                        KM_LINT_FIXTURE_DIR + " " +
                        fixture("random_device.cpp")),
            1);
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"km.lint_report/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"random-device\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}
#endif  // __unix__

}  // namespace
