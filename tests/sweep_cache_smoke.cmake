# SweepCacheSmoke: a 6-cell `km_run sweep` grid over one dataset cell
# must materialize the dataset exactly once — five of the six cells are
# served by the process-wide dataset cache.  Asserted through the
# counter line the sweep prints (dataset_cache: hits=5 misses=1 ...),
# which is also the contract the ISSUE's acceptance criteria name.
#
# Invoked by CTest (see tests/CMakeLists.txt) as:
#   cmake -DKM_RUN=<km_run> -DOUT_DIR=<scratch dir> -P sweep_cache_smoke.cmake
foreach(var KM_RUN OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_cache_smoke.cmake: ${var} is not set")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

# 3 k-values x 2 B-values = 6 cells, one (spec, seed) dataset.
execute_process(
  COMMAND ${KM_RUN} sweep --workload components --dataset gnp:n=64,p=0.08
          --k 2,4,8 --B 0,4096 --seed 7 --out-dir ${OUT_DIR}
  OUTPUT_VARIABLE sweep_out
  RESULT_VARIABLE sweep_rc)
if(NOT sweep_rc EQUAL 0)
  message(FATAL_ERROR "km_run sweep failed (exit ${sweep_rc}):\n${sweep_out}")
endif()

if(NOT sweep_out MATCHES "dataset_cache: hits=5 misses=1 ")
  message(FATAL_ERROR
    "sweep did not resolve the dataset exactly once across 6 cells; "
    "expected 'dataset_cache: hits=5 misses=1' in:\n${sweep_out}")
endif()

# All six cells wrote distinct documents.
file(GLOB cells ${OUT_DIR}/*.json)
list(LENGTH cells cell_count)
if(NOT cell_count EQUAL 6)
  message(FATAL_ERROR "expected 6 result documents, found ${cell_count}")
endif()

# A two-n sweep touches two dataset cells: misses=2, the rest hits.
execute_process(
  COMMAND ${KM_RUN} sweep --workload components --dataset gnp:n=64,p=0.08
          --n 48,64 --k 2,4 --seed 7 --out-dir ${OUT_DIR}/two_n
  OUTPUT_VARIABLE sweep2_out
  RESULT_VARIABLE sweep2_rc)
if(NOT sweep2_rc EQUAL 0)
  message(FATAL_ERROR "two-n sweep failed (exit ${sweep2_rc}):\n${sweep2_out}")
endif()
if(NOT sweep2_out MATCHES "dataset_cache: hits=2 misses=2 ")
  message(FATAL_ERROR
    "two-n sweep expected 'dataset_cache: hits=2 misses=2' in:\n${sweep2_out}")
endif()
