// Integration tests: theory meets simulation.  The measured executions
// must be consistent with the General Lower Bound Theorem — no algorithm
// beats its information-cost bound — and the upper-bound algorithms must
// display the paper's superlinear-in-k scaling.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/info_cost.hpp"
#include "core/pagerank.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/lb_graphs.hpp"
#include "graph/pagerank_ref.hpp"
#include "graph/triangle_ref.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

TEST(Integration, PageRankOnGadgetRespectsLowerBound) {
  // Theorem 2: any algorithm that outputs a delta-approximate PageRank
  // on H needs Omega(n/Bk^2) rounds.  Our algorithm must be above that
  // line (it is correct), and within a polylog factor of it (Theorem 4).
  const std::size_t k = 8;
  Rng grng(1);
  PageRankLowerBoundGraph h(500, grng);  // n = 2001
  const auto B = EngineConfig::default_bandwidth(h.n());
  Engine engine(k, {.bandwidth_bits = B, .seed = 2});
  Rng prng(3);
  const auto part = VertexPartition::random(h.n(), k, prng);
  const auto res = distributed_pagerank(h.graph(), part, engine,
                                        {.eps = 0.2, .c = 8.0});
  const auto lb = pagerank_lower_bound(h.n(), k, B);
  EXPECT_GE(static_cast<double>(res.metrics.rounds), lb.rounds());
  // Sanity: Lemma 3's transcript budget at the measured round count
  // covers the information cost.
  EXPECT_GE(lb.transcript_entropy_bits(
                static_cast<double>(res.metrics.rounds)),
            lb.info_cost_bits);
}

TEST(Integration, PageRankInformationFlowCoversOutput) {
  // A machine that outputs correct PageRank values for vertices in V
  // (of graph H) it did not initially know must have received enough
  // bits: measured max_recv_bits >= IC implied by its output share.
  const std::size_t k = 8;
  Rng grng(4);
  PageRankLowerBoundGraph h(400, grng);
  const auto B = EngineConfig::default_bandwidth(h.n());
  Engine engine(k, {.bandwidth_bits = B, .seed = 5});
  Rng prng(6);
  const auto part = VertexPartition::random(h.n(), k, prng);
  const auto res = distributed_pagerank(h.graph(), part, engine,
                                        {.eps = 0.2, .c = 8.0});
  // Each machine outputs the PageRanks of its owned vertices; the owner
  // of the most V-vertices outputs >= q/k of them.
  const auto paths = known_paths_per_machine(h, part);
  std::uint64_t max_ic = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t v_owned = 0;
    for (Vertex v : part.owned(i)) {
      if (v >= 3 * h.q() && v < 4 * h.q()) ++v_owned;
    }
    const double ic = pagerank_output_information_bits(
        static_cast<double>(v_owned), static_cast<double>(paths[i]));
    max_ic = std::max(max_ic, static_cast<std::uint64_t>(ic));
  }
  EXPECT_GE(res.metrics.max_recv_bits(), max_ic);
}

TEST(Integration, TriangleRoundsRespectLowerBound) {
  const std::size_t n = 300, k = 27;
  Rng grng(7);
  const auto g = gnp(n, 0.5, grng);
  const auto B = EngineConfig::default_bandwidth(n);
  Engine engine(k, {.bandwidth_bits = B, .seed = 8});
  Rng prng(9);
  const auto part = VertexPartition::random(n, k, prng);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = distributed_triangles(g, part, engine, cfg);
  EXPECT_EQ(res.total, count_triangles(g));
  const auto lb = triangle_lower_bound_from_t(
      n, static_cast<double>(res.total), k, B);
  EXPECT_GE(static_cast<double>(res.metrics.rounds), lb.rounds());
}

TEST(Integration, TriangleInformationFlowCoversOutput) {
  // Lemma 11 empirically: the machine outputting the most triangles
  // received at least Rivin(undetermined-triangles) bits.
  const std::size_t n = 250, k = 8;
  Rng grng(10);
  const auto g = gnp(n, 0.5, grng);
  const auto B = EngineConfig::default_bandwidth(n);
  Engine engine(k, {.bandwidth_bits = B, .seed = 11});
  Rng prng(12);
  const auto part = VertexPartition::random(n, k, prng);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = distributed_triangles(g, part, engine, cfg);
  const auto t3 = local_triangles_per_machine(g, part);
  for (std::size_t i = 0; i < k; ++i) {
    const double ic = triangle_output_information_bits(
        static_cast<double>(res.per_machine_counts[i]),
        static_cast<double>(t3[i]));
    EXPECT_GE(static_cast<double>(res.metrics.recv_bits_per_machine[i]), ic)
        << "machine " << i;
  }
}

TEST(Integration, PageRankRoundsScaleSuperlinearlyInK) {
  // Theorem 4 vs [33]: rounds drop superlinearly as k grows (on a fixed
  // skew-free graph the per-link load is ~ n log n / k^2).  B is kept
  // small so the traffic term dominates the per-iteration round floor.
  const std::size_t n = 3000;
  Rng grng(13);
  const auto g = Digraph::from_undirected(gnp(n, 0.004, grng));
  std::vector<double> ks, rounds;
  for (std::size_t k : {4, 8, 16, 32}) {
    Engine engine(k, {.bandwidth_bits = 64, .seed = 14});
    Rng prng(15 + k);
    const auto part = VertexPartition::random(n, k, prng);
    const auto res =
        distributed_pagerank(g, part, engine, {.eps = 0.2, .c = 4.0});
    ks.push_back(static_cast<double>(k));
    rounds.push_back(static_cast<double>(res.metrics.rounds));
  }
  const double slope = fit_log_log_slope(ks, rounds);
  EXPECT_LT(slope, -1.2) << "rounds must fall faster than 1/k; slope="
                         << slope;
}

TEST(Integration, TriangleMessageCountRespectsCorollary2Shape) {
  // Round-optimal triangle enumeration cannot aggregate everything at
  // one machine: total bits >= k * per-machine IC.  Check the measured
  // total bits are at least the summed per-machine information costs.
  const std::size_t n = 200, k = 27;
  Rng grng(16);
  const auto g = gnp(n, 0.5, grng);
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(n),
                    .seed = 17});
  Rng prng(18);
  const auto part = VertexPartition::random(n, k, prng);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = distributed_triangles(g, part, engine, cfg);
  const auto t3 = local_triangles_per_machine(g, part);
  double total_ic = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    total_ic += triangle_output_information_bits(
        static_cast<double>(res.per_machine_counts[i]),
        static_cast<double>(t3[i]));
  }
  EXPECT_GE(static_cast<double>(res.metrics.bits), total_ic);
}

TEST(Integration, CongestedCliqueTriangleRoundsNearCubeRootBound) {
  // Corollary 1: k = n; rounds >= ~n^{1/3}/B and the algorithm should
  // land within a polylog factor above it.
  const std::size_t n = 64;
  Rng grng(19);
  const auto g = gnp(n, 0.5, grng);
  const auto B = EngineConfig::default_bandwidth(n);
  Engine engine(n, {.bandwidth_bits = B, .seed = 20});
  const auto part = VertexPartition::identity(n);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = distributed_triangles(g, part, engine, cfg);
  EXPECT_EQ(res.total, count_triangles(g));
  const auto lb = congested_clique_triangle_lower_bound(n, B);
  EXPECT_GE(static_cast<double>(res.metrics.rounds), lb.rounds());
}

TEST(Integration, RepConversionThenTrianglesStillExact) {
  // End-to-end pipeline sanity: a REP input converted to RVP knowledge
  // feeds the standard algorithm and yields the exact triangle set.
  // (The conversion result is validated structurally in its own test;
  // here we check the composed cost is accounted on the same engine.)
  const std::size_t n = 120, k = 8;
  Rng grng(21);
  const auto g = gnp(n, 0.2, grng);
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(n),
                    .seed = 22});
  Rng prng(23);
  const auto part = VertexPartition::random(n, k, prng);
  const auto res = distributed_triangles(g, part, engine, {});
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
  EXPECT_GT(res.metrics.rounds, 0u);
}

}  // namespace
}  // namespace km
