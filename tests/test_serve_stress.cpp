// km_serve end-to-end: the Unix-socket NDJSON transport under real
// concurrency, plus the Determinism-suite extension — documents served
// over the socket are identical (modulo the exempt wall-time keys) to a
// fresh in-process run AND to the checked-in golden snapshots.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <latch>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/results.hpp"
#include "serve/client.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace km {
namespace {

using serve::Request;
using serve::ScenarioService;
using serve::ServeClient;
using serve::ServeServer;
using serve::ServiceConfig;

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/km_serve_t" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string run_line(const std::string& workload, const std::string& dataset,
                     std::uint64_t k = 4, std::uint64_t seed = 7,
                     bool fresh = false) {
  JsonWriter w(0);
  w.begin_object();
  w.field("op", "run");
  w.field("workload", workload);
  w.field("dataset", dataset);
  w.field("k", k);
  w.field("seed", seed);
  if (fresh) w.field("fresh", true);
  w.end_object();
  return w.str();
}

bool meta_ok(const std::string& meta) {
  return meta.find("\"status\":\"ok\"") != std::string::npos;
}

std::string meta_source(const std::string& meta) {
  if (meta.find("\"source\":\"engine\"") != std::string::npos) return "engine";
  if (meta.find("\"source\":\"result_store\"") != std::string::npos) {
    return "result_store";
  }
  return "";
}

/// Deep equality ignoring the exempt keys (wall_ms scalar, timing
/// block) wherever they appear — the parsed-tree equivalent of the
/// golden suite's textual strip_exempt, so compact and pretty documents
/// compare directly.
bool json_equal_exempt(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.boolean == b.boolean;
    case JsonValue::Kind::kNumber: return a.number == b.number;
    case JsonValue::Kind::kString: return a.string == b.string;
    case JsonValue::Kind::kArray: {
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i) {
        if (!json_equal_exempt(a.array[i], b.array[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      const auto keep = [](const std::pair<std::string, JsonValue>& kv) {
        return kv.first != "wall_ms" && kv.first != "timing";
      };
      std::vector<const std::pair<std::string, JsonValue>*> am, bm;
      for (const auto& kv : a.object) {
        if (keep(kv)) am.push_back(&kv);
      }
      for (const auto& kv : b.object) {
        if (keep(kv)) bm.push_back(&kv);
      }
      if (am.size() != bm.size()) return false;
      // The writer is schema-stable: member order must match too.
      for (std::size_t i = 0; i < am.size(); ++i) {
        if (am[i]->first != bm[i]->first) return false;
        if (!json_equal_exempt(am[i]->second, bm[i]->second)) return false;
      }
      return true;
    }
  }
  return false;
}

JsonValue parse_or_die(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, error)) << error << "\nin: " << text;
  return doc;
}

TEST(ServeSocket, RoundTripThenByteIdenticalReplay) {
  ScenarioService service(ServiceConfig{});
  ServeServer server(service, unique_socket_path());
  server.start();
  {
    ServeClient client(server.socket_path());
    const auto first =
        client.request(run_line("components", "gnp:n=48,p=0.15"));
    ASSERT_TRUE(meta_ok(first.meta)) << first.meta;
    EXPECT_EQ(meta_source(first.meta), "engine");
    const auto second =
        client.request(run_line("components", "gnp:n=48,p=0.15"));
    ASSERT_TRUE(meta_ok(second.meta)) << second.meta;
    EXPECT_EQ(meta_source(second.meta), "result_store");
    EXPECT_EQ(first.doc, second.doc);  // byte-identical replay
    EXPECT_EQ(service.counters().runs, 1u);
  }
  server.stop();
  server.wait();
}

TEST(ServeSocket, PingStatsAndBadRequests) {
  ScenarioService service(ServiceConfig{});
  ServeServer server(service, unique_socket_path());
  server.start();
  {
    ServeClient client(server.socket_path());
    const auto ping = client.request(R"({"op":"ping"})");
    EXPECT_TRUE(meta_ok(ping.meta));
    EXPECT_EQ(ping.doc, "{}");
    const auto garbage = client.request("this is not json");
    EXPECT_FALSE(meta_ok(garbage.meta));
    // The connection survives a bad request; the next one still works.
    const auto stats = client.request(R"({"op":"stats"})");
    ASSERT_TRUE(meta_ok(stats.meta));
    const JsonValue doc = parse_or_die(stats.doc);
    EXPECT_EQ(doc.find("schema")->string, "km.serve_stats/v1");
  }
  server.stop();
  server.wait();
}

TEST(ServeSocket, ConcurrentClientsAllServedConsistently) {
  ScenarioService service(ServiceConfig{.runners = 4, .queue_depth = 64});
  ServeServer server(service, unique_socket_path());
  server.start();

  // 4 distinct scenario cells x 8 clients x 6 requests: every response
  // for a cell must carry the same document bytes, no matter which
  // client ran first or whether it was engine or replay.
  const std::vector<std::string> cells = {
      run_line("components", "gnp:n=48,p=0.15"),
      run_line("components", "gnp:n=48,p=0.15", /*k=*/8),
      run_line("triangles", "gnp:n=48,p=0.15"),
      run_line("sort", "keys:n=256"),
  };
  constexpr int kClients = 8;
  constexpr int kRequests = 6;
  std::vector<std::vector<std::string>> docs(kClients);
  std::atomic<int> failures{0};
  std::latch start(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client(server.socket_path());
      start.arrive_and_wait();
      for (int r = 0; r < kRequests; ++r) {
        const auto response =
            client.request(cells[static_cast<std::size_t>(r) % cells.size()]);
        if (!meta_ok(response.meta)) {
          failures.fetch_add(1);
          continue;
        }
        docs[static_cast<std::size_t>(c)].push_back(response.doc);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(docs[0].size(), static_cast<std::size_t>(kRequests));

  // Same cell -> same bytes, across all clients.
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    const std::string& reference = docs[0][cell];
    for (int c = 0; c < kClients; ++c) {
      for (std::size_t r = cell; r < docs[static_cast<std::size_t>(c)].size();
           r += cells.size()) {
        EXPECT_EQ(docs[static_cast<std::size_t>(c)][r], reference)
            << "cell " << cell << " client " << c;
      }
    }
  }
  // 4 distinct cells: at least one engine run each; concurrent first
  // requests for a cell may race extra runs (first writer wins in the
  // store), but every request was either run or replayed.
  const auto counts = service.counters();
  EXPECT_GE(counts.runs, 4u);
  EXPECT_EQ(counts.runs + counts.replays,
            static_cast<std::uint64_t>(kClients * kRequests));
  server.stop();
  server.wait();
}

TEST(ServeSocket, ShutdownOpStopsTheServer) {
  ScenarioService service(ServiceConfig{});
  ServeServer server(service, unique_socket_path());
  server.start();
  {
    ServeClient client(server.socket_path());
    const auto bye = client.request(R"({"op":"shutdown"})");
    EXPECT_TRUE(meta_ok(bye.meta));
  }
  server.wait();  // returns because shutdown stopped the accept loop
  EXPECT_THROW(ServeClient{server.socket_path()}, std::runtime_error);
}

TEST(ServeExecutor, ZeroDepthQueueShedsOverload) {
  ScenarioService service(ServiceConfig{.runners = 1, .queue_depth = 0});
  constexpr int kThreads = 6;
  std::atomic<int> ok{0};
  std::latch start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Request req;
      req.op = Request::Op::kRun;
      req.workload = "components";
      req.dataset = "gnp:n=256,p=0.04";
      req.params.k = 4;
      req.params.seed = 7;
      req.fresh = true;  // force every accepted request through the engine
      start.arrive_and_wait();
      if (service.handle(req).ok) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  const auto c = service.counters();
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(static_cast<std::uint64_t>(ok.load()) + c.shed, kThreads);
  // Shed requests answer with the queue-full error, not silence.
  EXPECT_EQ(c.errors, c.shed);
}

// ---- Determinism extension: served documents vs fresh runs vs goldens ----

TEST(ServeDeterminism, ServedDocMatchesFreshRunModuloExemptKeys) {
  ScenarioService service(ServiceConfig{});
  Request req;
  req.op = Request::Op::kRun;
  req.workload = "mst";
  req.dataset = "gnp:n=64,p=0.08,maxw=1000";
  req.params.k = 4;
  req.params.seed = 7;
  const auto served = service.handle(req);
  ASSERT_TRUE(served.ok) << served.error;

  const Workload* workload = WorkloadRegistry::instance().find("mst");
  ASSERT_NE(workload, nullptr);
  RunParams params;
  params.k = 4;
  params.seed = 7;
  const Dataset dataset =
      load_dataset(req.dataset, workload->input_kind(), params.seed);
  const std::string fresh =
      run_result_to_json(run_workload(*workload, dataset, params), 0);

  EXPECT_TRUE(json_equal_exempt(parse_or_die(served.doc),
                                parse_or_die(fresh)))
      << "served: " << served.doc << "\nfresh: " << fresh;
}

TEST(ServeDeterminism, ServedDocsMatchGoldenSnapshots) {
  // The same cells the golden suite pins: k=4, B=0 (derived), seed=7,
  // timeline on, check on.  Every golden workload must round-trip
  // through the serving plane unchanged (modulo wall-time keys).
  const std::vector<std::pair<std::string, std::string>> cells = {
      {"components", "gnp:n=64,p=0.05"},
      {"mst", "gnp:n=64,p=0.08,maxw=1000"},
      {"pagerank", "gnp:n=64,p=0.05"},
      {"sort", "keys:n=512"},
      {"triangles", "gnp:n=48,p=0.15"},
  };
  ScenarioService service(ServiceConfig{});
  for (const auto& [workload, dataset] : cells) {
    Request req;
    req.op = Request::Op::kRun;
    req.workload = workload;
    req.dataset = dataset;
    req.params.k = 4;
    req.params.seed = 7;
    const auto served = service.handle(req);
    ASSERT_TRUE(served.ok) << workload << ": " << served.error;

    std::ifstream in(std::string(KM_GOLDEN_DIR) + "/" + workload + ".json");
    ASSERT_TRUE(in.good()) << "missing golden for " << workload;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_TRUE(json_equal_exempt(parse_or_die(served.doc),
                                  parse_or_die(golden.str())))
        << workload << " served doc diverges from golden";
  }
}

}  // namespace
}  // namespace km
