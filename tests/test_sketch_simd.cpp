// Scalar/SIMD bit-identity for the ℓ₀ sketch kernels.
//
// The runtime-dispatched kernels (core/detail/sketch_kernels.hpp) are
// only an optimization: every dispatch path must perform *identical*
// integer arithmetic, because sketches built on different machines (or
// different CPU generations) merge against each other and feed exact
// 1-sparse recovery.  A single differing bit anywhere — a cell count,
// an id-sum, a Mersenne-61 fingerprint, a row watermark — would make
// the distributed fold silently diverge from the single-machine
// reference.  This suite holds byte-identical *serialized* output as a
// property across forced dispatch paths, over add/merge/fold workloads
// shaped like the connectivity plane's real traffic.  It rides the
// `quick` label so the asan and ubsan CI tiers exercise both paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/detail/sketch_kernels.hpp"
#include "core/sketch.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace km {
namespace {

using detail::SketchDispatch;

std::vector<SketchDispatch> supported_paths() {
  std::vector<SketchDispatch> out{SketchDispatch::kScalar};
  if (detail::sketch_dispatch_supported(SketchDispatch::kAvx2)) {
    out.push_back(SketchDispatch::kAvx2);
  }
  return out;
}

/// One deterministic workload: build `parts` sketches from signed adds,
/// fold them into one accumulator, and return the serialized bytes of
/// the fold plus every part.
std::vector<std::byte> workload_bytes(const L0SketchShape& shape,
                                      std::size_t parts,
                                      std::size_t adds_per_part,
                                      std::uint64_t rng_seed) {
  Rng rng(rng_seed);
  const std::uint64_t universe =
      shape.id_bits >= 64 ? 0 : (std::uint64_t{1} << shape.id_bits);
  L0Sketch fold(shape);
  Writer w;
  for (std::size_t p = 0; p < parts; ++p) {
    L0Sketch part(shape);
    for (std::size_t i = 0; i < adds_per_part; ++i) {
      const std::uint64_t id =
          universe == 0 ? rng.next() : rng.next() % universe;
      part.add(id, (rng.next() & 1) != 0 ? +1 : -1);
    }
    part.serialize(w);
    fold.merge(part);
  }
  fold.serialize(w);
  return w.take();
}

class SketchSimd : public ::testing::Test {
 protected:
  void TearDown() override { detail::reset_sketch_dispatch(); }
};

TEST_F(SketchSimd, SerializedSketchesAreByteIdenticalAcrossDispatchPaths) {
  const std::vector<L0SketchShape> shapes = {
      {.id_bits = 20, .rows = 2, .seed = 11},   // n=1024 connectivity shape
      {.id_bits = 20, .rows = 6, .seed = 12},   // max adapted rows
      {.id_bits = 64, .rows = 3, .seed = 13},   // vbits=32 ceiling
      {.id_bits = 4, .rows = 1, .seed = 14},    // tiny universe, collisions
  };
  for (const auto& shape : shapes) {
    std::vector<std::vector<std::byte>> by_path;
    for (const SketchDispatch d : supported_paths()) {
      detail::force_sketch_dispatch(d);
      by_path.push_back(workload_bytes(shape, 8, 200, shape.seed * 97));
    }
    for (std::size_t i = 1; i < by_path.size(); ++i) {
      EXPECT_EQ(by_path[0], by_path[i])
          << "dispatch path " << i << " diverged at id_bits="
          << shape.id_bits << " rows=" << shape.rows;
    }
  }
}

TEST_F(SketchSimd, CrossPathMergeEqualsSinglePathMerge) {
  // Sketches built under one path must merge bit-identically into
  // sketches built under another — the distributed reality when
  // machines run different CPU generations.
  if (!detail::sketch_dispatch_supported(SketchDispatch::kAvx2)) {
    GTEST_SKIP() << "no second dispatch path on this CPU";
  }
  const L0SketchShape shape{.id_bits = 20, .rows = 4, .seed = 21};
  Rng rng(2121);
  std::vector<std::uint64_t> ids(512);
  for (auto& id : ids) id = rng.next() % (std::uint64_t{1} << 20);

  detail::force_sketch_dispatch(SketchDispatch::kScalar);
  L0Sketch scalar_half(shape);
  for (std::size_t i = 0; i < ids.size() / 2; ++i) {
    scalar_half.add(ids[i], i % 2 == 0 ? +1 : -1);
  }
  detail::force_sketch_dispatch(SketchDispatch::kAvx2);
  L0Sketch simd_half(shape);
  for (std::size_t i = ids.size() / 2; i < ids.size(); ++i) {
    simd_half.add(ids[i], i % 2 == 0 ? +1 : -1);
  }
  L0Sketch mixed = scalar_half;
  mixed.merge(simd_half);

  detail::force_sketch_dispatch(SketchDispatch::kScalar);
  L0Sketch reference(shape);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    reference.add(ids[i], i % 2 == 0 ? +1 : -1);
  }
  EXPECT_EQ(mixed, reference);
  Writer wm, wr;
  mixed.serialize(wm);
  reference.serialize(wr);
  EXPECT_EQ(wm.take(), wr.take());
  EXPECT_EQ(mixed.sample_all(), reference.sample_all());
}

TEST_F(SketchSimd, ExactCancellationHoldsOnEveryPath) {
  // The connectivity plane's correctness rests on internal edges
  // cancelling to exact zeros in the fold; verify the property is
  // path-independent, including the moved-past-the-watermark tail.
  for (const SketchDispatch d : supported_paths()) {
    detail::force_sketch_dispatch(d);
    const L0SketchShape shape{.id_bits = 20, .rows = 2, .seed = 31};
    L0Sketch a(shape), b(shape);
    Rng rng(3131);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t id = rng.next() % (std::uint64_t{1} << 20);
      a.add(id, +1);
      b.add(id, -1);
    }
    a.merge(b);
    EXPECT_TRUE(a.empty_whp());
    Writer w;
    a.serialize(w);
    L0Sketch fresh(shape);
    Writer wf;
    fresh.serialize(wf);
    EXPECT_EQ(w.take(), wf.take())
        << "cancelled sketch serializes differently from an empty one";
  }
}

}  // namespace
}  // namespace km
