// Cross-cutting invariant tests: properties that must hold for *every*
// distributed algorithm in the library, run against all of them on a
// shared workload.  These are the "feasibility conditions" of Section
// 1.1 (the union of machine outputs solves the problem) plus the cost
// model's conservation laws.
#include <gtest/gtest.h>

#include <numeric>

#include "core/cliques.hpp"
#include "core/mst.hpp"
#include "core/pagerank.hpp"
#include "core/sorting.hpp"
#include "core/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/pagerank_ref.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

void check_metrics_invariants(const Metrics& m, std::uint64_t bandwidth) {
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(m.send_bits_per_machine), m.bits);
  EXPECT_EQ(sum(m.recv_bits_per_machine), m.bits);
  EXPECT_EQ(m.dropped_messages, 0u);
  EXPECT_GE(m.rounds, ceil_div(m.max_link_bits_superstep, bandwidth));
  EXPECT_GE(m.bits, m.messages * Message::kHeaderBits);
  EXPECT_LE(m.rounds, m.supersteps + ceil_div(m.bits, bandwidth));
}

struct Workload {
  Graph graph;
  std::size_t k;
  std::uint64_t bandwidth;
  VertexPartition partition;
};

Workload make_workload(std::uint64_t seed, std::size_t k) {
  Rng rng(seed);
  Workload w{watts_strogatz(300, 8, 0.2, rng), k,
             EngineConfig::default_bandwidth(300), {}};
  Rng prng(seed + 1);
  w.partition = VertexPartition::random(w.graph.num_vertices(), k, prng);
  return w;
}

class InvariantSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InvariantSweep, PageRank) {
  const auto w = make_workload(1, GetParam());
  Engine engine(w.k, {.bandwidth_bits = w.bandwidth, .seed = 2});
  const auto res =
      distributed_pagerank(Digraph::from_undirected(w.graph), w.partition,
                           engine, {.eps = 0.2, .c = 8.0});
  check_metrics_invariants(res.metrics, w.bandwidth);
  // Estimates are nonnegative and total mass ~ 1 (no dangling vertices).
  double total = 0.0;
  for (double x : res.estimates) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 0.1);
}

TEST_P(InvariantSweep, Triangles) {
  const auto w = make_workload(3, GetParam());
  Engine engine(w.k, {.bandwidth_bits = w.bandwidth, .seed = 4});
  const auto res = distributed_triangles(w.graph, w.partition, engine, {});
  check_metrics_invariants(res.metrics, w.bandwidth);
  // Per-machine counts sum to the total; merged triples are unique.
  std::uint64_t sum = 0;
  for (auto c : res.per_machine_counts) sum += c;
  EXPECT_EQ(sum, res.total);
  const auto merged = res.merged_sorted();
  EXPECT_EQ(merged.size(), res.total);
  EXPECT_EQ(std::adjacent_find(merged.begin(), merged.end()), merged.end());
}

TEST_P(InvariantSweep, FourCliques) {
  const auto w = make_workload(5, GetParam());
  Engine engine(w.k, {.bandwidth_bits = w.bandwidth, .seed = 6});
  const auto res = distributed_four_cliques(w.graph, w.partition, engine, {});
  check_metrics_invariants(res.metrics, w.bandwidth);
  const auto merged = res.merged_sorted();
  EXPECT_EQ(merged.size(), res.total);
  EXPECT_EQ(std::adjacent_find(merged.begin(), merged.end()), merged.end());
}

TEST_P(InvariantSweep, Mst) {
  const auto w = make_workload(7, GetParam());
  Rng wrng(8);
  const auto wg = WeightedGraph::randomize_weights(w.graph, 1000, wrng);
  Engine engine(w.k, {.bandwidth_bits = w.bandwidth, .seed = 9});
  const auto res = distributed_mst(wg, w.partition, engine);
  check_metrics_invariants(res.metrics, w.bandwidth);
  // A spanning forest has n - #components edges and no duplicates.
  EXPECT_TRUE(std::is_sorted(res.edges.begin(), res.edges.end(),
                             mst_edge_less));
  std::uint64_t total = 0;
  for (const auto& e : res.edges) total += e.weight;
  EXPECT_EQ(total, res.total_weight);
}

TEST_P(InvariantSweep, Sorting) {
  Rng rng(10);
  std::vector<std::uint64_t> keys(5000);
  for (auto& key : keys) key = rng.next();
  Engine engine(GetParam(),
                {.bandwidth_bits = EngineConfig::default_bandwidth(5000),
                 .seed = 11});
  const auto res = distributed_sample_sort(keys, engine);
  check_metrics_invariants(res.metrics,
                           EngineConfig::default_bandwidth(5000));
}

INSTANTIATE_TEST_SUITE_P(Machines, InvariantSweep,
                         ::testing::Values(2, 4, 8, 16));

class PageRankEpsDistributedSweep : public ::testing::TestWithParam<double> {
};

TEST_P(PageRankEpsDistributedSweep, TracksReferenceAcrossEps) {
  // The reset probability is the algorithm's core parameter; the
  // distributed estimate must track the exact fixpoint for any eps.
  const double eps = GetParam();
  Rng rng(12);
  const auto g = Digraph::from_undirected(gnp(250, 0.06, rng));
  const auto ref = expected_visit_pagerank(g, {.eps = eps});
  Engine engine(8, {.bandwidth_bits = EngineConfig::default_bandwidth(250),
                    .seed = 13});
  Rng prng(14);
  const auto part = VertexPartition::random(250, 8, prng);
  const auto res =
      distributed_pagerank(g, part, engine, {.eps = eps, .c = 24.0});
  double err = 0.0, mass = 0.0;
  for (std::size_t v = 0; v < ref.size(); ++v) {
    err += std::abs(res.estimates[v] - ref[v]);
    mass += ref[v];
  }
  EXPECT_LT(err / mass, 0.15) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Eps, PageRankEpsDistributedSweep,
                         ::testing::Values(0.1, 0.15, 0.25, 0.4, 0.6));

}  // namespace
}  // namespace km
