// Tests for the General Lower Bound Theorem calculators (core/bounds.hpp):
// formula shapes, scaling exponents and internal consistency.
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/mathx.hpp"

namespace km {
namespace {

TEST(Bounds, GeneralTheoremFormula) {
  const GeneralLowerBound lb{.entropy_bits = 1000.0,
                             .info_cost_bits = 500.0,
                             .bandwidth_bits = 10.0,
                             .k = 5.0,
                             .derivation = {}};
  EXPECT_DOUBLE_EQ(lb.rounds(), 10.0);  // IC/(Bk) = 500/50
  // Lemma 3: the transcript entropy budget (B+1)(k-1)T differs from BkT
  // only by the (1+1/B)(1-1/k) factor, so at T = rounds() it covers IC
  // up to that constant.
  const double factor = (1.0 + 1.0 / lb.bandwidth_bits) *
                        (1.0 - 1.0 / lb.k);
  EXPECT_NEAR(lb.transcript_entropy_bits(lb.rounds()),
              lb.info_cost_bits * factor, 1e-9);
  // And with k > B the budget strictly covers IC.
  const GeneralLowerBound wide{.entropy_bits = 1000.0,
                               .info_cost_bits = 500.0,
                               .bandwidth_bits = 10.0,
                               .k = 12.0,
                               .derivation = {}};
  EXPECT_GE(wide.transcript_entropy_bits(wide.rounds()),
            wide.info_cost_bits);
}

TEST(Bounds, PageRankBoundValues) {
  const auto lb = pagerank_lower_bound(401, 4, 16);
  EXPECT_DOUBLE_EQ(lb.entropy_bits, 100.0);      // m/4 = (n-1)/4
  EXPECT_DOUBLE_EQ(lb.info_cost_bits, 25.0);     // m/4k
  EXPECT_DOUBLE_EQ(lb.rounds(), 25.0 / (16 * 4));
  EXPECT_FALSE(lb.derivation.empty());
}

TEST(Bounds, PageRankScalesAsNOverK2) {
  // Fixed n, sweep k: rounds ~ k^{-2}.
  std::vector<double> ks, rounds;
  for (std::size_t k : {4, 8, 16, 32, 64}) {
    ks.push_back(static_cast<double>(k));
    rounds.push_back(pagerank_lower_bound(100001, k, 64).rounds());
  }
  EXPECT_NEAR(fit_log_log_slope(ks, rounds), -2.0, 1e-9);
  // Fixed k, sweep n: rounds ~ n.
  std::vector<double> ns, rounds_n;
  for (std::size_t n : {1001, 2001, 4001, 8001}) {
    ns.push_back(static_cast<double>(n));
    rounds_n.push_back(pagerank_lower_bound(n, 8, 64).rounds());
  }
  EXPECT_NEAR(fit_log_log_slope(ns, rounds_n), 1.0, 1e-2);
}

TEST(Bounds, TriangleScalesAsK53) {
  std::vector<double> ks, rounds;
  for (std::size_t k : {8, 27, 64, 125, 216}) {
    ks.push_back(static_cast<double>(k));
    rounds.push_back(triangle_lower_bound(3000, k, 64).rounds());
  }
  EXPECT_NEAR(fit_log_log_slope(ks, rounds), -5.0 / 3.0, 1e-6);
}

TEST(Bounds, TriangleScalesAsN2) {
  std::vector<double> ns, rounds;
  for (std::size_t n : {1000, 2000, 4000, 8000}) {
    ns.push_back(static_cast<double>(n));
    rounds.push_back(triangle_lower_bound(n, 27, 64).rounds());
  }
  EXPECT_NEAR(fit_log_log_slope(ns, rounds), 2.0, 0.02);
}

TEST(Bounds, TriangleFromTMatchesDefaultAtGnpHalf) {
  const std::size_t n = 2000, k = 27;
  const double t = binomial_coeff(n, 3) / 8.0;
  const auto a = triangle_lower_bound(n, k, 64);
  const auto b = triangle_lower_bound_from_t(n, t, k, 64);
  EXPECT_DOUBLE_EQ(a.rounds(), b.rounds());
}

TEST(Bounds, TriangleInfoCostIsRivinOfTOverK) {
  const std::size_t n = 1000, k = 8;
  const double t = binomial_coeff(n, 3) / 8.0;
  const auto lb = triangle_lower_bound_from_t(n, t, k, 64);
  EXPECT_DOUBLE_EQ(lb.info_cost_bits, min_edges_for_triangles(t / k));
}

TEST(Bounds, CongestedCliqueIsCubeRoot) {
  // Corollary 1: with k=n rounds ~ n^{1/3}/B.
  std::vector<double> ns, rounds;
  for (std::size_t n : {1000, 8000, 64000}) {
    ns.push_back(static_cast<double>(n));
    rounds.push_back(congested_clique_triangle_lower_bound(n, 1).rounds());
  }
  EXPECT_NEAR(fit_log_log_slope(ns, rounds), 1.0 / 3.0, 0.01);
}

TEST(Bounds, MessageLowerBoundScalesAsK13) {
  std::vector<double> ks, msgs;
  for (std::size_t k : {8, 64, 512}) {
    ks.push_back(static_cast<double>(k));
    msgs.push_back(triangle_message_lower_bound(1000, k));
  }
  EXPECT_NEAR(fit_log_log_slope(ks, msgs), 1.0 / 3.0, 1e-9);
}

TEST(Bounds, SortingAndMstScaleAsNOverK2) {
  for (auto* fn : {&sorting_lower_bound, &mst_lower_bound}) {
    std::vector<double> ks, rounds;
    for (std::size_t k : {4, 16, 64}) {
      ks.push_back(static_cast<double>(k));
      rounds.push_back((*fn)(100000, k, 64).rounds());
    }
    EXPECT_NEAR(fit_log_log_slope(ks, rounds), -2.0, 1e-9);
  }
}

TEST(Bounds, InfoCostNeverExceedsEntropy) {
  // IC <= H[Z] is required by the theorem (used in its proof).
  for (std::size_t n : {101, 1001, 10001}) {
    for (std::size_t k : {4, 8, 64}) {
      EXPECT_LE(pagerank_lower_bound(n, k, 64).info_cost_bits,
                pagerank_lower_bound(n, k, 64).entropy_bits);
      EXPECT_LE(triangle_lower_bound(n, k, 64).info_cost_bits,
                triangle_lower_bound(n, k, 64).entropy_bits);
      EXPECT_LE(sorting_lower_bound(n, k, 64).info_cost_bits,
                sorting_lower_bound(n, k, 64).entropy_bits);
    }
  }
}

TEST(Bounds, UpperBoundsDominateLowerBounds) {
  // The paper's upper and lower bounds match up to polylog factors; our
  // unit-constant calculators must at least satisfy UB >= LB.
  for (std::size_t k : {4, 8, 16, 64}) {
    const std::size_t n = 10001;
    EXPECT_GE(pagerank_upper_bound_rounds(n, k, 64),
              pagerank_lower_bound(n, k, 64).rounds());
    const std::size_t m = n * (n - 1) / 4;  // G(n,1/2)
    EXPECT_GE(triangle_upper_bound_rounds(n, m, k, 64),
              triangle_lower_bound(n, k, 64).rounds());
  }
}

TEST(Bounds, UpperBoundGapIsPolylog) {
  // UB/LB should grow slower than any fixed power of n (polylog check:
  // the ratio at n=10^6 vs n=10^3 is far below the n-ratio itself).
  const double gap_small = pagerank_upper_bound_rounds(1001, 8, 64) /
                           pagerank_lower_bound(1001, 8, 64).rounds();
  const double gap_large = pagerank_upper_bound_rounds(1000001, 8, 64) /
                           pagerank_lower_bound(1000001, 8, 64).rounds();
  EXPECT_LT(gap_large / gap_small, 10.0);
}

TEST(Bounds, MoreBandwidthLowersBound) {
  EXPECT_GT(pagerank_lower_bound(10001, 8, 16).rounds(),
            pagerank_lower_bound(10001, 8, 256).rounds());
  EXPECT_GT(triangle_lower_bound(1000, 8, 16).rounds(),
            triangle_lower_bound(1000, 8, 256).rounds());
}

}  // namespace
}  // namespace km
