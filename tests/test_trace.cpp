// Tests for the superstep tracing plane (sim/trace.hpp): span shape and
// nesting on a known program, the timing summary, link-matrix vs
// accounting cross-checks, export validation via the km_trace_check
// library, and the central property — tracing never perturbs the
// deterministic run identity (rounds/bits/timeline/JSON byte-for-byte).
//
// Suite names start with "Trace" so the CI tsan job's suite regex picks
// them up (the span buffers' single-writer contract is exactly the kind
// of claim tsan should see exercised).
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"
#include "sim/engine.hpp"
#include "trace_check.hpp"

namespace km {
namespace {

// The known 3-superstep program from test_metrics.cpp: send to successor,
// all_gather, send to machine 0.
void known_program(MachineContext& ctx) {
  const std::size_t k = ctx.k();
  ctx.send((ctx.id() + 1) % k, 1,
           std::vector<std::byte>(ctx.id() + 1, std::byte{0xAB}));
  (void)ctx.exchange();
  (void)ctx.all_gather(ctx.id());
  ctx.send(ctx.id() == 0 ? 1 : 0, 2, std::vector<std::byte>(1, std::byte{0}));
  (void)ctx.exchange();
}

Metrics run_known(std::size_t k, bool trace, bool links,
                  std::shared_ptr<const TraceSession>* session = nullptr) {
  Engine engine(k, {.bandwidth_bits = 64,
                    .seed = 7,
                    .record_timeline = true,
                    .trace = trace,
                    .trace_links = links});
  Metrics m = engine.run(known_program);
  if (session != nullptr) *session = engine.trace_session();
  return m;
}

#if KM_TRACING_ENABLED
constexpr bool kTracingBuilt = true;
#else
constexpr bool kTracingBuilt = false;
#endif

TEST(TraceSpans, OffByDefaultAndOffWhenNotRequested) {
  std::shared_ptr<const TraceSession> session;
  const Metrics m = run_known(4, /*trace=*/false, /*links=*/false, &session);
  EXPECT_EQ(session, nullptr);
  EXPECT_FALSE(m.timing.enabled);
  EXPECT_TRUE(m.timing.per_machine.empty());
}

TEST(TraceSpans, KnownProgramSpanShape) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  const std::size_t k = 4;
  std::shared_ptr<const TraceSession> session;
  const Metrics m = run_known(k, /*trace=*/true, /*links=*/false, &session);
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(m.supersteps, 3u);
  EXPECT_EQ(session->k(), k);

  for (std::size_t id = 0; id < k; ++id) {
    const std::vector<TraceSpan>& spans = session->machine(id).spans();
    // Exactly four spans per (machine, superstep), in phase order.
    ASSERT_EQ(spans.size(), 4 * m.supersteps) << "machine " << id;
    for (std::uint64_t s = 0; s < m.supersteps; ++s) {
      const TraceSpan& compute = spans[4 * s + 0];
      const TraceSpan& send = spans[4 * s + 1];
      const TraceSpan& barrier = spans[4 * s + 2];
      const TraceSpan& deliver = spans[4 * s + 3];
      for (const TraceSpan* span : {&compute, &send, &barrier, &deliver}) {
        EXPECT_EQ(span->superstep, s) << "machine " << id;
        EXPECT_LE(span->begin_ns, span->end_ns) << "machine " << id;
      }
      EXPECT_EQ(compute.phase, TracePhase::kCompute);
      EXPECT_EQ(send.phase, TracePhase::kSend);
      EXPECT_EQ(barrier.phase, TracePhase::kBarrierWait);
      EXPECT_EQ(deliver.phase, TracePhase::kDeliver);
      // send nests inside compute; compute/barrier/deliver tile the
      // machine's wall time without gaps.
      EXPECT_GE(send.begin_ns, compute.begin_ns);
      EXPECT_LE(send.end_ns, compute.end_ns);
      EXPECT_EQ(barrier.begin_ns, compute.end_ns);
      EXPECT_EQ(deliver.begin_ns, barrier.end_ns);
      if (s + 1 < m.supersteps) {
        EXPECT_EQ(spans[4 * (s + 1)].begin_ns, deliver.end_ns);
      }
    }
  }
}

TEST(TraceSpans, TimingSummaryCoversEveryMachine) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  const std::size_t k = 5;
  const Metrics m = run_known(k, /*trace=*/true, /*links=*/false);
  ASSERT_TRUE(m.timing.enabled);
  ASSERT_EQ(m.timing.per_machine.size(), k);
  for (std::size_t id = 0; id < k; ++id) {
    const MachinePhaseMs& pm = m.timing.per_machine[id];
    EXPECT_EQ(pm.machine, id);
    EXPECT_GE(pm.compute_ms, 0.0);
    EXPECT_GE(pm.send_ms, 0.0);
    EXPECT_GE(pm.barrier_wait_ms, 0.0);
    EXPECT_GE(pm.deliver_ms, 0.0);
    // The four phases tile the machine thread's traced interval, which
    // the engine's wall_ms (thread spawn to join) strictly contains.
    // Loose slack absorbs clock granularity on coarse-tick hosts.
    const double sum =
        pm.compute_ms + pm.send_ms + pm.barrier_wait_ms + pm.deliver_ms;
    EXPECT_LE(sum, m.wall_ms + 5.0) << "machine " << id;
  }
  EXPECT_GE(m.timing.barrier_wait_max_ms, m.timing.barrier_wait_mean_ms);
  if (m.timing.barrier_wait_mean_ms > 0.0) {
    EXPECT_GE(m.timing.barrier_wait_skew, 1.0);
  } else {
    EXPECT_EQ(m.timing.barrier_wait_skew, 0.0);
  }
}

TEST(TraceSpans, CounterSamplesMatchTimeline) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  std::shared_ptr<const TraceSession> session;
  const Metrics m = run_known(4, /*trace=*/true, /*links=*/false, &session);
  ASSERT_NE(session, nullptr);
  // Post-join quiescence: Engine::run returned, so no fold is running and
  // this (single-threaded) test holds the fold-phase role.
  session->fold_gate.assert_held();
  const std::vector<TraceCounterSample>& samples = session->counters();
  ASSERT_EQ(samples.size(), m.timeline.size());
  for (std::size_t s = 0; s < samples.size(); ++s) {
    EXPECT_EQ(samples[s].superstep, m.timeline[s].superstep);
    EXPECT_EQ(samples[s].rounds, m.timeline[s].rounds);
    EXPECT_EQ(samples[s].messages, m.timeline[s].messages);
    EXPECT_EQ(samples[s].bits, m.timeline[s].bits);
    EXPECT_EQ(samples[s].max_link_bits, m.timeline[s].max_link_bits);
    if (s > 0) {
      EXPECT_GE(samples[s].at_ns, samples[s - 1].at_ns);
    }
  }
}

TEST(TraceLinks, MatricesCrossCheckTheAccounting) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  const std::size_t k = 4;
  std::shared_ptr<const TraceSession> session;
  const Metrics m = run_known(k, /*trace=*/true, /*links=*/true, &session);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->links_enabled());
  // Post-join quiescence (see CounterSamplesMatchTimeline).
  session->fold_gate.assert_held();

  std::vector<std::uint64_t> row_totals(k, 0);
  std::uint64_t total_bits = 0;
  std::uint64_t prev_superstep = 0;
  bool first = true;
  for (const LinkLoadMatrix& matrix : session->link_matrices()) {
    ASSERT_EQ(matrix.bits.size(), k * k);
    ASSERT_LT(matrix.superstep, m.timeline.size());
    if (!first) {
      EXPECT_GT(matrix.superstep, prev_superstep);
    }
    first = false;
    prev_superstep = matrix.superstep;

    std::uint64_t matrix_bits = 0;
    std::uint64_t matrix_max = 0;
    for (std::size_t src = 0; src < k; ++src) {
      EXPECT_EQ(matrix.bits[src * k + src], 0u)
          << "machine " << src << " messaged itself";
      for (std::size_t dst = 0; dst < k; ++dst) {
        const std::uint64_t cell = matrix.bits[src * k + dst];
        matrix_bits += cell;
        matrix_max = std::max(matrix_max, cell);
        row_totals[src] += cell;
      }
    }
    // Each matrix must reproduce its superstep's accounted totals.
    EXPECT_EQ(matrix_bits, m.timeline[matrix.superstep].bits);
    EXPECT_EQ(matrix_max, m.timeline[matrix.superstep].max_link_bits);
    total_bits += matrix_bits;
  }
  // Traffic-free supersteps have no matrix, so summing over matrices
  // recovers the run totals exactly.
  EXPECT_EQ(total_bits, m.bits);
  ASSERT_EQ(m.send_bits_per_machine.size(), k);
  for (std::size_t src = 0; src < k; ++src) {
    EXPECT_EQ(row_totals[src], m.send_bits_per_machine[src])
        << "machine " << src;
  }
}

TEST(TraceExport, ChromeTraceValidatesInProcess) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  const std::size_t k = 4;
  std::shared_ptr<const TraceSession> session;
  const Metrics m = run_known(k, /*trace=*/true, /*links=*/false, &session);
  ASSERT_NE(session, nullptr);

  const std::string json = session->chrome_trace_json("known_program");
  trace_check::JsonValue doc;
  std::string error;
  ASSERT_TRUE(trace_check::parse_json(json, doc, error)) << error;
  const trace_check::CheckResult result =
      trace_check::check_chrome_trace(doc, k);
  EXPECT_TRUE(result.ok()) << ::testing::PrintToString(result.errors);
  EXPECT_EQ(result.machines, k);
  EXPECT_EQ(result.span_events, k * m.supersteps * 4);
  // 6 ph "C" events per counter sample (4 scalars + 2 pool pairs).
  EXPECT_EQ(result.counter_events, m.supersteps * 6);
}

TEST(TraceExport, LinkTraceValidatesInProcess) {
  if (!kTracingBuilt) GTEST_SKIP() << "built with KM_DISABLE_TRACING";
  const std::size_t k = 4;
  std::shared_ptr<const TraceSession> session;
  run_known(k, /*trace=*/true, /*links=*/true, &session);
  ASSERT_NE(session, nullptr);

  const std::string json = session->link_matrix_json();
  trace_check::JsonValue doc;
  std::string error;
  ASSERT_TRUE(trace_check::parse_json(json, doc, error)) << error;
  const trace_check::CheckResult result =
      trace_check::check_link_trace(doc, k);
  EXPECT_TRUE(result.ok()) << ::testing::PrintToString(result.errors);
  EXPECT_EQ(result.machines, k);
  // Post-join quiescence (see CounterSamplesMatchTimeline).
  session->fold_gate.assert_held();
  EXPECT_EQ(result.matrices, session->link_matrices().size());
}

// ---------------------------------------------------------------------
// The central property: tracing is observation only.  For every
// registered workload, a traced run (spans + counters + link matrices)
// must produce the same km.run_result/v1 document as an untraced run,
// byte for byte, once the documented exempt keys (wall_ms, timing —
// the same set tests/test_golden_metrics.cpp strips) are removed.

/// Small datasets, one per workload — every registered workload must
/// have an entry (asserted in the test) so a new workload cannot dodge
/// the tracing-neutrality property.
const std::map<std::string, std::string>& property_datasets() {
  static const std::map<std::string, std::string> specs = {
      {"cliques4", "gnp:n=48,p=0.15"},
      {"components", "gnp:n=64,p=0.05"},
      {"connectivity", "gnp:n=64,p=0.05"},
      {"connectivity_baseline", "gnp:n=64,p=0.05"},
      {"mst", "gnp:n=64,p=0.08,maxw=1000"},
      {"mst_sketch", "gnp:n=48,p=0.08,maxw=1000"},
      {"pagerank", "gnp:n=64,p=0.05"},
      {"pagerank_baseline", "gnp:n=64,p=0.05"},
      {"sort", "keys:n=512"},
      {"triangles", "gnp:n=48,p=0.15"},
      {"triangles_baseline", "gnp:n=48,p=0.15"},
  };
  return specs;
}

/// Drops lines carrying an exempt key; when the exempt value opens an
/// object/array, the whole block goes (brace/bracket depth tracking) —
/// mirror of the golden suite's strip_exempt.
std::vector<std::string> strip_exempt(const std::string& text) {
  static const std::vector<std::string> keys = {"\"wall_ms\":",
                                                "\"timing\":"};
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  int depth = 0;
  while (std::getline(in, line)) {
    if (depth > 0) {  // inside an exempt block
      for (char c : line) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      continue;
    }
    bool exempt = false;
    for (const std::string& key : keys) {
      const std::size_t pos = line.find(key);
      if (pos == std::string::npos) continue;
      exempt = true;
      for (char c : line.substr(pos)) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      break;
    }
    if (!exempt) lines.push_back(line);
  }
  return lines;
}

RunResult run_once(const Workload& workload, const Dataset& dataset,
                   bool trace) {
  RunParams params;
  params.k = 4;
  params.bandwidth_bits = 0;  // paper default B = Theta(log^2 n)
  params.seed = 7;
  params.record_timeline = true;
  params.check = true;
  params.trace = trace;
  params.trace_links = trace;
  return run_workload(workload, dataset, params);
}

TEST(TraceProperty, TracingNeverPerturbsAnyWorkload) {
  for (const Workload* workload : WorkloadRegistry::instance().list()) {
    ASSERT_TRUE(
        property_datasets().contains(std::string(workload->name())))
        << "workload '" << workload->name()
        << "' has no dataset entry in test_trace.cpp — add one so the "
           "tracing-neutrality property covers it";
  }
  for (const auto& [name, spec] : property_datasets()) {
    const Workload* workload = WorkloadRegistry::instance().find(name);
    ASSERT_NE(workload, nullptr) << name;
    const Dataset dataset = load_dataset(spec, workload->input_kind(), 7);

    const RunResult off = run_once(*workload, dataset, /*trace=*/false);
    const RunResult on = run_once(*workload, dataset, /*trace=*/true);

    EXPECT_EQ(off.trace, nullptr) << name;
    if (kTracingBuilt) {
      ASSERT_NE(on.trace, nullptr) << name;
      EXPECT_TRUE(on.metrics.timing.enabled) << name;
    }

    // The deterministic run identity, field by field...
    EXPECT_EQ(on.metrics.rounds, off.metrics.rounds) << name;
    EXPECT_EQ(on.metrics.supersteps, off.metrics.supersteps) << name;
    EXPECT_EQ(on.metrics.messages, off.metrics.messages) << name;
    EXPECT_EQ(on.metrics.bits, off.metrics.bits) << name;
    EXPECT_EQ(on.metrics.max_link_bits_superstep,
              off.metrics.max_link_bits_superstep)
        << name;
    EXPECT_EQ(on.metrics.dropped_messages, off.metrics.dropped_messages)
        << name;
    EXPECT_EQ(on.metrics.send_bits_per_machine,
              off.metrics.send_bits_per_machine)
        << name;
    EXPECT_EQ(on.metrics.recv_bits_per_machine,
              off.metrics.recv_bits_per_machine)
        << name;
    EXPECT_EQ(on.metrics.timeline, off.metrics.timeline) << name;
    EXPECT_EQ(on.check.ok, off.check.ok) << name;

    // ...and the whole serialized document, byte for byte modulo the
    // documented exempt keys.
    EXPECT_EQ(strip_exempt(run_result_to_json(on)),
              strip_exempt(run_result_to_json(off)))
        << name;
  }
}

}  // namespace
}  // namespace km
