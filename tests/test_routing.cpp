// Tests for routing strategies (sim/routing.hpp): correctness of direct
// and Valiant two-hop delivery, and the Lemma 13 congestion behaviour.
#include "sim/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

namespace km {
namespace {

Message make_msg(std::uint32_t dst, std::uint64_t value,
                 std::uint16_t tag = 1) {
  Message m;
  m.dst = dst;
  m.tag = tag;
  Writer w;
  w.put_varint(value);
  m.payload = w.take();
  return m;
}

std::uint64_t value_of(const Message& m) {
  Reader r(m.payload);
  return r.get_varint();
}

TEST(Routing, DirectDeliversEverything) {
  constexpr std::size_t kMachines = 5;
  Engine engine(kMachines, {.bandwidth_bits = 4096, .seed = 1});
  std::vector<std::multiset<std::uint64_t>> got(kMachines);
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    for (std::size_t dst = 0; dst < kMachines; ++dst) {
      out.push_back(make_msg(static_cast<std::uint32_t>(dst),
                             ctx.id() * 100 + dst));
    }
    for (const auto& m : route_direct(ctx, std::move(out))) {
      got[ctx.id()].insert(value_of(m));
    }
  });
  for (std::size_t dst = 0; dst < kMachines; ++dst) {
    ASSERT_EQ(got[dst].size(), kMachines);  // one from each (incl. self)
    for (std::size_t src = 0; src < kMachines; ++src) {
      EXPECT_TRUE(got[dst].count(src * 100 + dst)) << src << "->" << dst;
    }
  }
}

TEST(Routing, TwoHopDeliversEverything) {
  constexpr std::size_t kMachines = 6;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 7});
  std::vector<std::multiset<std::uint64_t>> got(kMachines);
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    for (int i = 0; i < 20; ++i) {
      const auto dst =
          static_cast<std::uint32_t>(ctx.rng().below(kMachines));
      out.push_back(make_msg(dst, ctx.id() * 1000 + i));
    }
    for (const auto& m :
         route_via_random_intermediate(ctx, std::move(out))) {
      got[ctx.id()].insert(value_of(m));
    }
  });
  std::size_t total = 0;
  for (const auto& s : got) total += s.size();
  EXPECT_EQ(total, kMachines * 20);
}

TEST(Routing, TwoHopPreservesTagAndPayload) {
  Engine engine(3, {.bandwidth_bits = 4096, .seed = 2});
  std::atomic<int> checked{0};
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    if (ctx.id() == 0) out.push_back(make_msg(2, 12345, 42));
    const auto in = route_via_random_intermediate(ctx, std::move(out));
    if (ctx.id() == 2) {
      ASSERT_EQ(in.size(), 1u);
      EXPECT_EQ(in[0].tag, 42u);
      EXPECT_EQ(value_of(in[0]), 12345u);
      ++checked;
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
  EXPECT_EQ(checked.load(), 1);
}

TEST(Routing, TwoHopPreservesTrueSource) {
  // Regression: the relay used to stamp its own id into src on hop 2
  // (and the final decode left src = 0).  The envelope now carries the
  // origin, so every delivered message must report its true sender —
  // across all three internal paths (via == dst, via == self, genuine
  // two-hop).  Encoding the sender in the payload gives the ground truth.
  constexpr std::size_t kMachines = 8;
  constexpr std::uint64_t kPerPair = 8;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 31});
  std::atomic<std::uint64_t> delivered{0};
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    for (std::size_t dst = 0; dst < kMachines; ++dst) {
      for (std::uint64_t i = 0; i < kPerPair; ++i) {
        out.push_back(make_msg(static_cast<std::uint32_t>(dst),
                               ctx.id() * 1000 + dst));
      }
    }
    for (const auto& m : route_via_random_intermediate(ctx, std::move(out))) {
      const std::uint64_t true_src = value_of(m) / 1000;
      const std::uint64_t true_dst = value_of(m) % 1000;
      EXPECT_EQ(m.src, true_src) << "relay id leaked into src";
      EXPECT_EQ(true_dst, ctx.id()) << "message delivered to wrong machine";
      ++delivered;
    }
  });
  EXPECT_EQ(delivered.load(), kMachines * kMachines * kPerPair);
}

TEST(Routing, DirectPreservesSourceOnLocalMessages) {
  Engine engine(3, {.bandwidth_bits = 1 << 12, .seed = 32});
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    out.push_back(make_msg(static_cast<std::uint32_t>(ctx.id()), 1));
    const auto in = route_direct(ctx, std::move(out));
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(in[0].src, ctx.id());
  });
}

TEST(Routing, TwoHopSmoothsSkewedDestinations) {
  // All messages from machine 0 target machine 1.  Direct routing puts
  // them on one link; two-hop spreads each hop over k links, so the
  // direct round count must exceed the two-hop count for large batches.
  constexpr std::size_t kMachines = 16;
  constexpr int kBatch = 512;
  const EngineConfig cfg{.bandwidth_bits = 64, .seed = 3};

  auto run = [&](auto router) {
    Engine engine(kMachines, cfg);
    return engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      if (ctx.id() == 0) {
        for (int i = 0; i < kBatch; ++i) out.push_back(make_msg(1, i));
      }
      router(ctx, std::move(out));
    });
  };
  const auto direct = run([](MachineContext& ctx, std::vector<Message> m) {
    return route_direct(ctx, std::move(m));
  });
  const auto twohop = run([](MachineContext& ctx, std::vector<Message> m) {
    return route_via_random_intermediate(ctx, std::move(m));
  });
  EXPECT_GT(direct.rounds, 2 * twohop.rounds)
      << "direct=" << direct.rounds << " twohop=" << twohop.rounds;
}

TEST(Routing, RandomDestinationCongestionMatchesLemma13) {
  // Lemma 13: x messages per machine with uniform destinations are
  // delivered in O((x log x)/k) rounds, i.e. per-link load concentrates
  // near x/k.  Check max link load <= 4x/k for a comfortable margin.
  constexpr std::size_t kMachines = 16;
  constexpr std::uint64_t x = 2048;
  Engine engine(kMachines, {.bandwidth_bits = 64, .seed = 4});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    for (std::uint64_t i = 0; i < x; ++i) {
      out.push_back(make_msg(
          static_cast<std::uint32_t>(ctx.rng().below(kMachines)), i));
    }
    route_direct(ctx, std::move(out));
  });
  // Each message is 16 header + ~2 bytes varint; bound via bits.
  const double per_link_msgs =
      static_cast<double>(metrics.max_link_bits_superstep) / 40.0;
  EXPECT_LT(per_link_msgs, 4.0 * static_cast<double>(x) / kMachines);
}

std::vector<std::byte> patterned(std::size_t len, std::uint64_t seed) {
  std::vector<std::byte> bytes(len);
  for (std::size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::byte>((seed * 31 + i * 7) & 0xff);
  }
  return bytes;
}

TEST(Routing, OversizedMessageIsSplitAndReassembled) {
  // Regression: Lemma 13 assumes unit-size messages, but the router used
  // to push an arbitrarily large payload through a single random
  // intermediate, making its two links hot spots.  A payload larger than
  // the per-link budget (B/8 bytes) must now be split across multiple
  // intermediates and reassembled at the destination — the caller still
  // sees one message with the original src/tag/payload.
  constexpr std::size_t kMachines = 8;
  constexpr std::uint64_t kBandwidth = 128;  // budget: 16 bytes/link/round
  constexpr std::size_t kPayload = 200;      // splits into many chunks
  Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 21});
  const auto original = patterned(kPayload, 9);
  std::atomic<int> delivered{0};
  const auto metrics = engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    if (ctx.id() == 0) {
      Message m;
      m.dst = 5;
      m.tag = 9;
      m.payload = PayloadRef::copy_of(original);
      out.push_back(std::move(m));
    }
    const auto in = route_via_random_intermediate(ctx, std::move(out));
    if (ctx.id() == 5) {
      ASSERT_EQ(in.size(), 1u);
      EXPECT_EQ(in[0].src, 0u);
      EXPECT_EQ(in[0].tag, 9u);
      ASSERT_EQ(in[0].payload.size(), kPayload);
      EXPECT_TRUE(std::equal(original.begin(), original.end(),
                             in[0].payload.begin(), in[0].payload.end()));
      ++delivered;
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
  EXPECT_EQ(delivered.load(), 1);
  // The split must actually spread the payload: more than one network
  // message moved, and no single link ever carried the whole payload.
  EXPECT_GT(metrics.messages, 2u);
  EXPECT_LT(metrics.max_link_bits_superstep,
            Message::kHeaderBits + 8 * kPayload);
}

TEST(Routing, ManyOversizedMessagesAllPairs) {
  // Every machine sends an oversized payload to every other machine;
  // all of them must reassemble exactly, under chunk traffic from all
  // sides at once.
  constexpr std::size_t kMachines = 6;
  constexpr std::uint64_t kBandwidth = 64;  // budget: 8 bytes/link/round
  constexpr std::size_t kPayload = 41;      // many 1-byte chunks (B tiny)
  Engine engine(kMachines, {.bandwidth_bits = kBandwidth, .seed = 22});
  std::atomic<std::uint64_t> delivered{0};
  engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    for (std::size_t dst = 0; dst < kMachines; ++dst) {
      if (dst == ctx.id()) continue;
      Message m;
      m.dst = static_cast<std::uint32_t>(dst);
      m.tag = 4;
      m.payload = PayloadRef::copy_of(
          patterned(kPayload, ctx.id() * 100 + dst));
      out.push_back(std::move(m));
    }
    const auto in = route_via_random_intermediate(ctx, std::move(out));
    EXPECT_EQ(in.size(), kMachines - 1);
    for (const auto& m : in) {
      ASSERT_EQ(m.payload.size(), kPayload);
      const auto want = patterned(kPayload, m.src * 100 + ctx.id());
      EXPECT_TRUE(std::equal(want.begin(), want.end(), m.payload.begin(),
                             m.payload.end()))
          << "payload from " << m.src << " corrupted";
      ++delivered;
    }
  });
  EXPECT_EQ(delivered.load(), kMachines * (kMachines - 1));
}

TEST(Routing, OversizedSplitIsDeterministic) {
  // Chunk scatter uses the machine RNGs, so two runs with the same seed
  // must produce identical metrics.
  constexpr std::size_t kMachines = 5;
  auto run_once = [] {
    Engine engine(kMachines, {.bandwidth_bits = 64, .seed = 23});
    return engine.run([&](MachineContext& ctx) {
      std::vector<Message> out;
      Message m;
      m.dst = static_cast<std::uint32_t>((ctx.id() + 2) % kMachines);
      m.tag = 1;
      m.payload = PayloadRef::copy_of(patterned(50, ctx.id()));
      out.push_back(std::move(m));
      route_via_random_intermediate(ctx, std::move(out));
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.max_link_bits_superstep, b.max_link_bits_superstep);
}

TEST(Routing, EmptyBatchesCostNothing) {
  Engine engine(4, {.bandwidth_bits = 64, .seed = 5});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    EXPECT_TRUE(route_direct(ctx, {}).empty());
    EXPECT_TRUE(route_via_random_intermediate(ctx, {}).empty());
  });
  EXPECT_EQ(metrics.rounds, 0u);
}

TEST(Routing, SelfAddressedMessagesStayLocal) {
  Engine engine(3, {.bandwidth_bits = 64, .seed = 6});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    std::vector<Message> out;
    out.push_back(make_msg(static_cast<std::uint32_t>(ctx.id()), 7));
    const auto in = route_direct(ctx, std::move(out));
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(value_of(in[0]), 7u);
  });
  EXPECT_EQ(metrics.messages, 0u);  // never touched the network
}

}  // namespace
}  // namespace km
