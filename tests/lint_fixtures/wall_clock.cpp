// Fixture for the wall-clock rule. Never compiled; scanned by
// tests/test_lint.cpp. Expected: exactly one finding (system_clock).
#include <chrono>

long bad_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long metric_stamp() {
  // km-lint: allow(wall-clock) -- timing metric only, never in results
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
