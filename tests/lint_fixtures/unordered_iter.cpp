// Fixture for the unordered-iter rule. Never compiled; scanned by
// tests/test_lint.cpp under a src/sim/ logical path (the rule is scoped
// to the accounting/workload/results plane). Expected: one finding.
#include <unordered_map>

int bad_sum() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}

int tolerated_sum() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // km-lint: allow(unordered-iter) -- fixture demonstrating the escape
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}
