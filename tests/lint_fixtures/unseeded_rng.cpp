// Fixture for the unseeded-rng rule. Never compiled; scanned by
// tests/test_lint.cpp. Expected: exactly one finding (default-seeded
// mt19937 in bad_draw).
#include <cstdint>
#include <random>

std::uint32_t bad_draw() {
  std::mt19937 gen;
  return gen();
}

std::uint32_t seeded_draw(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return static_cast<std::uint32_t>(gen());
}

std::uint32_t tolerated_draw() {
  // km-lint: allow(unseeded-rng) -- fixture demonstrating the escape
  std::mt19937 gen;
  return gen();
}
