// Fixture for the pointer-key-map rule. Never compiled; scanned by
// tests/test_lint.cpp. Expected: exactly one finding (bad_index).
#include <cstdint>
#include <map>

struct Node {
  int id;
};

std::map<Node*, int> bad_index;

// km-lint: allow(pointer-key-map) -- fixture demonstrating the escape
std::map<const Node*, int> tolerated_index;

std::map<std::uint32_t, int> clean_index;
