// Fixture for the random-device rule. Never compiled; scanned by
// tests/test_lint.cpp. Expected: exactly one finding (the first decl).
#include <random>

unsigned bad_entropy() {
  std::random_device rd;
  return rd();
}

unsigned tolerated_entropy() {
  // km-lint: allow(random-device) -- fixture demonstrating the escape
  std::random_device rd;
  return rd();
}
