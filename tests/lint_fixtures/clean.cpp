// Fixture with no determinism violations; km_lint must report zero
// findings and exit 0 when given only this file. Never compiled.
#include <cstdint>
#include <vector>

std::uint64_t sum(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  for (const std::uint64_t x : xs) total += x;
  return total;
}
