// Fixture for the c-rand rule. Never compiled; scanned by
// tests/test_lint.cpp. Expected: exactly one finding (std::rand call).
#include <cstdlib>

int bad_roll() {
  return std::rand() % 6;
}

int tolerated_roll() {
  return rand() % 6;  // km-lint: allow(c-rand) -- fixture escape demo
}

// A project method that happens to be named `random` is not libc.
struct Partition {
  static Partition random(int n, int k);
};
Partition clean_call(int n, int k) { return Partition::random(n, k); }
