// Fixture for the trace-outside-module rule. Never compiled; scanned by
// tests/test_lint.cpp under an UNsanctioned logical path. Expected:
// exactly one finding — the allow(wall-clock) escape below suppresses the
// wall-clock rule but, outside src/sim/trace.* and src/sim/engine.cpp,
// the escape itself is the violation.
#include <chrono>

long smuggled_stamp() {
  // km-lint: allow(wall-clock) -- not honoured outside the trace module
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long doubly_escaped_stamp() {
  // km-lint: allow(wall-clock, trace-outside-module) -- fixture only
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
