// Stress and failure-injection tests for the SPMD engine: randomized
// traffic patterns must preserve the accounting invariants, and machine
// failures at arbitrary points must propagate as exceptions without
// deadlocking the barrier protocol.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/engine.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

struct TrafficCase {
  std::uint64_t seed;
  std::size_t k;
  std::uint64_t bandwidth;
};

class RandomTrafficSweep : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(RandomTrafficSweep, AccountingInvariantsHold) {
  const auto [seed, k, bandwidth] = GetParam();
  Engine engine(k, {.bandwidth_bits = bandwidth, .seed = seed});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    const std::size_t steps = 3 + ctx.rng().below(4);
    // Same per-machine RNG stream drives structure, so loop counts can
    // differ; machines synchronize via a max-reduce on step count.
    const std::uint64_t global_steps = ctx.all_reduce_max(steps);
    for (std::uint64_t s = 0; s < global_steps; ++s) {
      const std::uint64_t burst = ctx.rng().below(20);
      for (std::uint64_t i = 0; i < burst; ++i) {
        Writer w;
        const std::uint64_t len = ctx.rng().below(32);
        for (std::uint64_t b = 0; b < len; ++b) w.put_u8(0x5A);
        if (ctx.k() > 1) {
          ctx.send((ctx.id() + 1 + ctx.rng().below(ctx.k() - 1)) % ctx.k(),
                   7, w);
        }
      }
      ctx.exchange();
    }
  });
  // Conservation: per-machine send/recv bits sum to total bits.
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(metrics.send_bits_per_machine), metrics.bits);
  EXPECT_EQ(sum(metrics.recv_bits_per_machine), metrics.bits);
  EXPECT_EQ(metrics.dropped_messages, 0u);
  // Round bounds: at least the single busiest link, at most "everything
  // serialized through one link".
  EXPECT_GE(metrics.rounds,
            ceil_div(metrics.max_link_bits_superstep, bandwidth));
  EXPECT_LE(metrics.rounds,
            metrics.supersteps + ceil_div(metrics.bits, bandwidth));
  // Messages can never beat one header per message in total bits.
  EXPECT_GE(metrics.bits, metrics.messages * Message::kHeaderBits);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RandomTrafficSweep,
    ::testing::Values(TrafficCase{1, 2, 32}, TrafficCase{2, 3, 64},
                      TrafficCase{3, 5, 64}, TrafficCase{4, 8, 128},
                      TrafficCase{5, 16, 256}, TrafficCase{6, 32, 512},
                      TrafficCase{7, 8, 1}, TrafficCase{8, 64, 1024}));

class FailureInjectionSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FailureInjectionSweep, RandomCrashNeverDeadlocks) {
  // One random machine throws at a random superstep; every run must end
  // with the exception propagated (never a hang, never silent success).
  const std::uint64_t seed = GetParam();
  Rng meta(seed);
  const std::size_t k = 2 + meta.below(8);
  const std::size_t crasher = meta.below(k);
  const std::size_t crash_step = meta.below(5);
  Engine engine(k, {.bandwidth_bits = 128, .seed = seed});
  EXPECT_THROW(
      engine.run([&](MachineContext& ctx) {
        for (std::size_t s = 0; s < 8; ++s) {
          if (ctx.id() == crasher && s == crash_step) {
            throw std::runtime_error("injected fault");
          }
          Writer w;
          w.put_varint(s);
          ctx.broadcast(1, w);
          ctx.exchange();
        }
      }),
      std::runtime_error);
}

TEST_P(FailureInjectionSweep, CrashDuringCollectiveNeverDeadlocks) {
  const std::uint64_t seed = GetParam() ^ 0xFEED;
  Rng meta(seed);
  const std::size_t k = 2 + meta.below(6);
  const std::size_t crasher = meta.below(k);
  Engine engine(k, {.bandwidth_bits = 128, .seed = seed});
  EXPECT_THROW(
      engine.run([&](MachineContext& ctx) {
        for (std::size_t s = 0; s < 5; ++s) {
          if (ctx.id() == crasher && s == 2) {
            throw std::logic_error("injected fault in collective loop");
          }
          ctx.all_reduce_sum(ctx.id());
        }
      }),
      std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionSweep,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17));

TEST(EngineStress, EngineIsReusableAcrossRuns) {
  Engine engine(4, {.bandwidth_bits = 64, .seed = 9});
  for (int run = 0; run < 5; ++run) {
    const auto metrics = engine.run([&](MachineContext& ctx) {
      Writer w;
      w.put_varint(run);
      ctx.broadcast(1, w);
      ctx.exchange();
    });
    EXPECT_EQ(metrics.messages, 12u) << "run " << run;
    EXPECT_EQ(metrics.rounds, 1u);
  }
}

TEST(EngineStress, ReuseAfterFailureWorks) {
  Engine engine(3, {.bandwidth_bits = 64, .seed = 10});
  EXPECT_THROW(engine.run([](MachineContext& ctx) {
                 if (ctx.id() == 0) throw std::runtime_error("boom");
                 ctx.exchange();
               }),
               std::runtime_error);
  // The engine must be in a clean state for the next run.
  const auto metrics = engine.run([](MachineContext& ctx) {
    Writer w;
    w.put_varint(1);
    ctx.broadcast(1, w);
    ctx.exchange();
  });
  EXPECT_EQ(metrics.messages, 6u);
}

TEST(EngineStress, LargeMessagesRespectBandwidthExactly) {
  // One 10,000-byte message over a 64-bit link: exactly
  // ceil((16 + 80000)/64) rounds.
  Engine engine(2, {.bandwidth_bits = 64, .seed = 11});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) {
      Writer w;
      for (int i = 0; i < 10000; ++i) w.put_u8(1);
      ctx.send(1, 1, w);
    }
    ctx.exchange();
  });
  EXPECT_EQ(metrics.rounds, ceil_div(16 + 80000, 64));
}

TEST(EngineStress, ManySmallSuperstepsAreCheap) {
  // 1000 supersteps with one tiny message each: rounds == supersteps.
  Engine engine(2, {.bandwidth_bits = 1024, .seed = 12});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      if (ctx.id() == 0) {
        Writer w;
        w.put_u8(1);
        ctx.send(1, 1, w);
      }
      ctx.exchange();
    }
  });
  EXPECT_EQ(metrics.rounds, 1000u);
  EXPECT_EQ(metrics.supersteps, 1000u);
}

}  // namespace
}  // namespace km
