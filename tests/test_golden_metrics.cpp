// Golden-metrics snapshots: one checked-in km.run_result/v1 document per
// registered workload, produced at a fixed (dataset, k, B, seed) cell
// and diffed field-by-field against a fresh run.  An engine or
// accounting refactor that changes rounds/bits/messages — or any output
// or schema field — fails here with the exact line that moved, instead
// of slipping through as a silent behavioral change.  The documented
// exempt-key set — wall_ms (a scalar) and timing (a whole object,
// present only on traced runs) — is stripped from BOTH sides before
// diffing: those are the values that legitimately vary between
// identical-seed runs (results.hpp documents both).  Everything else,
// including new schema fields, diffs byte for byte.
//
// Regenerate intentionally with:
//   KM_UPDATE_GOLDEN=1 ./build/tests/test_golden_metrics
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"

namespace km {
namespace {

/// The pinned scenario per workload.  Every registered workload must
/// have an entry (asserted below), so adding a workload without a
/// golden snapshot is a test failure, not an oversight.
const std::map<std::string, std::string>& golden_datasets() {
  static const std::map<std::string, std::string> specs = {
      {"cliques4", "gnp:n=48,p=0.15"},
      {"components", "gnp:n=64,p=0.05"},
      {"connectivity", "gnp:n=64,p=0.05"},
      {"connectivity_baseline", "gnp:n=64,p=0.05"},
      {"mst", "gnp:n=64,p=0.08,maxw=1000"},
      {"mst_sketch", "gnp:n=48,p=0.08,maxw=1000"},
      {"pagerank", "gnp:n=64,p=0.05"},
      {"pagerank_baseline", "gnp:n=64,p=0.05"},
      {"sort", "keys:n=512"},
      {"triangles", "gnp:n=48,p=0.15"},
      {"triangles_baseline", "gnp:n=48,p=0.15"},
  };
  return specs;
}

std::string golden_path(const std::string& workload) {
  return std::string(KM_GOLDEN_DIR) + "/" + workload + ".json";
}

std::string render_current(const Workload& workload,
                           const std::string& spec) {
  RunParams params;
  params.k = 4;
  params.bandwidth_bits = 0;  // default B = Theta(log^2 n), deterministic
  params.seed = 7;
  params.record_timeline = true;
  params.check = true;
  const Dataset dataset =
      load_dataset(spec, workload.input_kind(), params.seed);
  return run_result_to_json(run_workload(workload, dataset, params)) + "\n";
}

/// The exempt-key set.  A key here is dropped from the diff wherever it
/// appears; when its value opens an object or array, the whole block is
/// dropped (brace/bracket depth tracking), so `"timing": { ... }`
/// vanishes as a unit.  Keep this list in sync with the results.hpp
/// schema doc and tests/test_trace.cpp's strip_exempt.
const std::vector<std::string>& exempt_keys() {
  static const std::vector<std::string> keys = {"\"wall_ms\":",
                                                "\"timing\":"};
  return keys;
}

/// Splits `text` into lines with exempt scalars and blocks removed.
std::vector<std::string> strip_exempt(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  int depth = 0;  // nesting depth inside an exempt block, 0 = outside
  while (std::getline(in, line)) {
    if (depth > 0) {
      for (char c : line) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      continue;
    }
    bool exempt = false;
    for (const std::string& key : exempt_keys()) {
      const std::size_t pos = line.find(key);
      if (pos == std::string::npos) continue;
      exempt = true;
      for (char c : line.substr(pos)) {  // value may open a block
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      break;
    }
    if (!exempt) lines.push_back(line);
  }
  return lines;
}

TEST(GoldenMetrics, EveryRegisteredWorkloadHasAPinnedSnapshot) {
  for (const Workload* workload : WorkloadRegistry::instance().list()) {
    EXPECT_TRUE(golden_datasets().contains(std::string(workload->name())))
        << "workload '" << workload->name()
        << "' has no golden dataset entry — add one (and its snapshot) to "
           "tests/golden/";
  }
  for (const auto& [name, spec] : golden_datasets()) {
    EXPECT_NE(WorkloadRegistry::instance().find(name), nullptr)
        << "golden entry '" << name << "' names an unregistered workload";
  }
}

TEST(GoldenMetrics, SnapshotsMatchFieldByField) {
  const bool update = std::getenv("KM_UPDATE_GOLDEN") != nullptr;
  for (const auto& [name, spec] : golden_datasets()) {
    const Workload* workload = WorkloadRegistry::instance().find(name);
    ASSERT_NE(workload, nullptr) << name;
    const std::string current = render_current(*workload, spec);

    if (update) {
      std::ofstream out(golden_path(name));
      ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
      out << current;
      continue;
    }

    std::ifstream in(golden_path(name));
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << golden_path(name)
        << " — generate with KM_UPDATE_GOLDEN=1";
    std::stringstream buffer;
    buffer << in.rdbuf();

    const std::vector<std::string> want = strip_exempt(buffer.str());
    const std::vector<std::string> got = strip_exempt(current);
    const std::size_t lines = std::min(want.size(), got.size());
    for (std::size_t i = 0; i < lines; ++i) {
      EXPECT_EQ(got[i], want[i])
          << name << ".json line " << (i + 1)
          << " (exempt keys stripped) changed — if intentional, "
             "regenerate with KM_UPDATE_GOLDEN=1";
      if (got[i] != want[i]) break;  // first divergence is the story
    }
    EXPECT_EQ(got.size(), want.size()) << name << ".json length changed";
  }
}

}  // namespace
}  // namespace km
