// Golden-metrics snapshots: one checked-in km.run_result/v1 document per
// registered workload, produced at a fixed (dataset, k, B, seed) cell
// and diffed field-by-field against a fresh run.  An engine or
// accounting refactor that changes rounds/bits/messages — or any output
// or schema field — fails here with the exact line that moved, instead
// of slipping through as a silent behavioral change.  The only field
// exempt from the diff is wall_ms (the one value that legitimately
// varies between identical-seed runs; results.hpp documents this).
//
// Regenerate intentionally with:
//   KM_UPDATE_GOLDEN=1 ./build/tests/test_golden_metrics
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"

namespace km {
namespace {

/// The pinned scenario per workload.  Every registered workload must
/// have an entry (asserted below), so adding a workload without a
/// golden snapshot is a test failure, not an oversight.
const std::map<std::string, std::string>& golden_datasets() {
  static const std::map<std::string, std::string> specs = {
      {"cliques4", "gnp:n=48,p=0.15"},
      {"components", "gnp:n=64,p=0.05"},
      {"connectivity", "gnp:n=64,p=0.05"},
      {"connectivity_baseline", "gnp:n=64,p=0.05"},
      {"mst", "gnp:n=64,p=0.08,maxw=1000"},
      {"mst_sketch", "gnp:n=48,p=0.08,maxw=1000"},
      {"pagerank", "gnp:n=64,p=0.05"},
      {"pagerank_baseline", "gnp:n=64,p=0.05"},
      {"sort", "keys:n=512"},
      {"triangles", "gnp:n=48,p=0.15"},
      {"triangles_baseline", "gnp:n=48,p=0.15"},
  };
  return specs;
}

std::string golden_path(const std::string& workload) {
  return std::string(KM_GOLDEN_DIR) + "/" + workload + ".json";
}

std::string render_current(const Workload& workload,
                           const std::string& spec) {
  RunParams params;
  params.k = 4;
  params.bandwidth_bits = 0;  // default B = Theta(log^2 n), deterministic
  params.seed = 7;
  params.record_timeline = true;
  params.check = true;
  const Dataset dataset =
      load_dataset(spec, workload.input_kind(), params.seed);
  return run_result_to_json(run_workload(workload, dataset, params)) + "\n";
}

bool is_exempt(const std::string& line) {
  return line.find("\"wall_ms\":") != std::string::npos;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(GoldenMetrics, EveryRegisteredWorkloadHasAPinnedSnapshot) {
  for (const Workload* workload : WorkloadRegistry::instance().list()) {
    EXPECT_TRUE(golden_datasets().contains(std::string(workload->name())))
        << "workload '" << workload->name()
        << "' has no golden dataset entry — add one (and its snapshot) to "
           "tests/golden/";
  }
  for (const auto& [name, spec] : golden_datasets()) {
    EXPECT_NE(WorkloadRegistry::instance().find(name), nullptr)
        << "golden entry '" << name << "' names an unregistered workload";
  }
}

TEST(GoldenMetrics, SnapshotsMatchFieldByField) {
  const bool update = std::getenv("KM_UPDATE_GOLDEN") != nullptr;
  for (const auto& [name, spec] : golden_datasets()) {
    const Workload* workload = WorkloadRegistry::instance().find(name);
    ASSERT_NE(workload, nullptr) << name;
    const std::string current = render_current(*workload, spec);

    if (update) {
      std::ofstream out(golden_path(name));
      ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
      out << current;
      continue;
    }

    std::ifstream in(golden_path(name));
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << golden_path(name)
        << " — generate with KM_UPDATE_GOLDEN=1";
    std::stringstream buffer;
    buffer << in.rdbuf();

    const std::vector<std::string> want = split_lines(buffer.str());
    const std::vector<std::string> got = split_lines(current);
    const std::size_t lines = std::min(want.size(), got.size());
    for (std::size_t i = 0; i < lines; ++i) {
      if (is_exempt(want[i]) && is_exempt(got[i])) continue;
      EXPECT_EQ(got[i], want[i])
          << name << ".json line " << (i + 1)
          << " changed — if intentional, regenerate with KM_UPDATE_GOLDEN=1";
      if (got[i] != want[i]) break;  // first divergence is the story
    }
    EXPECT_EQ(got.size(), want.size()) << name << ".json length changed";
  }
}

}  // namespace
}  // namespace km
