// Tests for the PageRank lower-bound gadget (graph/lb_graphs.hpp),
// verifying the structure of Figure 1 and the analytic PageRank values of
// Lemma 4 against the exact expected-visit solver.
#include "graph/lb_graphs.hpp"

#include <gtest/gtest.h>

#include "graph/pagerank_ref.hpp"
#include "graph/properties.hpp"

namespace km {
namespace {

TEST(LbGraph, StructureMatchesFigure1) {
  Rng rng(1);
  PageRankLowerBoundGraph h(16, rng);
  const auto& g = h.graph();
  EXPECT_EQ(h.n(), 65u);
  EXPECT_EQ(g.num_vertices(), 65u);
  EXPECT_EQ(g.num_arcs(), 64u);  // m = n-1
  for (std::size_t i = 0; i < h.q(); ++i) {
    EXPECT_TRUE(g.has_arc(h.u(i), h.t(i)));
    EXPECT_TRUE(g.has_arc(h.t(i), h.v(i)));
    EXPECT_TRUE(g.has_arc(h.v(i), h.w()));
    if (h.bits()[i] == 0) {
      EXPECT_TRUE(g.has_arc(h.u(i), h.x(i)));
      EXPECT_FALSE(g.has_arc(h.x(i), h.u(i)));
    } else {
      EXPECT_TRUE(g.has_arc(h.x(i), h.u(i)));
      EXPECT_FALSE(g.has_arc(h.u(i), h.x(i)));
    }
  }
  EXPECT_EQ(g.out_degree(h.w()), 0u);  // w is the sink
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(LbGraph, DeterministicConstructionFromBits) {
  const std::vector<std::uint8_t> bits{0, 1, 1, 0};
  PageRankLowerBoundGraph h(bits);
  EXPECT_EQ(h.q(), 4u);
  EXPECT_EQ(h.bits(), bits);
  EXPECT_TRUE(h.graph().has_arc(h.u(0), h.x(0)));
  EXPECT_TRUE(h.graph().has_arc(h.x(1), h.u(1)));
}

TEST(LbGraph, EmptyBitsThrows) {
  EXPECT_THROW(PageRankLowerBoundGraph(std::vector<std::uint8_t>{}),
               std::invalid_argument);
}

class Lemma4Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Lemma4Sweep, AnalyticValuesMatchExactSolver) {
  // Lemma 4's closed forms for PageRank(v_i) must agree with the exact
  // expected-visit fixpoint on the actual graph, for both bit values.
  const double eps = GetParam();
  const std::vector<std::uint8_t> bits{0, 1, 0, 1, 1, 0, 1, 0};
  PageRankLowerBoundGraph h(bits);
  const auto pi =
      expected_visit_pagerank(h.graph(), {.eps = eps, .tolerance = 1e-14});
  for (std::size_t i = 0; i < h.q(); ++i) {
    EXPECT_NEAR(pi[h.v(i)], h.expected_pagerank_v(eps, bits[i]), 1e-10)
        << "i=" << i << " bit=" << static_cast<int>(bits[i]);
  }
}

TEST_P(Lemma4Sweep, ConstantFactorSeparation) {
  // Lemma 4: for any eps < 1 there is a constant-factor gap between the
  // two cases, so the direction bit is decodable from PageRank(v_i).
  const double eps = GetParam();
  PageRankLowerBoundGraph h(std::vector<std::uint8_t>{0});
  const double lo = h.expected_pagerank_v(eps, 0);
  const double hi = h.expected_pagerank_v(eps, 1);
  EXPECT_GT(hi / lo, 1.1);
  EXPECT_LT(hi / lo, 2.0);
  const double thr = h.decision_threshold(eps);
  EXPECT_GT(thr, lo);
  EXPECT_LT(thr, hi);
  EXPECT_EQ(h.decode_bit(eps, lo), 0);
  EXPECT_EQ(h.decode_bit(eps, hi), 1);
}

INSTANTIATE_TEST_SUITE_P(Eps, Lemma4Sweep,
                         ::testing::Values(0.1, 0.15, 0.2, 0.3, 0.5));

TEST(LbGraph, PaperConstantsAtSmallEps) {
  // The paper states PageRank(v_i) = eps(2.5 - 2eps + eps^2/2)/n for
  // b=0 and >= eps(3 - 3eps + eps^2)/n for b=1.
  PageRankLowerBoundGraph h(std::vector<std::uint8_t>{0, 1});
  const double eps = 0.2;
  const double n = static_cast<double>(h.n());
  EXPECT_NEAR(h.expected_pagerank_v(eps, 0),
              eps * (2.5 - 2 * eps + eps * eps / 2) / n, 1e-12);
  EXPECT_GE(h.expected_pagerank_v(eps, 1),
            eps * (3 - 3 * eps + eps * eps) / n - 1e-12);
}

TEST(LbGraph, FlippingOneBitOnlyMovesThatPath) {
  std::vector<std::uint8_t> bits{0, 0, 0, 0};
  PageRankLowerBoundGraph h0(bits);
  bits[2] = 1;
  PageRankLowerBoundGraph h1(bits);
  const auto p0 = expected_visit_pagerank(h0.graph(), {.eps = 0.2});
  const auto p1 = expected_visit_pagerank(h1.graph(), {.eps = 0.2});
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) {
      EXPECT_GT(p1[h1.v(i)], p0[h0.v(i)] * 1.1);
    } else {
      EXPECT_NEAR(p1[h1.v(i)], p0[h0.v(i)], 1e-12);
    }
  }
}

TEST(LbGraph, RandomBitsAreBalanced) {
  Rng rng(99);
  PageRankLowerBoundGraph h(4000, rng);
  std::size_t ones = 0;
  for (auto b : h.bits()) ones += b;
  EXPECT_NEAR(static_cast<double>(ones), 2000.0, 6 * std::sqrt(1000.0));
}

}  // namespace
}  // namespace km
