// Tests for the REP -> RVP conversion (core/conversion.hpp, footnote 3).
#include "core/conversion.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace km {
namespace {

/// Ground truth: the RVP knowledge machine i should end with — every
/// (u, v) with u owned by machine i and v adjacent to u.
std::vector<std::vector<Edge>> expected_local_edges(
    const Graph& g, const VertexPartition& vp) {
  std::vector<std::vector<Edge>> out(vp.k());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      out[vp.home(u)].emplace_back(u, v);
    }
  }
  for (auto& edges : out) std::sort(edges.begin(), edges.end());
  return out;
}

TEST(Conversion, ReproducesRvpKnowledge) {
  Rng rng(1);
  const auto g = gnp(120, 0.1, rng);
  const std::size_t k = 8;
  Rng prng(2);
  const auto vp = VertexPartition::random(g.num_vertices(), k, prng);
  const auto ep = EdgePartition::random(g.num_edges(), k, prng);
  Engine engine(k, {.bandwidth_bits = 1024, .seed = 3});
  const auto res = convert_rep_to_rvp(g, ep, vp, engine);
  EXPECT_EQ(res.local_edges, expected_local_edges(g, vp));
}

TEST(Conversion, WorksWithHashPartitions) {
  Rng rng(4);
  const auto g = gnp(80, 0.15, rng);
  const std::size_t k = 5;
  const auto vp = VertexPartition::by_hash(g.num_vertices(), k, 99);
  const auto ep = EdgePartition::by_hash(g.num_edges(), k, 77);
  Engine engine(k, {.bandwidth_bits = 1024, .seed = 5});
  const auto res = convert_rep_to_rvp(g, ep, vp, engine);
  EXPECT_EQ(res.local_edges, expected_local_edges(g, vp));
}

class ConversionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConversionSweep, CorrectForAnyMachineCount) {
  Rng rng(6);
  const auto g = watts_strogatz(100, 4, 0.2, rng);
  const std::size_t k = GetParam();
  Rng prng(7);
  const auto vp = VertexPartition::random(g.num_vertices(), k, prng);
  const auto ep = EdgePartition::random(g.num_edges(), k, prng);
  Engine engine(k, {.bandwidth_bits = 1024, .seed = 8});
  const auto res = convert_rep_to_rvp(g, ep, vp, engine);
  EXPECT_EQ(res.local_edges, expected_local_edges(g, vp));
}

INSTANTIATE_TEST_SUITE_P(Machines, ConversionSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(Conversion, EmptyGraph) {
  const auto g = Graph::from_edges(10, {});
  const std::size_t k = 4;
  Rng prng(9);
  const auto vp = VertexPartition::random(10, k, prng);
  const auto ep = EdgePartition::random(0, k, prng);
  Engine engine(k, {.bandwidth_bits = 256, .seed = 10});
  const auto res = convert_rep_to_rvp(g, ep, vp, engine);
  for (const auto& edges : res.local_edges) EXPECT_TRUE(edges.empty());
  EXPECT_EQ(res.metrics.rounds, 0u);
}

TEST(Conversion, MismatchedKThrows) {
  Rng rng(11);
  const auto g = gnp(20, 0.2, rng);
  Rng prng(12);
  const auto vp = VertexPartition::random(20, 4, prng);
  const auto ep = EdgePartition::random(g.num_edges(), 8, prng);
  Engine engine(4, {.bandwidth_bits = 256, .seed = 13});
  EXPECT_THROW(convert_rep_to_rvp(g, ep, vp, engine), std::invalid_argument);
}

TEST(Conversion, TrafficIsBoundedByEdgeVolume) {
  // Each edge travels to at most 2 machines: messages <= 2m.
  Rng rng(14);
  const auto g = gnp(100, 0.2, rng);
  const std::size_t k = 8;
  Rng prng(15);
  const auto vp = VertexPartition::random(g.num_vertices(), k, prng);
  const auto ep = EdgePartition::random(g.num_edges(), k, prng);
  Engine engine(k, {.bandwidth_bits = 1024, .seed = 16});
  const auto res = convert_rep_to_rvp(g, ep, vp, engine);
  EXPECT_LE(res.metrics.messages, 2 * g.num_edges());
}

}  // namespace
}  // namespace km
