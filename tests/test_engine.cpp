// Tests for the SPMD engine (sim/engine.hpp): exchange semantics, round
// accounting, collectives, determinism and failure behaviour.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>

namespace km {
namespace {

TEST(Engine, SingleMachineNoCommunication) {
  Engine engine(1, {.bandwidth_bits = 64, .seed = 1});
  int ran = 0;
  const auto metrics = engine.run([&](MachineContext& ctx) {
    EXPECT_EQ(ctx.id(), 0u);
    EXPECT_EQ(ctx.k(), 1u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(metrics.rounds, 0u);
  EXPECT_EQ(metrics.messages, 0u);
}

TEST(Engine, PingPong) {
  Engine engine(2, {.bandwidth_bits = 64, .seed = 1});
  std::vector<std::uint64_t> got(2, 0);
  engine.run([&](MachineContext& ctx) {
    Writer w;
    w.put_varint(100 + ctx.id());
    ctx.send(1 - ctx.id(), 1, w);
    const auto msgs = ctx.exchange();
    ASSERT_EQ(msgs.size(), 1u);
    Reader r(msgs[0].payload);
    got[ctx.id()] = r.get_varint();
    EXPECT_EQ(msgs[0].src, 1 - ctx.id());
  });
  EXPECT_EQ(got[0], 101u);
  EXPECT_EQ(got[1], 100u);
}

TEST(Engine, RoundAccountingMatchesBandwidth) {
  // One machine sends 10 messages of 48 bits to one destination with
  // B = 48: 10 rounds.  A second superstep with one message adds 1.
  Engine engine(3, {.bandwidth_bits = 48, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) {
      for (int i = 0; i < 10; ++i) {
        Writer w;
        w.put_u32(7);  // 16 header + 32 payload = 48 bits
        ctx.send(1, 1, w);
      }
    }
    ctx.exchange();
    if (ctx.id() == 2) {
      Writer w;
      w.put_u32(9);
      ctx.send(0, 2, w);
    }
    ctx.exchange();
  });
  EXPECT_EQ(metrics.rounds, 11u);
  EXPECT_EQ(metrics.supersteps, 2u);
  EXPECT_EQ(metrics.messages, 11u);
  EXPECT_EQ(metrics.dropped_messages, 0u);
}

TEST(Engine, EmptySuperstepsChargeNoRounds) {
  Engine engine(4, {.bandwidth_bits = 64, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (int i = 0; i < 5; ++i) ctx.exchange();
  });
  EXPECT_EQ(metrics.rounds, 0u);
  EXPECT_EQ(metrics.supersteps, 5u);
}

TEST(Engine, BroadcastReachesEveryone) {
  constexpr std::size_t kMachines = 5;
  Engine engine(kMachines, {.bandwidth_bits = 1024, .seed = 1});
  std::vector<std::uint64_t> received(kMachines, 0);
  engine.run([&](MachineContext& ctx) {
    Writer w;
    w.put_varint(ctx.id());
    ctx.broadcast(3, w);
    for (const auto& msg : ctx.exchange()) {
      Reader r(msg.payload);
      received[ctx.id()] += r.get_varint() + 1;  // +1 distinguishes 0
    }
  });
  // Each machine hears every other id once: sum over others (id+1).
  for (std::size_t i = 0; i < kMachines; ++i) {
    const std::uint64_t total = kMachines * (kMachines + 1) / 2;  // ids+1
    EXPECT_EQ(received[i], total - (i + 1));
  }
}

TEST(Engine, AllGatherCollective) {
  constexpr std::size_t kMachines = 6;
  Engine engine(kMachines, {.bandwidth_bits = 1024, .seed = 1});
  engine.run([&](MachineContext& ctx) {
    const auto values = ctx.all_gather(ctx.id() * 10);
    ASSERT_EQ(values.size(), kMachines);
    for (std::size_t i = 0; i < kMachines; ++i) EXPECT_EQ(values[i], i * 10);
  });
}

TEST(Engine, AllReduceSumMaxOr) {
  Engine engine(4, {.bandwidth_bits = 1024, .seed = 1});
  engine.run([&](MachineContext& ctx) {
    EXPECT_EQ(ctx.all_reduce_sum(ctx.id() + 1), 10u);       // 1+2+3+4
    EXPECT_EQ(ctx.all_reduce_max(ctx.id() * 7), 21u);       // max
    EXPECT_TRUE(ctx.all_reduce_or(ctx.id() == 2));          // one true
    EXPECT_FALSE(ctx.all_reduce_or(false));                 // none true
  });
}

TEST(Engine, CollectiveStashesAlgorithmMessages) {
  // A message sent in the same superstep as a collective must not be
  // lost: it is stashed and returned by the next exchange().
  Engine engine(2, {.bandwidth_bits = 1024, .seed = 1});
  engine.run([&](MachineContext& ctx) {
    Writer w;
    w.put_varint(42);
    ctx.send(1 - ctx.id(), 9, w);
    EXPECT_EQ(ctx.all_reduce_sum(1), 2u);
    const auto msgs = ctx.exchange();
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0].tag, 9u);
    Reader r(msgs[0].payload);
    EXPECT_EQ(r.get_varint(), 42u);
  });
}

TEST(Engine, PerMachineRngIsIndependentAndDeterministic) {
  std::vector<std::uint64_t> draw_a(3), draw_b(3);
  for (auto* out : {&draw_a, &draw_b}) {
    Engine engine(3, {.bandwidth_bits = 64, .seed = 99});
    engine.run([&](MachineContext& ctx) {
      (*out)[ctx.id()] = ctx.rng().next();
    });
  }
  EXPECT_EQ(draw_a, draw_b);  // reproducible across runs
  EXPECT_NE(draw_a[0], draw_a[1]);
  EXPECT_NE(draw_a[1], draw_a[2]);
}

TEST(Engine, MetricsAreDeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(4, {.bandwidth_bits = 96, .seed = 5});
    return engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < 3; ++step) {
        const auto count = ctx.rng().below(5);
        for (std::uint64_t i = 0; i < count; ++i) {
          Writer w;
          w.put_varint(i);
          // Random destination, guaranteed distinct from self.
          ctx.send((ctx.id() + 1 + ctx.rng().below(3)) % 4, 1, w);
        }
        ctx.exchange();
      }
    });
  };
  const auto m1 = run_once();
  const auto m2 = run_once();
  EXPECT_EQ(m1.rounds, m2.rounds);
  EXPECT_EQ(m1.messages, m2.messages);
  EXPECT_EQ(m1.bits, m2.bits);
}

TEST(Engine, UnevenFinishDoesNotDeadlock) {
  // Machine 0 finishes immediately; the others keep exchanging.
  Engine engine(3, {.bandwidth_bits = 1024, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) return;
    for (int i = 0; i < 10; ++i) {
      if (ctx.id() == 1) {
        Writer w;
        w.put_varint(i);
        ctx.send(2, 1, w);
      }
      ctx.exchange();
    }
  });
  EXPECT_EQ(metrics.dropped_messages, 0u);
  EXPECT_GE(metrics.supersteps, 10u);
}

TEST(Engine, MessageToFinishedMachineIsDropped) {
  Engine engine(2, {.bandwidth_bits = 1024, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) return;  // finishes before the send below lands
    ctx.exchange();             // let machine 0 finish first
    Writer w;
    w.put_varint(1);
    ctx.send(0, 1, w);
    ctx.exchange();
  });
  EXPECT_EQ(metrics.dropped_messages, 1u);
}

TEST(Engine, ExceptionInMachinePropagates) {
  Engine engine(3, {.bandwidth_bits = 64, .seed = 1});
  EXPECT_THROW(engine.run([&](MachineContext& ctx) {
                 if (ctx.id() == 1) throw std::runtime_error("boom");
                 ctx.exchange();
               }),
               std::runtime_error);
}

TEST(Engine, BarrierMergeFailureDoesNotDeadlock) {
  // A throw out of the barrier merge (e.g. a failing delivery) must be
  // captured and abort the run: every parked machine thread wakes, sees
  // the stop flag, and the error propagates out of run() — no deadlock.
  EngineConfig cfg{.bandwidth_bits = 1024, .seed = 1};
  auto fired = std::make_shared<std::atomic<bool>>(false);
  cfg.barrier_fault_injection = [fired](std::uint64_t superstep) {
    if (superstep == 1 && !fired->exchange(true)) {
      throw std::runtime_error("injected delivery failure");
    }
  };
  Engine engine(4, cfg);
  try {
    engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < 5; ++step) {
        Writer w;
        w.put_varint(static_cast<std::uint64_t>(step));
        ctx.send((ctx.id() + 1) % 4, 1, w);
        ctx.exchange();
      }
    });
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected delivery failure");
  }
  // The engine must be reusable after the failed run (contexts torn down
  // by RAII, barrier state reset).
  const auto metrics = engine.run([&](MachineContext& ctx) {
    EXPECT_EQ(ctx.all_reduce_sum(1), 4u);
  });
  EXPECT_EQ(metrics.supersteps, 1u);
}

TEST(Engine, BarrierMergeFailureOnFirstSuperstep) {
  EngineConfig cfg{.bandwidth_bits = 1024, .seed = 1};
  cfg.barrier_fault_injection = [](std::uint64_t) {
    throw std::logic_error("boom at merge");
  };
  Engine engine(3, cfg);
  EXPECT_THROW(
      engine.run([&](MachineContext& ctx) { ctx.exchange(); }),
      std::logic_error);
}

TEST(Engine, SummaryIncludesDroppedMessages) {
  Engine engine(2, {.bandwidth_bits = 1024, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) return;
    ctx.exchange();  // let machine 0 finish first
    Writer w;
    w.put_varint(1);
    ctx.send(0, 1, w);
    ctx.exchange();
  });
  EXPECT_EQ(metrics.dropped_messages, 1u);
  EXPECT_NE(metrics.summary().find("dropped=1"), std::string::npos)
      << metrics.summary();
}

TEST(Engine, BroadcastPayloadIsSharedNotCopied) {
  // The zero-copy contract: one broadcast produces one buffer, observed
  // by every receiver at the same address.
  constexpr std::size_t kMachines = 4;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 12, .seed = 1});
  std::vector<const std::byte*> addr(kMachines, nullptr);
  std::vector<PayloadRef> keep(kMachines);  // keep buffers alive to compare
  engine.run([&](MachineContext& ctx) {
    Writer w;
    w.put_u64(0xfeedface);
    ctx.broadcast(1, w);
    for (auto& msg : ctx.exchange()) {
      if (msg.src == 0) {
        addr[ctx.id()] = msg.payload.data();
        keep[ctx.id()] = msg.payload;
      }
    }
  });
  for (std::size_t id = 2; id < kMachines; ++id) {
    EXPECT_EQ(addr[id], addr[1]);
    EXPECT_TRUE(keep[id].shares_buffer_with(keep[1]));
  }
}

TEST(Engine, SuperstepBudgetAborts) {
  Engine engine(2, {.bandwidth_bits = 64, .seed = 1, .max_supersteps = 10});
  EXPECT_THROW(engine.run([&](MachineContext& ctx) {
                 while (true) ctx.exchange();  // runaway loop
               }),
               std::runtime_error);
}

TEST(Engine, SelfSendThrows) {
  Engine engine(2, {.bandwidth_bits = 64, .seed = 1});
  EXPECT_THROW(engine.run([&](MachineContext& ctx) {
                 Writer w;
                 w.put_varint(0);
                 ctx.send(ctx.id(), 1, w);
                 ctx.exchange();
               }),
               std::logic_error);
}

TEST(Engine, RecvBitsTrackPerMachineInformation) {
  // Machine 2 receives everything: its recv_bits must equal total bits.
  Engine engine(3, {.bandwidth_bits = 1024, .seed = 1});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    if (ctx.id() != 2) {
      Writer w;
      w.put_u64(0xdeadbeef);
      ctx.send(2, 1, w);
    }
    ctx.exchange();
  });
  EXPECT_EQ(metrics.recv_bits_per_machine[2], metrics.bits);
  EXPECT_EQ(metrics.recv_bits_per_machine[0], 0u);
  EXPECT_EQ(metrics.max_recv_bits(), metrics.bits);
  EXPECT_EQ(metrics.send_bits_per_machine[0] +
                metrics.send_bits_per_machine[1],
            metrics.bits);
}

TEST(Engine, DefaultBandwidthIsPolylog) {
  const auto b1k = EngineConfig::default_bandwidth(1024);
  const auto b1m = EngineConfig::default_bandwidth(1 << 20);
  EXPECT_EQ(b1k, 16u * 10 * 10);
  EXPECT_EQ(b1m, 16u * 20 * 20);
}

TEST(Engine, ManyMachinesStress) {
  // 64 machines, everyone talks to everyone (one superstep).
  constexpr std::size_t kMachines = 64;
  Engine engine(kMachines, {.bandwidth_bits = 4096, .seed = 1});
  std::atomic<std::uint64_t> total{0};
  const auto metrics = engine.run([&](MachineContext& ctx) {
    Writer w;
    w.put_varint(1);
    ctx.broadcast(1, w);
    total += ctx.exchange().size();
  });
  EXPECT_EQ(total.load(), kMachines * (kMachines - 1));
  EXPECT_EQ(metrics.messages, kMachines * (kMachines - 1));
  EXPECT_EQ(metrics.rounds, 1u);
}

}  // namespace
}  // namespace km
