// Tests for the empirical information-cost module (core/info_cost.hpp):
// the concentration statements of Lemmas 5, 10 and 11 on sampled inputs.
#include "core/info_cost.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/triangle_ref.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

TEST(InfoCost, KnownPathsOnRoundRobinPartition) {
  // Deterministic check: with q=2 paths and a crafted partition we can
  // count by hand.  Vertices: x=0..1, u=2..3, t=4..5, v=6..7, w=8.
  PageRankLowerBoundGraph h(std::vector<std::uint8_t>{0, 1});
  // Machine 0 gets {x0,t0} (reveals path 0) and machine 1 gets {u1,v1}.
  std::vector<std::uint32_t> home{0, 2, 2, 1, 0, 2, 2, 1, 0};
  // Build via by-hand partition: use round_robin then override through
  // random with a fixed RNG is awkward; instead use identity-like
  // construction through by_hash? Simplest: brute-force a seed is
  // overkill — use the random() API with a crafted Rng is not possible,
  // so check the counting logic on hash partitions statistically below
  // and on the identity partition here.
  const auto ident = VertexPartition::identity(h.n());
  const auto counts = known_paths_per_machine(h, ident);
  // One vertex per machine: no machine knows a pair.
  for (auto c : counts) EXPECT_EQ(c, 0u);
}

TEST(InfoCost, KnownPathsAllOnOneMachine) {
  PageRankLowerBoundGraph h(std::vector<std::uint8_t>{0, 1, 0});
  const auto p = VertexPartition::round_robin(h.n(), 1);  // everything local
  const auto counts = known_paths_per_machine(h, p);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], h.q());  // knows every path, counted once each
}

TEST(InfoCost, Lemma5ConcentrationUnderRvp) {
  // Lemma 5: every machine knows O(n log n / k^2) paths whp.  Measure
  // the max over machines and seeds and compare against the bound with
  // a small constant.
  const std::size_t q = 5000;  // n = 20001
  const std::size_t k = 16;
  Rng grng(1);
  PageRankLowerBoundGraph h(q, grng);
  const double n = static_cast<double>(h.n());
  const double bound =
      4.0 * n * std::log2(n) / (static_cast<double>(k) * k);
  for (std::uint64_t seed : {10, 20, 30}) {
    Rng prng(seed);
    const auto part = VertexPartition::random(h.n(), k, prng);
    const auto counts = known_paths_per_machine(h, part);
    for (auto c : counts) {
      EXPECT_LT(static_cast<double>(c), bound) << "seed=" << seed;
    }
    // Expected count per machine is ~ 2q/k^2; the total should be in
    // that ballpark (both pair events have probability 1/k each).
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    const double expected_total = 2.0 * static_cast<double>(q) / k;
    EXPECT_NEAR(static_cast<double>(total), expected_total,
                6 * std::sqrt(expected_total));
  }
}

TEST(InfoCost, KnownEdgesExactOnSmallPartition) {
  // K_4 on 2 machines, round robin: vertices {0,2} vs {1,3}.
  const auto g = complete_graph(4);
  const auto p = VertexPartition::round_robin(4, 2);
  const auto counts = known_edges_per_machine(g, p);
  // Every edge has an endpoint on each machine except (0,2) and (1,3).
  // Machine 0 knows all edges incident to 0 or 2 = 5; machine 1 = 5.
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 5u);
}

TEST(InfoCost, Lemma10EdgeKnowledgeUnderRvp) {
  // Each machine initially knows ~ 2m/k edges (each edge has two chances
  // of hitting the machine); bound O(n^2 log n / k) holds with slack.
  Rng grng(2);
  const std::size_t n = 300;
  const auto g = gnp(n, 0.5, grng);
  const std::size_t k = 8;
  Rng prng(3);
  const auto part = VertexPartition::random(n, k, prng);
  const auto counts = known_edges_per_machine(g, part);
  const double m = static_cast<double>(g.num_edges());
  const double expected = 2.0 * m / k - m / (k * static_cast<double>(k));
  std::uint64_t total = 0;
  for (auto c : counts) {
    total += c;
    EXPECT_LT(static_cast<double>(c), 2.0 * expected);
    EXPECT_GT(static_cast<double>(c), 0.5 * expected);
  }
  // Sum over machines counts each edge once or twice.
  EXPECT_GE(total, g.num_edges());
  EXPECT_LE(total, 2 * g.num_edges());
}

TEST(InfoCost, LocalTrianglesExactOnTinyCases) {
  const auto g = complete_graph(3);
  // All on machine 0: it sees the single triangle.
  EXPECT_EQ(local_triangles_per_machine(
                g, VertexPartition::round_robin(3, 1))[0],
            1u);
  // One vertex per machine: nobody sees it.
  const auto counts =
      local_triangles_per_machine(g, VertexPartition::identity(3));
  for (auto c : counts) EXPECT_EQ(c, 0u);
  // Two machines: exactly one machine owns two corners.
  const auto two =
      local_triangles_per_machine(g, VertexPartition::round_robin(3, 2));
  EXPECT_EQ(two[0] + two[1], 1u);
}

TEST(InfoCost, Lemma11LocalTrianglesAreMinority) {
  // t3 = O~(n^3/k^{3/2}) vs t/k = Theta(n^3/k): locally known triangles
  // are a vanishing fraction of a machine's output share as k grows.
  Rng grng(4);
  const std::size_t n = 250;
  const auto g = gnp(n, 0.5, grng);
  const std::size_t k = 16;
  Rng prng(5);
  const auto part = VertexPartition::random(n, k, prng);
  const auto t3 = local_triangles_per_machine(g, part);
  const double t = static_cast<double>(count_triangles(g));
  std::uint64_t total_local = 0;
  for (auto c : t3) total_local += c;
  // Summed over machines: expected fraction of triangles with >= 2
  // co-located corners is ~ 3/k; far below t.
  EXPECT_LT(static_cast<double>(total_local), 6.0 * t / k);
  // Per-machine: t3 << t/k for each machine.
  for (auto c : t3) {
    EXPECT_LT(static_cast<double>(c), 0.5 * t / k);
  }
}

TEST(InfoCost, TriangleOutputInformationUsesRivin) {
  EXPECT_DOUBLE_EQ(triangle_output_information_bits(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(triangle_output_information_bits(5, 10), 0.0);
  EXPECT_DOUBLE_EQ(triangle_output_information_bits(1000, 0),
                   min_edges_for_triangles(1000));
  EXPECT_DOUBLE_EQ(triangle_output_information_bits(1000, 400),
                   min_edges_for_triangles(600));
}

TEST(InfoCost, PageRankOutputInformationIsLinear) {
  EXPECT_DOUBLE_EQ(pagerank_output_information_bits(100, 10), 90.0);
  EXPECT_DOUBLE_EQ(pagerank_output_information_bits(5, 10), 0.0);
}

}  // namespace
}  // namespace km
