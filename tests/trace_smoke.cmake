# TraceSmokeCheck: runs one traced scenario end-to-end through the km_run
# CLI and validates both exports with km_trace_check.  This is the
# integration seam the unit suite cannot cover: flag parsing, file
# writing, and the checker binary's exit-code contract, all in one go.
#
# Invoked by CTest (see tests/CMakeLists.txt) as:
#   cmake -DKM_RUN=<km_run> -DKM_TRACE_CHECK=<km_trace_check>
#         -DOUT_DIR=<scratch dir> -P trace_smoke.cmake
foreach(var KM_RUN KM_TRACE_CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_smoke.cmake: ${var} is not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})
set(trace_json ${OUT_DIR}/smoke_trace.json)
set(links_json ${OUT_DIR}/smoke_trace.links.json)

execute_process(
  COMMAND ${KM_RUN} run --workload components --dataset gnp:n=64,p=0.05
          --k 4 --seed 7 --trace ${trace_json} --trace-links
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "km_run --trace --trace-links failed (exit ${run_rc})")
endif()

execute_process(
  COMMAND ${KM_TRACE_CHECK} ${trace_json} --links ${links_json} --expect-k 4
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "km_trace_check rejected the exports (exit ${check_rc})")
endif()
