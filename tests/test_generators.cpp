// Tests for graph generators, including parameterized property sweeps
// over seeds (the lower-bound inputs are sampled from these families).
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/properties.hpp"

namespace km {
namespace {

TEST(Generators, PathGraph) {
  const auto g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CycleGraph) {
  const auto g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarGraph) {
  const auto g = star_graph(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (Vertex v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, CompleteGraph) {
  const auto g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Generators, GridGraph) {
  const auto g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnpEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45u);  // = complete graph
}

TEST(Generators, GnpDirectedEdgeCases) {
  Rng rng(2);
  EXPECT_EQ(gnp_directed(20, 0.0, rng).num_arcs(), 0u);
  EXPECT_EQ(gnp_directed(10, 1.0, rng).num_arcs(), 90u);
}

class GnpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GnpSeedSweep, EdgeCountConcentrates) {
  Rng rng(GetParam());
  const std::size_t n = 400;
  const double p = 0.1;
  const auto g = gnp(n, p, rng);
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sd);
}

TEST_P(GnpSeedSweep, DegreesConcentrate) {
  Rng rng(GetParam() ^ 0xabc);
  const std::size_t n = 500;
  const double p = 0.2;
  const auto g = gnp(n, p, rng);
  const auto stats = degree_stats(g);
  EXPECT_NEAR(stats.mean, p * (n - 1), 6 * std::sqrt(p * (1 - p) * (n - 1) / n));
  // No degree strays absurdly far (6-sigma around np).
  const double sd = std::sqrt(p * (1 - p) * (n - 1));
  EXPECT_LT(static_cast<double>(stats.max), p * (n - 1) + 8 * sd);
  EXPECT_GT(static_cast<double>(stats.min), p * (n - 1) - 8 * sd);
}

TEST_P(GnpSeedSweep, DirectedInOutBalance) {
  Rng rng(GetParam() ^ 0xdef);
  const auto g = gnp_directed(300, 0.15, rng);
  std::size_t total_out = 0, total_in = 0;
  for (Vertex v = 0; v < 300; ++v) {
    total_out += g.out_degree(v);
    total_in += g.in_degree(v);
  }
  EXPECT_EQ(total_out, total_in);
  EXPECT_EQ(total_out, g.num_arcs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GnpSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234));

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(42);
  const std::size_t n = 2000, attach = 3;
  const auto g = barabasi_albert(n, attach, rng);
  EXPECT_EQ(g.num_vertices(), n);
  // m = C(attach,2) + (n - attach) * attach.
  EXPECT_EQ(g.num_edges(), 3u + (n - attach) * attach);
  EXPECT_TRUE(is_connected(g));
  // Preferential attachment produces a heavy tail: max degree far above
  // the mean.
  const auto stats = degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max), 5.0 * stats.mean);
}

TEST(Generators, BarabasiAlbertSmallN) {
  Rng rng(43);
  const auto g = barabasi_albert(3, 5, rng);
  EXPECT_EQ(g.num_edges(), 3u);  // falls back to K_3
}

TEST(Generators, BarabasiAlbertZeroAttachThrows) {
  Rng rng(44);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(Generators, WattsStrogatzZeroBetaIsLattice) {
  Rng rng(45);
  const auto g = watts_strogatz(50, 4, 0.0, rng);
  for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WattsStrogatzRewiringKeepsEdgeBudget) {
  Rng rng(46);
  const auto g = watts_strogatz(200, 6, 0.3, rng);
  // Rewiring can only merge into existing edges, never add.
  EXPECT_LE(g.num_edges(), 200u * 3u);
  EXPECT_GT(g.num_edges(), 500u);
}

TEST(Generators, RandomBipartiteIsBipartite) {
  Rng rng(47);
  const auto g = random_bipartite(30, 40, 0.3, rng);
  EXPECT_EQ(g.num_vertices(), 70u);
  // No edge inside either part.
  for (Vertex u = 0; u < 30; ++u) {
    for (Vertex v : g.neighbors(u)) EXPECT_GE(v, 30u);
  }
  for (Vertex u = 30; u < 70; ++u) {
    for (Vertex v : g.neighbors(u)) EXPECT_LT(v, 30u);
  }
}

TEST(Generators, GnpDeterministicPerSeed) {
  Rng a(123), b(123);
  const auto g1 = gnp(100, 0.3, a);
  const auto g2 = gnp(100, 0.3, b);
  EXPECT_EQ(g1.edge_list(), g2.edge_list());
}

TEST(Generators, RmatShape) {
  Rng rng(48);
  const auto g = rmat(1000, 8000, rng);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Self loops / duplicates / out-of-range rejections shrink the count,
  // but most of the budget should survive.
  EXPECT_LE(g.num_edges(), 8000u);
  EXPECT_GT(g.num_edges(), 4000u);
  // The Graph500 parameter mix is strongly skewed toward low-ID vertices.
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 4 * static_cast<std::size_t>(stats.mean));
}

TEST(Generators, RmatDeterministicPerSeed) {
  Rng a(49), b(49);
  EXPECT_EQ(rmat(256, 2000, a).edge_list(), rmat(256, 2000, b).edge_list());
}

TEST(Generators, RmatEdgeCases) {
  Rng rng(50);
  EXPECT_EQ(rmat(0, 100, rng).num_vertices(), 0u);
  EXPECT_EQ(rmat(1, 100, rng).num_edges(), 0u);  // only self loops possible
  EXPECT_THROW(rmat(16, 10, rng, 0.8, 0.2, 0.2), std::invalid_argument);
}

}  // namespace
}  // namespace km
