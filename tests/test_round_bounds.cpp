// Round-complexity regression harness: turns the paper's asymptotic
// separation — sketch connectivity in Õ(n/k²) rounds versus the Õ(n/k)
// centralized baseline — into permanent assertions over measured
// Metrics::rounds from real engine runs.
//
// Measurement reality at test scale: the whp analysis hides polylog
// factors that do not vanish at small n.  Two effects flatten the
// sketch curve towards the high-k end: (a) every superstep with any
// traffic costs at least one round, and a phase is five supersteps, so
// k where per-link payloads approach B pays a fixed floor the
// asymptote ignores, and (b) cell-granularity load balancing leaves a
// residual ~1.2x binomial max-over-links factor that shrinks only as
// per-link cell counts grow.  Both effects amortize with n, so the
// exponent fit runs over k ∈ {2, 4, 8} at n = 4096 — where the sketch
// payload dominates the floors at B = 512 and the fitted slope clears
// the paper's -2 target minus finite-scale slack — and asserts the
// exponent alongside an absolute envelope c·(n/k²)·log³n that the
// pre-aggregation regression (per-vertex sketch shipping, Θ(n/k) per
// link) demonstrably violates.  The cleanest finite-scale separation
// is edge-density independence: sketch rounds are a function of n (up
// to the log-factor below), baseline rounds scale with m.
//
// All runs are deterministic (fixed seeds, hash-based randomness), so
// every asserted number is stable across platforms and schedulers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/workload.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

constexpr std::uint64_t kBandwidth = 512;  // fixed B: clean scaling fits
constexpr std::uint64_t kSeed = 3;

/// Deterministic run cache: grid cells are shared between fits.
std::uint64_t measured_rounds(const std::string& workload_name,
                              const std::string& spec, std::size_t k) {
  using Key = std::tuple<std::string, std::string, std::size_t>;
  static std::map<Key, std::uint64_t> cache;
  const Key key{workload_name, spec, k};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const Workload* workload = WorkloadRegistry::instance().find(workload_name);
  if (workload == nullptr) throw std::logic_error("unknown workload");
  RunParams params;
  params.k = k;
  params.bandwidth_bits = kBandwidth;
  params.seed = kSeed;
  params.record_timeline = false;
  params.check = false;  // correctness grids live in test_sketch.cpp
  const Dataset dataset = load_dataset(spec, workload->input_kind(), kSeed);
  const RunResult result = run_workload(*workload, dataset, params);
  cache[key] = result.metrics.rounds;
  return result.metrics.rounds;
}

/// Sparse G(n, p) with expected average degree 8: m = Θ(n), so n-scaling
/// fits are not polluted by a changing m/n ratio.
std::string sparse_spec(std::size_t n) {
  return "gnp:n=" + std::to_string(n) + ",p=" +
         std::to_string(8.0 / static_cast<double>(n));
}

double fitted_k_slope(const std::string& workload_name, std::size_t n,
                      const std::vector<std::size_t>& ks) {
  std::vector<double> xs, ys;
  for (const std::size_t k : ks) {
    xs.push_back(static_cast<double>(k));
    ys.push_back(static_cast<double>(
        measured_rounds(workload_name, sparse_spec(n), k)));
  }
  return fit_log_log_slope(xs, ys);
}

TEST(RoundBounds, SketchConnectivityRoundsScaleLikeNOverKSquared) {
  // Measured ≈ -1.57 on the pinned grid (the -2 asymptote minus the
  // finite-scale floor and balance effects documented above) after the
  // phase-batched five-superstep protocol with sliced cell-granularity
  // aggregation landed; the pre-slicing protocol sat at ≈ -1.3 and a
  // regression to per-link Θ(n/k) drags the fit towards -1.  The runs
  // are fully deterministic, so the 0.07 margin is stable.
  const double slope = fitted_k_slope("connectivity", 4096, {2, 4, 8});
  EXPECT_LE(slope, -1.5) << "sketch connectivity lost its k^-2 scaling";
  EXPECT_GE(slope, -2.5) << "suspiciously steep: measurement broken?";
}

TEST(RoundBounds, BaselineRoundsScaleLikeNOverK) {
  const double slope =
      fitted_k_slope("connectivity_baseline", 1024, {2, 4, 8});
  EXPECT_LE(slope, -0.6) << "baseline stopped scaling down with k";
  EXPECT_GE(slope, -1.25) << "baseline scales better than its n/k design";
}

TEST(RoundBounds, SketchBeatsBaselineExponentBySeparatedMargin) {
  // Measured ≈ -1.57 vs ≈ -0.91 at n = 4096: a 0.66 exponent gap, more
  // than twice the asserted separation.
  const double sketch = fitted_k_slope("connectivity", 4096, {2, 4, 8});
  const double baseline =
      fitted_k_slope("connectivity_baseline", 4096, {2, 4, 8});
  EXPECT_LE(sketch, baseline - 0.3)
      << "the paper's k^-2 vs k^-1 separation collapsed: sketch " << sketch
      << " vs baseline " << baseline;
}

TEST(RoundBounds, RoundsGrowRoughlyLinearlyInN) {
  for (const char* workload : {"connectivity", "connectivity_baseline"}) {
    std::vector<double> xs, ys;
    for (const std::size_t n : {256u, 512u, 1024u}) {
      xs.push_back(static_cast<double>(n));
      ys.push_back(
          static_cast<double>(measured_rounds(workload, sparse_spec(n), 8)));
    }
    const double slope = fit_log_log_slope(xs, ys);
    EXPECT_GE(slope, 0.6) << workload << " rounds sublinear in n?";
    EXPECT_LE(slope, 1.6) << workload
                          << " rounds superlinear in n (polylog blowup?)";
  }
}

TEST(RoundBounds, SketchRoundsFitTheUpperBoundEnvelope) {
  // rounds <= c1 * (n/k^2) * log2(n)^3 + c2 * log2(n)^2, calibrated with
  // 3-10x headroom over the measured grid.  The pre-aggregation
  // regression (one sketch per vertex to the proxy) lands 1.4-2.8x
  // *above* this envelope at k >= 8, so the bound is tight enough to
  // catch a real Θ(n/k) relapse while loose enough for seed wiggle.
  constexpr double c1 = 1.0;
  constexpr double c2 = 10.0;
  for (const std::size_t n : {256u, 512u, 1024u}) {
    const double logn = static_cast<double>(ceil_log2(n));
    for (const std::size_t k : {2u, 4u, 8u, 16u}) {
      const auto rounds = static_cast<double>(
          measured_rounds("connectivity", sparse_spec(n), k));
      const double nd = static_cast<double>(n);
      const double kd = static_cast<double>(k);
      const double envelope =
          c1 * (nd / (kd * kd)) * logn * logn * logn + c2 * logn * logn;
      EXPECT_LE(rounds, envelope)
          << "n=" << n << " k=" << k
          << ": rounds blew past c*(n/k^2)*polylog(n)";
    }
  }
}

TEST(RoundBounds, SketchRoundsAreIndependentOfEdgeDensity) {
  // The sketch algorithm's communication depends on m only through how
  // many cells of the level cascade a vertex's edges touch — ~log(deg)
  // nonzero cells under the sparse wire format, capped at the full
  // cascade — while the baseline ships every edge.  Same n, ~15x the
  // edges: sketch rounds may grow by that log factor (measured 1.52x)
  // but not with m, while baseline rounds scale by ~an order of
  // magnitude (measured 11x).
  const std::string sparse = "gnp:n=512,p=0.008";  // m ~ 1k
  const std::string dense = "gnp:n=512,p=0.12";    // m ~ 16k
  const double sketch_ratio =
      static_cast<double>(measured_rounds("connectivity", dense, 8)) /
      static_cast<double>(measured_rounds("connectivity", sparse, 8));
  const double baseline_ratio =
      static_cast<double>(
          measured_rounds("connectivity_baseline", dense, 8)) /
      static_cast<double>(
          measured_rounds("connectivity_baseline", sparse, 8));
  EXPECT_GE(sketch_ratio, 0.55) << "denser graph should not cut rounds much";
  EXPECT_LE(sketch_ratio, 2.0)
      << "sketch rounds picked up a superlogarithmic edge-count dependence";
  EXPECT_GE(baseline_ratio, 4.0)
      << "baseline no longer pays per edge — is it still the baseline?";
}

TEST(RoundBounds, MonotoneInKAcrossTheAcceptanceGrid) {
  // The acceptance grid's k values: more machines never cost more
  // rounds, for either algorithm.
  for (const char* workload : {"connectivity", "connectivity_baseline"}) {
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::size_t k : {4u, 8u, 16u}) {
      const std::uint64_t rounds =
          measured_rounds(workload, sparse_spec(1024), k);
      EXPECT_LT(rounds, prev) << workload << " at k=" << k;
      prev = rounds;
    }
  }
}

}  // namespace
}  // namespace km
