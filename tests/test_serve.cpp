// Tests for the serving layer's socketless pieces: the dataset cache
// (runtime/dataset_cache.hpp), the result store, the NDJSON protocol,
// and ScenarioService driven in-process.  Socket transport and
// concurrency live in test_serve_stress.cpp.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "runtime/dataset_cache.hpp"
#include "runtime/results.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "util/json_parse.hpp"

namespace km {
namespace {

using serve::Request;
using serve::Response;
using serve::ResultStore;
using serve::ScenarioService;
using serve::ServiceConfig;

// ---- Dataset cache ----

TEST(DatasetCache, MissThenHitSharesOneMaterialization) {
  DatasetCache cache;
  const auto a = cache.get("gnp:n=64,p=0.1", DatasetKind::kUndirected, 7);
  const auto b = cache.get("gnp:n=64,p=0.1", DatasetKind::kUndirected, 7);
  EXPECT_EQ(a.get(), b.get());  // literally the same object
  const auto c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(DatasetCache, CanonicalKeyCollapsesSpellingVariants) {
  const auto a = DatasetSpec::parse("gnp:n=64,p=0.1,maxw=9");
  const auto b = DatasetSpec::parse("gnp:maxw=9,p=0.1,n=64");
  EXPECT_EQ(DatasetCache::canonical_key(a, DatasetKind::kUndirected, 7),
            DatasetCache::canonical_key(b, DatasetKind::kUndirected, 7));
  // Different seed, kind, or parameter value each split the cell.
  EXPECT_NE(DatasetCache::canonical_key(a, DatasetKind::kUndirected, 7),
            DatasetCache::canonical_key(a, DatasetKind::kUndirected, 8));
  EXPECT_NE(DatasetCache::canonical_key(a, DatasetKind::kUndirected, 7),
            DatasetCache::canonical_key(a, DatasetKind::kWeighted, 7));
}

TEST(DatasetCache, SpellingVariantsShareTheEntryButKeepFirstSpelling) {
  DatasetCache cache;
  const auto a = cache.get("gnp:n=64,p=0.1", DatasetKind::kUndirected, 7);
  const auto b = cache.get("gnp:p=0.1,n=64", DatasetKind::kUndirected, 7);
  EXPECT_EQ(a.get(), b.get());
  // Documents and sweep filenames must not change because a later
  // request spelled the spec differently.
  EXPECT_EQ(b->spec, "gnp:n=64,p=0.1");
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(DatasetCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  DatasetCache cache(1);  // everything over budget: keep newest only
  const auto a = cache.get("path:n=32", DatasetKind::kUndirected, 1);
  const auto b = cache.get("path:n=33", DatasetKind::kUndirected, 1);
  const auto c = cache.counters();
  EXPECT_EQ(c.misses, 2u);
  EXPECT_GE(c.evictions, 1u);
  EXPECT_EQ(c.entries, 1u);
  // Evicted datasets stay alive through the shared_ptr we hold.
  EXPECT_EQ(a->n, 32u);
  EXPECT_EQ(b->n, 33u);
}

TEST(DatasetCache, CountersSinceReportsDeltas) {
  DatasetCache cache;
  (void)cache.get("path:n=8", DatasetKind::kUndirected, 1);
  const auto base = cache.counters();
  (void)cache.get("path:n=8", DatasetKind::kUndirected, 1);
  (void)cache.get("path:n=9", DatasetKind::kUndirected, 1);
  const auto delta = cache.counters().since(base);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.entries, 2u);  // gauge: absolute
  EXPECT_NE(delta.summary().find("dataset_cache: hits=1 misses=1"),
            std::string::npos);
}

TEST(DatasetCache, PropagatesDatasetErrors) {
  DatasetCache cache;
  EXPECT_THROW(cache.get("nope:n=3", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_EQ(cache.counters().entries, 0u);
}

// ---- Result store ----

TEST(ResultStore, PutFindRoundTrip) {
  ResultStore store;
  RunParams params;
  const std::string key = ResultStore::scenario_key("mst", "dskey", params);
  EXPECT_EQ(store.find(key), nullptr);
  store.put(key, "{\"doc\":1}");
  const auto doc = store.find(key);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(*doc, "{\"doc\":1}");
  const auto c = store.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.bytes, doc->size());
}

TEST(ResultStore, ScenarioKeySeparatesTheParameterCell) {
  RunParams params;
  const std::string base = ResultStore::scenario_key("mst", "ds", params);
  RunParams other = params;
  other.k = params.k + 1;
  EXPECT_NE(ResultStore::scenario_key("mst", "ds", other), base);
  other = params;
  other.seed = params.seed + 1;
  EXPECT_NE(ResultStore::scenario_key("mst", "ds", other), base);
  other = params;
  other.frame_bytes = 9;
  EXPECT_NE(ResultStore::scenario_key("mst", "ds", other), base);
  // workers and trace are execution policy: same cell, same key.
  other = params;
  other.workers = 3;
  other.trace = true;
  EXPECT_EQ(ResultStore::scenario_key("mst", "ds", other), base);
}

TEST(ResultStore, FirstWriterWinsKeepsBytesCanonical) {
  ResultStore store;
  RunParams params;
  const std::string key = ResultStore::scenario_key("mst", "ds", params);
  const auto first = store.put(key, "{\"wall_ms\":1}");
  const auto second = store.put(key, "{\"wall_ms\":2}");
  EXPECT_EQ(*first, "{\"wall_ms\":1}");
  EXPECT_EQ(*second, "{\"wall_ms\":1}");  // the racer gets the canon bytes
}

TEST(ResultStore, EvictsUnderByteBudget) {
  ResultStore store(10);
  RunParams params;
  params.k = 2;
  store.put(ResultStore::scenario_key("a", "ds", params), "0123456789");
  params.k = 3;
  store.put(ResultStore::scenario_key("b", "ds", params), "0123456789");
  const auto c = store.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_LE(c.bytes, 10u);
}

// ---- Protocol ----

TEST(ServeProtocol, ParsesFullRunRequest) {
  Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"op":"run","workload":"mst","dataset":"gnp:n=64,p=0.1","k":4,)"
      R"("bandwidth":2048,"seed":9,"frame":128,"workers":2,"check":false,)"
      R"("timeline":false,"fresh":true})",
      req, error))
      << error;
  EXPECT_EQ(req.op, Request::Op::kRun);
  EXPECT_EQ(req.workload, "mst");
  EXPECT_EQ(req.dataset, "gnp:n=64,p=0.1");
  EXPECT_EQ(req.params.k, 4u);
  EXPECT_EQ(req.params.bandwidth_bits, 2048u);
  EXPECT_EQ(req.params.seed, 9u);
  EXPECT_EQ(req.params.frame_bytes, 128u);
  EXPECT_EQ(req.params.workers, 2u);
  EXPECT_FALSE(req.params.check);
  EXPECT_FALSE(req.params.record_timeline);
  EXPECT_TRUE(req.fresh);
}

TEST(ServeProtocol, FrameAutoMapsToSentinel) {
  Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"op":"run","workload":"mst","dataset":"path:n=8","frame":"auto"})",
      req, error))
      << error;
  EXPECT_EQ(req.params.frame_bytes, kFramedPayloadAuto);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  Request req;
  std::string error;
  EXPECT_FALSE(serve::parse_request("not json", req, error));
  EXPECT_FALSE(serve::parse_request("[1,2]", req, error));
  EXPECT_FALSE(serve::parse_request(R"({"op":"dance"})", req, error));
  EXPECT_FALSE(serve::parse_request(R"({"op":"run"})", req, error));  // no workload
  EXPECT_FALSE(serve::parse_request(
      R"({"op":"run","workload":"mst","dataset":"d","k":4.5})", req, error));
  EXPECT_FALSE(serve::parse_request(
      R"({"op":"run","workload":"mst","dataset":"d","zzz":1})", req, error));
  EXPECT_NE(error.find("zzz"), std::string::npos);
}

TEST(ServeProtocol, MetaLineShape) {
  Response ok;
  ok.source = "engine";
  EXPECT_EQ(serve::meta_line(ok),
            R"({"km_serve":"v1","status":"ok","source":"engine"})");
  const Response err = serve::error_response("boom");
  EXPECT_EQ(serve::meta_line(err),
            R"({"km_serve":"v1","status":"error","error":"boom"})");
}

// ---- ScenarioService (in-process) ----

Request run_request(const std::string& workload, const std::string& dataset,
                    std::size_t k = 4, std::uint64_t seed = 7) {
  Request req;
  req.op = Request::Op::kRun;
  req.workload = workload;
  req.dataset = dataset;
  req.params.k = k;
  req.params.seed = seed;
  return req;
}

TEST(ScenarioService, FirstRunsThenReplaysByteIdentical) {
  ScenarioService service(ServiceConfig{});
  const auto store_before = service.result_store().counters();
  const Response first = service.handle(run_request("components",
                                                    "gnp:n=48,p=0.15"));
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.source, "engine");
  const Response second = service.handle(run_request("components",
                                                     "gnp:n=48,p=0.15"));
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.source, "result_store");
  // Replay is the stored bytes — wall_ms included, nothing re-run.
  EXPECT_EQ(first.doc, second.doc);
  const auto store_delta =
      service.result_store().counters().since(store_before);
  EXPECT_EQ(store_delta.hits, 1u);
  const auto c = service.counters();
  EXPECT_EQ(c.runs, 1u);
  EXPECT_EQ(c.replays, 1u);
}

TEST(ScenarioService, FreshBypassesTheResultStore) {
  ScenarioService service(ServiceConfig{});
  (void)service.handle(run_request("components", "gnp:n=48,p=0.15"));
  Request req = run_request("components", "gnp:n=48,p=0.15");
  req.fresh = true;
  const Response again = service.handle(req);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.source, "engine");
  EXPECT_EQ(service.counters().runs, 2u);
}

TEST(ScenarioService, SpellingVariantsHitTheSameCell) {
  ScenarioService service(ServiceConfig{});
  const Response a = service.handle(run_request("components",
                                                "gnp:n=48,p=0.15"));
  const Response b = service.handle(run_request("components",
                                                "gnp:p=0.15,n=48"));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(b.source, "result_store");
  EXPECT_EQ(a.doc, b.doc);  // the first spelling's document, byte for byte
}

TEST(ScenarioService, ServedDocIsValidRunResultJson) {
  ScenarioService service(ServiceConfig{});
  const Response r = service.handle(run_request("mst", "gnp:n=48,p=0.2"));
  ASSERT_TRUE(r.ok) << r.error;
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(r.doc, doc, error)) << error;
  const JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "km.run_result/v1");
  EXPECT_EQ(r.doc.find('\n'), std::string::npos);  // strictly one line
}

TEST(ScenarioService, ErrorsAreResponsesNotExceptions) {
  ScenarioService service(ServiceConfig{});
  const Response unknown =
      service.handle(run_request("no_such_workload", "path:n=8"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("no_such_workload"), std::string::npos);
  const Response bad_spec =
      service.handle(run_request("components", "nope:n=8"));
  EXPECT_FALSE(bad_spec.ok);
  const Response small_k =
      service.handle(run_request("components", "path:n=8", /*k=*/1));
  EXPECT_FALSE(small_k.ok);
  EXPECT_EQ(service.counters().errors, 3u);
}

TEST(ScenarioService, StatsDocIsParsableAndCountsTraffic) {
  ScenarioService service(ServiceConfig{});
  (void)service.handle(run_request("components", "gnp:n=48,p=0.15"));
  (void)service.handle(run_request("components", "gnp:n=48,p=0.15"));
  Request stats;
  stats.op = Request::Op::kStats;
  const Response r = service.handle(stats);
  ASSERT_TRUE(r.ok);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(r.doc, doc, error)) << error;
  EXPECT_EQ(doc.find("schema")->string, "km.serve_stats/v1");
  const JsonValue* svc = doc.find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->find("runs")->number, 1.0);
  EXPECT_EQ(svc->find("replays")->number, 1.0);
  const JsonValue* store = doc.find("result_store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->find("hits")->number, 1.0);
}

TEST(ScenarioService, PingAndShutdownAcknowledge) {
  ScenarioService service(ServiceConfig{});
  Request ping;
  ping.op = Request::Op::kPing;
  EXPECT_TRUE(service.handle(ping).ok);
  Request shutdown;
  shutdown.op = Request::Op::kShutdown;
  EXPECT_TRUE(service.handle(shutdown).ok);
}

}  // namespace
}  // namespace km
