// Unit tests for the undirected CSR graph (graph/graph.hpp).
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace km {
namespace {

TEST(Graph, EmptyGraph) {
  const auto g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedVertices) {
  const auto g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, TriangleBasics) {
  const auto g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DropsDuplicatesAndSelfLoops) {
  const auto g = Graph::from_edges(
      4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, NeighborsAreSorted) {
  const auto g = Graph::from_edges(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}});
  const auto ns = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
  EXPECT_EQ(ns.size(), 4u);
}

TEST(Graph, OutOfRangeVertexThrows) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::out_of_range);
  EXPECT_THROW(Graph::from_edges(2, {{5, 0}}), std::out_of_range);
}

TEST(Graph, EdgeListRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {0, 3}, {1, 2}, {2, 3}};
  const auto g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.edge_list(), edges);  // already canonical + sorted
}

TEST(Graph, EdgeListNormalizesOrientation) {
  const auto g = Graph::from_edges(3, {{2, 0}, {1, 0}});
  const std::vector<Edge> expected{{0, 1}, {0, 2}};
  EXPECT_EQ(g.edge_list(), expected);
}

TEST(Graph, MaxDegree) {
  const auto g = Graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, InducedSubgraph) {
  //  0-1-2-3 path, keep {0,1,3}: only edge (0,1) survives.
  const auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto sub = g.induced({true, true, false, true});
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_FALSE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(2, 3));
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  const auto g = Graph::from_edges(2, {{0, 1}});
  EXPECT_FALSE(g.has_edge(0, 7));
  EXPECT_FALSE(g.has_edge(9, 1));
}

TEST(Graph, LargeStarDegrees) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < 1000; ++v) edges.push_back({0, v});
  const auto g = Graph::from_edges(1000, std::move(edges));
  EXPECT_EQ(g.degree(0), 999u);
  EXPECT_EQ(g.max_degree(), 999u);
  EXPECT_EQ(g.num_edges(), 999u);
}

}  // namespace
}  // namespace km
