// Unit tests for the deterministic RNG (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace km {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, StreamSeedingGivesIndependentStreams) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
  // And reproducible per stream.
  Rng a2(7, 0);
  Rng a3(7, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a2.next(), a3.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBound)];
  const double expected = static_cast<double>(kSamples) / kBound;
  for (auto c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, Real01InUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliMeanMatchesP) {
  Rng rng(9);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(10);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialMeanAndBounds) {
  Rng rng(11);
  // Small-n path (direct simulation).
  double sum_small = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.binomial(20, 0.25);
    EXPECT_LE(v, 20u);
    sum_small += static_cast<double>(v);
  }
  EXPECT_NEAR(sum_small / 20000.0, 5.0, 0.1);
  // Large-n path (std::binomial_distribution).
  double sum_large = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.binomial(10000, 0.1);
    EXPECT_LE(v, 10000u);
    sum_large += static_cast<double>(v);
  }
  EXPECT_NEAR(sum_large / 5000.0, 1000.0, 5.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> xs(100);
  for (int i = 0; i < 100; ++i) xs[i] = i;
  auto copy = xs;
  rng.shuffle(std::span<int>(copy));
  EXPECT_NE(copy, xs);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

TEST(Rng, SampleDistinctProducesDistinctSorted) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_distinct(100, 20);
    ASSERT_EQ(s.size(), 20u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<std::uint64_t>(s.begin(), s.end()).size(), 20u);
    for (auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(14);
  const auto s = rng.sample_distinct(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
}

}  // namespace
}  // namespace km
