// Tests for distributed PageRank (core/pagerank.hpp): the Monte Carlo
// estimates must delta-approximate the exact expected-visit PageRank
// (Theorem 4 / Proposition 1), across graph families, machine counts and
// seeds; the algorithm must decode the lower-bound gadget's direction
// bits (Lemma 4); and the heavy-vertex path must beat the baseline's
// congestion on skewed graphs.
#include "core/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/lb_graphs.hpp"
#include "graph/pagerank_ref.hpp"

namespace km {
namespace {

/// Relative L1 error between estimate and reference.
double relative_l1(const std::vector<double>& est,
                   const std::vector<double>& ref) {
  double err = 0.0, mass = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err += std::abs(est[i] - ref[i]);
    mass += ref[i];
  }
  return err / mass;
}

PageRankResult run(const Digraph& g, std::size_t k, std::uint64_t seed,
                   const PageRankConfig& cfg = {.eps = 0.2, .c = 24.0},
                   bool baseline = false, std::uint64_t bandwidth = 0) {
  Engine engine(k, {.bandwidth_bits =
                        bandwidth ? bandwidth
                                  : EngineConfig::default_bandwidth(
                                        g.num_vertices()),
                    .seed = seed});
  Rng prng(seed ^ 0x9999);
  const auto part = VertexPartition::random(g.num_vertices(), k, prng);
  return baseline ? distributed_pagerank_baseline(g, part, engine, cfg)
                  : distributed_pagerank(g, part, engine, cfg);
}

TEST(PageRankKm, ApproximatesReferenceOnGnp) {
  Rng rng(1);
  const auto g = Digraph::from_undirected(gnp(400, 0.05, rng));
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, 8, 42);
  EXPECT_LT(relative_l1(res.estimates, ref), 0.12);
}

TEST(PageRankKm, ApproximatesReferenceOnDirectedGnp) {
  Rng rng(2);
  const auto g = gnp_directed(300, 0.04, rng);
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, 6, 43);
  EXPECT_LT(relative_l1(res.estimates, ref), 0.15);
}

TEST(PageRankKm, ApproximatesReferenceOnStar) {
  // The heavy-vertex path is exercised: the center holds ~n*c*log n
  // tokens every iteration.
  const auto g = Digraph::from_undirected(star_graph(500));
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, 8, 44);
  EXPECT_LT(relative_l1(res.estimates, ref), 0.1);
  // The center's estimate specifically must be accurate (it aggregates
  // half the token mass, so its variance is tiny).
  EXPECT_NEAR(res.estimates[0] / ref[0], 1.0, 0.05);
}

TEST(PageRankKm, BaselineMatchesReferenceToo) {
  // The baseline is slower, not wrong: same estimator, same guarantees.
  Rng rng(3);
  const auto g = Digraph::from_undirected(gnp(300, 0.05, rng));
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, 6, 45, {.eps = 0.2, .c = 24.0}, true);
  EXPECT_LT(relative_l1(res.estimates, ref), 0.15);
}

TEST(PageRankKm, HeavyPathBeatsBaselineOnStar) {
  // Section 3.1's motivating example: on a star the naive algorithm
  // funnels ~n distinct-destination messages out of the center's
  // machine each iteration, while Algorithm 1's heavy path sends at most
  // k-1 aggregated messages.  c is chosen so leaves stay light
  // (tokens0 < k) and B is small enough to resolve the congestion gap.
  const auto g = Digraph::from_undirected(star_graph(8000));
  const PageRankConfig cfg{.eps = 0.2, .c = 4.0};
  const auto fast = run(g, 64, 46, cfg, false, /*bandwidth=*/64);
  const auto slow = run(g, 64, 46, cfg, true, /*bandwidth=*/64);
  EXPECT_LT(fast.metrics.rounds * 3, slow.metrics.rounds)
      << "fast=" << fast.metrics.rounds << " slow=" << slow.metrics.rounds;
}

TEST(PageRankKm, DecodesLowerBoundGadgetBits) {
  // Lemma 4 end-to-end: a delta-approximation of PageRank on H recovers
  // every direction bit b_i by thresholding PageRank(v_i).
  Rng rng(4);
  PageRankLowerBoundGraph h(100, rng);  // n = 401
  const auto res = run(h.graph(), 8, 47, {.eps = 0.2, .c = 160.0});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < h.q(); ++i) {
    correct += (h.decode_bit(0.2, res.estimates[h.v(i)]) == h.bits()[i]);
  }
  // With c=160 tokens/vertex the decoding should be near-perfect.
  EXPECT_GE(correct, h.q() - 2) << correct << "/" << h.q();
}

TEST(PageRankKm, DanglingGraphMassMatchesReference) {
  // The gadget H has a sink w; total estimated mass must track the
  // reference (which is < 1 because walks die at w).
  Rng rng(5);
  PageRankLowerBoundGraph h(50, rng);
  const auto ref = expected_visit_pagerank(h.graph(), {.eps = 0.2});
  const auto res = run(h.graph(), 4, 48, {.eps = 0.2, .c = 64.0});
  const double ref_mass = std::accumulate(ref.begin(), ref.end(), 0.0);
  const double est_mass =
      std::accumulate(res.estimates.begin(), res.estimates.end(), 0.0);
  EXPECT_NEAR(est_mass, ref_mass, 0.05 * ref_mass);
  EXPECT_LT(ref_mass, 1.0);
}

class PageRankMachineSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageRankMachineSweep, CorrectForAnyMachineCount) {
  const std::size_t k = GetParam();
  Rng rng(6);
  const auto g = Digraph::from_undirected(gnp(250, 0.06, rng));
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, k, 100 + k);
  EXPECT_LT(relative_l1(res.estimates, ref), 0.15) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Machines, PageRankMachineSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 25));

class PageRankSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageRankSeedSweep, StableAcrossSeeds) {
  Rng rng(7);
  const auto g = Digraph::from_undirected(
      watts_strogatz(300, 6, 0.1, rng));
  const auto ref = expected_visit_pagerank(g, {.eps = 0.2});
  const auto res = run(g, 8, GetParam());
  EXPECT_LT(relative_l1(res.estimates, ref), 0.15) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankSeedSweep,
                         ::testing::Values(11, 22, 33, 44));

TEST(PageRankKm, DeterministicForFixedSeeds) {
  Rng rng(8);
  const auto g = Digraph::from_undirected(gnp(150, 0.08, rng));
  const auto a = run(g, 4, 99);
  const auto b = run(g, 4, 99);
  EXPECT_EQ(a.estimates, b.estimates);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(PageRankKm, AllTokensEventuallyTerminate) {
  Rng rng(9);
  const auto g = Digraph::from_undirected(cycle_graph(100));
  const auto res = run(g, 4, 50);
  // Termination implies a bounded iteration count ~ log(total)/eps.
  EXPECT_GT(res.iterations, 10u);
  EXPECT_LT(res.iterations, 400u);
  EXPECT_EQ(res.metrics.dropped_messages, 0u);
}

TEST(PageRankKm, MismatchedPartitionThrows) {
  Rng rng(10);
  const auto g = Digraph::from_undirected(gnp(50, 0.1, rng));
  Engine engine(4, {.bandwidth_bits = 256, .seed = 1});
  Rng prng(1);
  const auto wrong_n = VertexPartition::random(40, 4, prng);
  EXPECT_THROW(distributed_pagerank(g, wrong_n, engine),
               std::invalid_argument);
  const auto wrong_k = VertexPartition::random(50, 8, prng);
  EXPECT_THROW(distributed_pagerank(g, wrong_k, engine),
               std::invalid_argument);
}

TEST(PageRankKm, EstimatorNormalizationMatchesTheorem) {
  // pi_hat sums to ~ eps * total_visits / (n * tokens0); on a cycle
  // (no dangling) the expected sum is exactly 1.
  const auto g = Digraph::from_undirected(cycle_graph(200));
  const auto res = run(g, 4, 51, {.eps = 0.25, .c = 32.0});
  const double total =
      std::accumulate(res.estimates.begin(), res.estimates.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 0.05);
}

}  // namespace
}  // namespace km
